//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Prints and parses the vendored serde [`Value`] tree as JSON. Covers the
//! workspace's surface: [`to_string`], [`to_string_pretty`],
//! [`to_writer_pretty`], [`from_str`] and [`from_reader`].
//!
//! Numbers print through Rust's shortest-roundtrip float formatting, so a
//! serialize → parse cycle reproduces every finite `f64` exactly. Non-finite
//! floats serialize as `null` (matching upstream).

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::io::{Read, Write};

pub use serde::Error;

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value as human-indented JSON into a writer.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::custom(format!("write failed: {e}")))
}

/// Maximum nesting depth accepted by the parser (matches upstream
/// serde_json's default recursion limit): deeper documents get a parse
/// error instead of a stack overflow.
const MAX_DEPTH: usize = 128;

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

/// Deserializes a value from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::custom(format!("read failed: {e}")))?;
    from_str(&buf)
}

// --- printer ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // Keep floats recognisable as floats when re-parsed.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
                write_value(o, x, indent, d)
            })
        }
        Value::Map(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(brackets.1);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::custom(format!(
                "recursion limit exceeded (depth > {MAX_DEPTH}) at offset {}",
                self.pos
            )));
        }
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected ',' or ']' at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected ',' or '}}' at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for this
                            // stand-in; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape \\{}", *other as char)))
                        }
                    }
                }
                b if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                b => {
                    // Decode one multi-byte UTF-8 character; validate only
                    // its own bytes, not the whole remaining document.
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::custom("invalid UTF-8 in string")),
                    };
                    let chunk = rest
                        .get(..width)
                        .ok_or_else(|| Error::custom("invalid UTF-8 in string"))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push(s.chars().next().unwrap());
                    self.pos += width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            Err(Error::custom(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn collections_round_trip() {
        let mut m: BTreeMap<u64, Vec<(String, f64)>> = BTreeMap::new();
        m.insert(3, vec![("a".into(), 0.1 + 0.2), ("b".into(), -1.5)]);
        m.insert(u64::MAX, vec![]);
        for text in [to_string(&m).unwrap(), to_string_pretty(&m).unwrap()] {
            let back: BTreeMap<u64, Vec<(String, f64)>> = from_str(&text).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn derived_struct_and_enum_round_trip() {
        use serde::{Deserialize, Serialize};

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum Kind {
            Plain,
            Weighted { w: f64, tags: Vec<String> },
        }

        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Record {
            id: u64,
            name: String,
            kind: Kind,
            flags: Option<Vec<bool>>,
        }

        let r = Record {
            id: 42,
            name: "quote\" \\ line\n 書".into(),
            kind: Kind::Weighted {
                w: 0.25,
                tags: vec!["x".into()],
            },
            flags: None,
        };
        let back: Record = from_str(&to_string_pretty(&r).unwrap()).unwrap();
        assert_eq!(back, r);
        let plain: Record =
            from_str(r#"{"id": 1, "name": "n", "kind": "Plain", "flags": [true, false]}"#).unwrap();
        assert_eq!(plain.kind, Kind::Plain);
        assert_eq!(plain.flags, Some(vec![true, false]));
    }

    #[test]
    fn inexact_floats_are_rejected() {
        assert!(from_str::<u64>("1e20").is_err());
        assert!(from_str::<i64>("3.5").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert_eq!(from_str::<u64>("1e3").unwrap(), 1000);
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_crash() {
        let deep = "[".repeat(100_000);
        let err = from_str::<Vec<u64>>(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion limit"));
        // Documents at sane depths still parse.
        let ok = format!("{}1{}", "[".repeat(20), "]".repeat(20));
        assert!(from_str::<Value>(&ok).is_ok());
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{\"a\": ").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
