//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::Rejection;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with sizes drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Result<Vec<S::Value>, Rejection> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
