//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal property-testing harness with proptest's API shape:
//!
//! * [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter` /
//!   `prop_filter_map`, implemented for ranges, tuples, [`Just`],
//!   [`collection::vec`], [`any`] and regex-like `&str` patterns;
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`) and the
//!   `prop_assert*` macros;
//! * a deterministic runner: case RNG seeds derive from the test name and
//!   case index, so failures reproduce run-to-run with no persistence files.
//!
//! **No shrinking**: a failing case reports its values via the assertion
//! message and its case number instead of minimising. That trade keeps the
//! stand-in small while preserving what the test suite relies on.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
mod regex;
pub mod strategy;

pub use strategy::{Any, Just, Strategy};

/// Why a generated case was rejected (filter miss).
#[derive(Debug, Clone)]
pub struct Rejection {
    /// Human-readable filter description.
    pub reason: String,
}

/// A test-case failure or rejection, as produced by the `prop_assert*`
/// macros or an explicit `Err` return.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The input should not count as a case (like `prop_assume` misses).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// The result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many accepted cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Values generable without an explicit strategy, via [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_standard!(bool, u32, u64, usize, f64);

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut StdRng) -> u8 {
        rng.gen::<u32>() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut StdRng) -> u16 {
        rng.gen::<u32>() as u16
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> i32 {
        rng.gen::<u32>() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> i64 {
        rng.gen::<u64>() as i64
    }
}

/// Strategy producing any value of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The deterministic runner behind [`proptest!`]; public so the macro can
/// reach it, not part of the emulated API.
pub fn run_property<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    test: impl Fn(S::Value) -> TestCaseResult,
) {
    // FNV-1a over the test name: stable per-property seed base.
    let mut base: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }

    let mut accepted = 0u32;
    let mut draws = 0u64;
    let mut rejections = 0u64;
    const MAX_REJECTIONS: u64 = 1 << 16;
    while accepted < config.cases {
        let mut rng = StdRng::seed_from_u64(base.wrapping_add(draws));
        draws += 1;
        let value = match strategy.generate(&mut rng) {
            Ok(v) => v,
            Err(rej) => {
                rejections += 1;
                if rejections > MAX_REJECTIONS {
                    panic!(
                        "{name}: gave up after {MAX_REJECTIONS} rejected inputs \
                         (last filter: {})",
                        rej.reason
                    );
                }
                continue;
            }
        };
        match test(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejections += 1;
                if rejections > MAX_REJECTIONS {
                    panic!("{name}: gave up after {MAX_REJECTIONS} rejections ({reason})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed on case {} (draw #{}, seed base \
                     {base:#x}): {msg}",
                    accepted + 1,
                    draws
                );
            }
        }
    }
}

/// Everything a property-test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Any, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, TestCaseError, TestCaseResult,
    };
}

/// Declares deterministic property tests; mirrors proptest's macro,
/// including the optional leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __strategy = ( $($strategy,)+ );
                $crate::run_property(
                    &__config,
                    stringify!($name),
                    &__strategy,
                    |__values| -> $crate::TestCaseResult {
                        let ( $($pat,)+ ) = __values;
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// process) so the runner can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)+), left, right
        );
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)+), left, right
        );
    }};
}

/// Discards the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}
