//! The [`Strategy`] trait, combinators, and base strategy impls.

use crate::{regex, Rejection};
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// How many times a filter retries before rejecting upward.
const FILTER_RETRIES: usize = 256;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// draws a single value (or a [`Rejection`] when a filter cannot be
/// satisfied).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Result<Self::Value, Rejection>;

    /// Transforms every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy it maps to.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying internally.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason,
            pred,
        }
    }

    /// Maps values, dropping those mapped to `None`, retrying internally.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            source: self,
            reason,
            f,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> Result<O, Rejection> {
        self.source.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Result<S2::Value, Rejection> {
        let inner = (self.f)(self.source.generate(rng)?);
        inner.generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Result<S::Value, Rejection> {
        for _ in 0..FILTER_RETRIES {
            let candidate = self.source.generate(rng)?;
            if (self.pred)(&candidate) {
                return Ok(candidate);
            }
        }
        Err(Rejection {
            reason: self.reason.to_owned(),
        })
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    source: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> Result<O, Rejection> {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.source.generate(rng)?) {
                return Ok(v);
            }
        }
        Err(Rejection {
            reason: self.reason.to_owned(),
        })
    }
}

/// Strategy yielding one fixed value (proptest's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// Strategy for [`crate::any`].
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T: crate::Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> Result<T, Rejection> {
        Ok(T::arbitrary(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Result<$t, Rejection> {
                Ok(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> Result<$t, Rejection> {
                Ok(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `&str` patterns act as regex-like string strategies (the subset
/// documented in [`regex`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> Result<String, Rejection> {
        Ok(regex::generate(self, rng))
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Result<Self::Value, Rejection> {
                Ok(($(self.$n.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
}
