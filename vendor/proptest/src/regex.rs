//! A tiny regex-directed string generator.
//!
//! Proptest treats `&str` strategies as regexes; this stand-in supports the
//! subset the workspace's tests use:
//!
//! * literal characters and `\`-escapes,
//! * character classes `[a-z…]` (ranges and single characters),
//! * `.` (printable ASCII),
//! * quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (`*`/`+` capped at 8).
//!
//! Unsupported syntax (groups, alternation, anchors) panics: a pattern
//! outside this subset is a programming error in a test, not a runtime
//! condition to paper over.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

enum Atom {
    Class(Vec<char>),
}

const PRINTABLE_ASCII: std::ops::RangeInclusive<char> = ' '..='~';

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (atom, next) = parse_atom(&chars, i, pattern);
        let (lo, hi, next) = parse_quantifier(&chars, next, pattern);
        i = next;
        let Atom::Class(candidates) = &atom;
        let reps = rng.gen_range(lo..=hi);
        for _ in 0..reps {
            out.push(*candidates.choose(rng).expect("empty character class"));
        }
    }
    out
}

fn parse_atom(chars: &[char], i: usize, pattern: &str) -> (Atom, usize) {
    match chars[i] {
        '[' => {
            assert!(
                chars.get(i + 1) != Some(&'^'),
                "unsupported regex syntax: negated class in {pattern:?}"
            );
            let mut candidates = Vec::new();
            let mut j = i + 1;
            while j < chars.len() && chars[j] != ']' {
                if j + 2 < chars.len() && chars[j + 1] == '-' && chars[j + 2] != ']' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad class range in regex {pattern:?}");
                    candidates.extend(lo..=hi);
                    j += 3;
                } else {
                    candidates.push(chars[j]);
                    j += 1;
                }
            }
            assert!(j < chars.len(), "unterminated class in regex {pattern:?}");
            (Atom::Class(candidates), j + 1)
        }
        '.' => (Atom::Class(PRINTABLE_ASCII.collect()), i + 1),
        '\\' => {
            let c = *chars
                .get(i + 1)
                .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
            (Atom::Class(vec![c]), i + 2)
        }
        '(' | ')' | '|' | '^' | '$' => {
            panic!("unsupported regex syntax {:?} in {pattern:?}", chars[i])
        }
        c => (Atom::Class(vec![c]), i + 1),
    }
}

fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|off| i + off)
                .unwrap_or_else(|| panic!("unterminated quantifier in regex {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                None => {
                    let n = body
                        .parse()
                        .unwrap_or_else(|_| panic!("bad quantifier in regex {pattern:?}"));
                    (n, n)
                }
                Some((lo, hi)) => (
                    lo.parse()
                        .unwrap_or_else(|_| panic!("bad quantifier in regex {pattern:?}")),
                    hi.parse()
                        .unwrap_or_else(|_| panic!("bad quantifier in regex {pattern:?}")),
                ),
            };
            (lo, hi, close + 1)
        }
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn name_pattern_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = super::generate("[A-Z][a-z]{1,8} [A-Z][a-z]{1,8}", &mut r);
            let parts: Vec<&str> = s.split(' ').collect();
            assert_eq!(parts.len(), 2, "{s:?}");
            for p in parts {
                let mut cs = p.chars();
                assert!(cs.next().unwrap().is_ascii_uppercase(), "{s:?}");
                let rest: Vec<char> = cs.collect();
                assert!((1..=8).contains(&rest.len()), "{s:?}");
                assert!(rest.iter().all(|c| c.is_ascii_lowercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn dot_quantifier_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let s = super::generate(".{0,30}", &mut r);
            assert!(s.chars().count() <= 30);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    #[should_panic(expected = "negated class")]
    fn negated_class_is_rejected() {
        super::generate("[^;]{1,3}", &mut rng());
    }

    #[test]
    #[should_panic(expected = "unsupported regex syntax")]
    fn groups_are_rejected() {
        super::generate("(ab)+", &mut rng());
    }
}
