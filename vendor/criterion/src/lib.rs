//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_with_input` / `finish`, `Bencher::iter`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros —
//! with a plain timing loop instead of statistical sampling: each benchmark
//! runs `sample_size` batches after one warm-up batch and reports the
//! per-iteration mean and minimum to stdout.
//!
//! Two environment variables support CI automation (upstream criterion
//! covers these via CLI flags and `--message-format`):
//!
//! * `CRITERION_SAMPLE_SIZE=N` — overrides every configured sample size
//!   (the bench-smoke job uses `N = 2` to *execute* each bench cheaply);
//! * `CRITERION_JSON=PATH` — additionally writes the results as a JSON
//!   array of `{"label", "mean_ns", "min_ns", "samples"}` objects when the
//!   harness exits, so runs can be diffed and gated by machines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Environment variable overriding all configured sample sizes.
pub const SAMPLE_SIZE_ENV: &str = "CRITERION_SAMPLE_SIZE";

/// Environment variable naming the JSON report file.
pub const JSON_ENV: &str = "CRITERION_JSON";

/// Results accumulated for the JSON report (label, mean ns, min ns,
/// samples).
static JSON_RECORDS: Mutex<Vec<(String, u128, u128, usize)>> = Mutex::new(Vec::new());

fn sample_size_override() -> Option<usize> {
    std::env::var(SAMPLE_SIZE_ENV)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
}

/// Writes the accumulated JSON report to `CRITERION_JSON` if set. Called
/// by `criterion_main!` after all groups run; a no-op otherwise.
pub fn write_json_report() {
    let Ok(path) = std::env::var(JSON_ENV) else {
        return;
    };
    let records = JSON_RECORDS.lock().expect("json records poisoned");
    let mut out = String::from("[\n");
    for (i, (label, mean, min, samples)) in records.iter().enumerate() {
        let escaped: String = label
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "  {{\"label\": \"{escaped}\", \"mean_ns\": {mean}, \"min_ns\": {min}, \"samples\": {samples}}}{}\n",
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion: cannot write {path}: {e}");
    }
}

/// Benchmark driver; collects configuration and prints results.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench <name>` passes the name filter as the first
        // non-flag argument to each harness=false binary; honour it so a
        // single benchmark can be re-measured in isolation.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 100,
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            filter: self.filter.clone(),
            _criterion: self,
        }
    }
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered into the label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id labelled `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    filter: Option<String>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    fn skips(&self, label: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !label.contains(f))
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        if self.skips(&label) {
            return;
        }
        let mut bencher = Bencher {
            sample_size: sample_size_override().unwrap_or(self.sample_size),
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&label);
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        if self.skips(&label) {
            return;
        }
        let mut bencher = Bencher {
            sample_size: sample_size_override().unwrap_or(self.sample_size),
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&label);
    }

    /// Ends the group (upstream flushes reports here; ours prints eagerly).
    pub fn finish(self) {}
}

/// Times a closure; handed to benchmark functions.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` in `sample_size` timed batches (after one warm-up
    /// batch) and records per-batch wall-clock durations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{label:<60} mean {:>12?}   min {:>12?}   ({} samples)",
            mean,
            min,
            self.samples.len()
        );
        JSON_RECORDS.lock().expect("json records poisoned").push((
            label.to_string(),
            mean.as_nanos(),
            min.as_nanos(),
            self.samples.len(),
        ));
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; ignore them.
            $( $group(); )*
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test covers every env-var behaviour: `std::env::set_var` racing
    // a concurrent `env::var` from another test thread is undefined
    // behaviour, so all environment mutation stays on a single test.
    #[test]
    fn env_overrides_and_json_report() {
        std::env::remove_var(SAMPLE_SIZE_ENV);
        assert_eq!(sample_size_override(), None);
        std::env::set_var(SAMPLE_SIZE_ENV, "3");
        assert_eq!(sample_size_override(), Some(3));
        std::env::set_var(SAMPLE_SIZE_ENV, "0");
        assert_eq!(sample_size_override(), None);
        std::env::set_var(SAMPLE_SIZE_ENV, "many");
        assert_eq!(sample_size_override(), None);
        std::env::remove_var(SAMPLE_SIZE_ENV);

        // Per-process filename: concurrent `cargo test` runs on one host
        // must not race on a shared temp file.
        let path =
            std::env::temp_dir().join(format!("criterion-json-test-{}.json", std::process::id()));
        JSON_RECORDS
            .lock()
            .unwrap()
            .push(("group/bench \"x\"/8".to_string(), 1500, 1200, 10));
        std::env::set_var(JSON_ENV, &path);
        write_json_report();
        std::env::remove_var(JSON_ENV);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"label\": \"group/bench \\\"x\\\"/8\""));
        assert!(text.contains("\"mean_ns\": 1500"));
        assert!(text.contains("\"min_ns\": 1200"));
        assert!(text.contains("\"samples\": 10"));
        assert!(text.trim_start().starts_with('[') && text.trim_end().ends_with(']'));
    }
}
