//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset this workspace's benches use — `Criterion`,
//! `benchmark_group` / `bench_with_input` / `finish`, `Bencher::iter`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros —
//! with a plain timing loop instead of statistical sampling: each benchmark
//! runs `sample_size` batches after one warm-up batch and reports the
//! per-iteration mean and minimum to stdout.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects configuration and prints results.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench <name>` passes the name filter as the first
        // non-flag argument to each harness=false binary; honour it so a
        // single benchmark can be re-measured in isolation.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 100,
            filter,
        }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            filter: self.filter.clone(),
            _criterion: self,
        }
    }
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered into the label.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id labelled `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    filter: Option<String>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be at least 1");
        self.sample_size = n;
        self
    }

    fn skips(&self, label: &str) -> bool {
        self.filter.as_deref().is_some_and(|f| !label.contains(f))
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        if self.skips(&label) {
            return;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&label);
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        if self.skips(&label) {
            return;
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&label);
    }

    /// Ends the group (upstream flushes reports here; ours prints eagerly).
    pub fn finish(self) {}
}

/// Times a closure; handed to benchmark functions.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` in `sample_size` timed batches (after one warm-up
    /// batch) and records per-batch wall-clock durations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{label:<60} mean {:>12?}   min {:>12?}   ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; ignore them.
            $( $group(); )*
        }
    };
}
