//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A deterministic pseudo-random generator (xoshiro256** seeded through
/// SplitMix64). Stands in for `rand::rngs::StdRng`: not the same stream as
/// upstream, but the same contract — a fixed seed yields a fixed sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// The generator's raw internal state, for snapshot/restore of
    /// long-lived deterministic streams (upstream `rand` offers the same
    /// capability through serde on the concrete rng types).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with [`StdRng::state`];
    /// the restored generator continues the exact same sequence.
    pub fn from_state(s: [u64; 4]) -> StdRng {
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> StdRng {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
