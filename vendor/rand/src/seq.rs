//! Slice helpers, mirroring `rand::seq::SliceRandom`.

use crate::Rng;

/// Random selection and shuffling on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly chosen element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}
