//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a minimal, dependency-free implementation of exactly the `rand 0.8` API
//! surface the codebase uses: [`RngCore`], [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but equally deterministic: a fixed seed
//! always yields the same sequence, which is the only property the test
//! suite and the experiment binaries rely on.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// The core of a random number generator: raw integer output.
///
/// Object-safe, mirroring `rand::RngCore`; algorithms take
/// `&mut dyn RngCore` to stay generic over generators.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let bytes = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&bytes[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Values that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from the generator's standard distribution.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

mod private {
    /// Seals [`super::SampleRange`] against downstream impls.
    pub trait Sealed {}
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T>: private::Sealed {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl private::Sealed for core::ops::Range<$t> {}
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = rng.next_u64() as u128 % width;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl private::Sealed for core::ops::RangeInclusive<$t> {}
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = rng.next_u64() as u128 % width;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl private::Sealed for core::ops::Range<$t> {}
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl private::Sealed for core::ops::RangeInclusive<$t> {}
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Convenience methods on every [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        self.gen::<f64>() < p
    }

    /// Draws a uniform value from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;
    use crate::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let mut r = StdRng::seed_from_u64(7);
        assert!(a.iter().all(|&x| x == r.next_u64()));
        let mut other = StdRng::seed_from_u64(8);
        assert!(a.iter().any(|&x| x != other.next_u64()));
    }

    #[test]
    fn state_roundtrip_continues_the_stream() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            r.next_u64();
        }
        let saved = r.state();
        let tail: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        let mut restored = StdRng::from_state(saved);
        assert!(tail.iter().all(|&x| x == restored.next_u64()));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = r.gen_range(3usize..7);
            assert!((3..7).contains(&i));
            let j = r.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&j));
            let f = r.gen_range(-0.5f64..=0.5);
            assert!((-0.5..=0.5).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
        assert_eq!(r.gen_range(5usize..=5), 5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_stays_in_slice() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.contains(v.choose(&mut r).unwrap()));
        assert!(Vec::<usize>::new().choose(&mut r).is_none());
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut r = StdRng::seed_from_u64(4);
        let dynr: &mut dyn RngCore = &mut r;
        let x = dynr.gen_range(0usize..10);
        assert!(x < 10);
    }
}
