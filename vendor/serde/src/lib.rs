//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a miniserde-style replacement: instead of upstream's zero-copy visitor
//! architecture, [`Serialize`] renders a value into an owned [`Value`] tree
//! and [`Deserialize`] rebuilds from one. The `serde_json` stand-in then
//! prints/parses that tree. This supports exactly what the codebase needs —
//! `#[derive(Serialize, Deserialize)]` on attribute-free structs and enums,
//! plus the std impls below — and nothing more.
//!
//! Maps serialize as arrays of `[key, value]` pairs so non-string keys
//! round-trip without a string-key convention.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped document tree: the wire model of this serde stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Signed integer numbers.
    Int(i64),
    /// Unsigned integer numbers above `i64::MAX` (smaller unsigned values
    /// normalise to [`Value::Int`] so comparisons stay canonical).
    UInt(u64),
    /// Non-integer numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, order-preserving.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get_field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short description of the value's shape for error messages —
    /// deliberately not the full `Debug` dump, which for a large document
    /// would flood the error with the whole tree.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a bool",
            Value::Int(_) | Value::UInt(_) => "an integer",
            Value::Float(_) => "a number",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Map(_) => "a map",
        }
    }
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Builds an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a document tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a document tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

// --- primitive impls -------------------------------------------------------

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!(
                            "{} out of range for {}", i, stringify!($t)))),
                    Value::Float(f) => {
                        // Accept only floats this type represents exactly;
                        // `as` saturates, so the round-trip check catches
                        // both out-of-range and fractional values.
                        let t = *f as $t;
                        if f.fract() == 0.0 && t as f64 == *f {
                            Ok(t)
                        } else {
                            Err(Error::custom(format!(
                                "{f} is not exactly representable as {}",
                                stringify!($t))))
                        }
                    }
                    other => Err(Error::custom(format!(
                        "expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(format!(
                            "{} out of range for {}", i, stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::custom(format!(
                            "{} out of range for {}", u, stringify!($t)))),
                    Value::Float(f) => {
                        let t = *f as $t;
                        if f.fract() == 0.0 && *f >= 0.0 && t as f64 == *f {
                            Ok(t)
                        } else {
                            Err(Error::custom(format!(
                                "{f} is not exactly representable as {}",
                                stringify!($t))))
                        }
                    }
                    other => Err(Error::custom(format!(
                        "expected integer, found {}", other.kind()))),
                }
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {}", other.kind()))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected char, found {}",
                other.kind()
            ))),
        }
    }
}

// --- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected {N} elements, found {len}")))
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array()
                    .ok_or_else(|| Error::custom("expected array for tuple"))?;
                let expected = [$(stringify!($n)),+].len();
                if a.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, found {} elements", a.len())));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

fn map_to_value<'a, K, V>(entries: impl Iterator<Item = (&'a K, &'a V)>) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
{
    Value::Array(
        entries
            .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    v.as_array()
        .ok_or_else(|| Error::custom("expected array of pairs for map"))?
        .iter()
        .map(|pair| {
            let a = pair
                .as_array()
                .ok_or_else(|| Error::custom("expected [key, value] pair"))?;
            if a.len() != 2 {
                return Err(Error::custom("expected [key, value] pair"));
            }
            Ok((K::from_value(&a[0])?, V::from_value(&a[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value(v)?.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output; hash iteration order is not stable.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        map_to_value(entries.into_iter())
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value(v)?.into_iter().collect())
    }
}
