//! The checker checking itself: correct models must pass under every
//! schedule, and deliberately broken models must be caught — a model
//! checker that cannot find a seeded bug proves nothing.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn serial_body_explores_exactly_one_schedule() {
    let report = loom::explore(10, || {
        let x = AtomicUsize::new(1);
        assert_eq!(x.load(Ordering::SeqCst), 1);
    });
    assert_eq!(report.schedules, 1);
    assert!(report.complete);
}

#[test]
fn atomic_increments_never_lose_updates() {
    let report = loom::explore(10_000, || {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let t = loom::thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        t.join();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete, "tiny model must be exhaustible");
    assert!(
        report.schedules >= 2,
        "both increment orders must be explored, got {}",
        report.schedules
    );
}

#[test]
fn exploration_is_exhaustive_over_sc_outcomes() {
    // The classic store-buffering shape. Under sequentially consistent
    // interleavings (what this checker explores) the outcome (0, 0) is
    // impossible; the other three must all be reached.
    let outcomes: Arc<std::sync::Mutex<BTreeSet<(usize, usize)>>> =
        Arc::new(std::sync::Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&outcomes);
    let report = loom::explore(10_000, move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = loom::thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        y.store(1, Ordering::SeqCst);
        let r1 = x.load(Ordering::SeqCst);
        let r2 = t.join();
        sink.lock().unwrap().insert((r1, r2));
    });
    assert!(report.complete);
    let seen = outcomes.lock().unwrap();
    assert!(!seen.contains(&(0, 0)), "SC forbids (0,0), got {seen:?}");
    for want in [(0, 1), (1, 0), (1, 1)] {
        assert!(
            seen.contains(&want),
            "missing SC outcome {want:?}: {seen:?}"
        );
    }
}

#[test]
fn checker_finds_a_seeded_lost_update() {
    // Unsynchronised read-modify-write: some interleaving loses one of the
    // two increments, and the in-model assertion must trip on it.
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::explore(10_000, || {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&counter);
            let t = loom::thread::spawn(move || {
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst);
            });
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
            t.join();
            assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
        });
    }));
    let payload = result.expect_err("the lost-update schedule must be found");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("lost update"), "unexpected payload: {msg}");
}

#[test]
fn mutex_serialises_read_modify_write() {
    let report = loom::explore(10_000, || {
        let counter = Arc::new(Mutex::new(0usize));
        let c2 = Arc::clone(&counter);
        let t = loom::thread::spawn(move || {
            let mut guard = c2.lock();
            *guard += 1;
        });
        {
            let mut guard = counter.lock();
            *guard += 1;
        }
        t.join();
        assert_eq!(*counter.lock(), 2);
    });
    assert!(report.complete);
    assert!(report.schedules >= 2);
}

#[test]
fn condvar_latch_never_misses_a_wakeup() {
    // The pool's completion-latch shape: done flag under a mutex, waiter in
    // a predicate loop, setter flips then notifies. Deadlock detection
    // makes a lost wakeup a hard failure in whichever schedule loses it.
    let report = loom::explore(10_000, || {
        struct Latch {
            done: Mutex<bool>,
            cv: Condvar,
        }
        let latch = Arc::new(Latch {
            done: Mutex::new(false),
            cv: Condvar::new(),
        });
        let l2 = Arc::clone(&latch);
        let t = loom::thread::spawn(move || {
            *l2.done.lock() = true;
            l2.cv.notify_all();
        });
        let mut done = latch.done.lock();
        while !*done {
            done = latch.cv.wait(done);
        }
        drop(done);
        t.join();
    });
    assert!(report.complete);
    assert!(report.schedules >= 2);
}

#[test]
fn checker_finds_abba_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::explore(10_000, || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = loom::thread::spawn(move || {
                let _gb = b2.lock();
                let _ga = a2.lock();
            });
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            t.join();
        });
    }));
    let payload = result.expect_err("the ABBA schedule must deadlock");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "unexpected payload: {msg}");
}

#[test]
fn channel_delivers_every_message_once_and_reports_disconnect() {
    let report = loom::explore(10_000, || {
        let (tx, rx) = loom::channel::unbounded::<usize>();
        let consumer = loom::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got
        });
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx); // disconnect wakes the blocked consumer
        let got = consumer.join();
        assert_eq!(got, vec![1, 2], "FIFO per sender, nothing lost");
    });
    assert!(report.complete);
    assert!(report.schedules >= 2);
}

#[test]
fn budget_exhaustion_reports_incomplete() {
    let report = loom::explore(3, || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = loom::thread::spawn(move || {
            x2.fetch_add(1, Ordering::SeqCst);
            x2.fetch_add(1, Ordering::SeqCst);
        });
        x.fetch_add(1, Ordering::SeqCst);
        x.fetch_add(1, Ordering::SeqCst);
        t.join();
        assert_eq!(x.load(Ordering::SeqCst), 4);
    });
    assert_eq!(report.schedules, 3, "budget is a hard cap");
    assert!(!report.complete);
}

#[test]
fn model_asserts_exhaustion() {
    // `model` is the exhaustive entry point; a tiny model passes.
    loom::model(|| {
        let x = AtomicUsize::new(0);
        x.store(7, Ordering::SeqCst);
        assert_eq!(x.load(Ordering::SeqCst), 7);
    });
}
