//! Offline stand-in for [`loom`](https://crates.io/crates/loom): a bounded
//! exhaustive **interleaving** model checker for concurrent code.
//!
//! A model is an ordinary closure that spawns [`thread`]s and communicates
//! through the shim primitives in [`sync`] and [`channel`]. Every shim
//! operation — an atomic access, a mutex acquire/release, a condvar
//! wait/notify, a channel send/recv, a spawn or join — is a *yield point*:
//! the thread parks there and only proceeds when the scheduler grants it a
//! quantum. Exactly one model thread runs at a time, so an execution is
//! fully described by its sequence of grant decisions. [`explore`] runs the
//! model repeatedly, depth-first over all decision sequences, until the
//! space is exhausted or a schedule budget is hit — assertions inside the
//! model therefore hold *for every explored interleaving*, not just the
//! ones the OS happened to produce.
//!
//! # What this checks, and what it does not
//!
//! * **Checked**: all interleavings of shim operations under sequentially
//!   consistent semantics — lost updates, double executions, lost wakeups,
//!   deadlocks (detected and reported with the blocked-thread set), and
//!   ordinary assertion failures, in any schedule.
//! * **Not checked**: weak-memory reorderings. `Ordering` arguments are
//!   accepted for API compatibility and ignored; every access is explored
//!   as seq-cst. (The real loom models the C11 memory model; this stand-in
//!   trades that for zero dependencies and a few hundred lines.)
//!
//! Models must be deterministic apart from scheduling: no wall-clock reads,
//! no entropy-seeded randomness. Replay of a decision prefix must reproduce
//! the same reachable ops, which is also what makes a reported failing
//! schedule meaningful. A nondeterministic model is detected (the replay
//! prefix stops matching the runnable set) and reported as an error.
//!
//! # Example
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! let report = loom::explore(1_000, || {
//!     let counter = Arc::new(AtomicUsize::new(0));
//!     let c2 = Arc::clone(&counter);
//!     let t = loom::thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     counter.fetch_add(1, Ordering::SeqCst);
//!     t.join();
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.complete);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod scheduler;

pub mod channel;
pub mod sync;
pub mod thread;

pub use scheduler::{explore, model, Report, DEFAULT_SCHEDULE_BUDGET};
