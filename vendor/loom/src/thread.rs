//! Model threads: [`spawn`] and [`JoinHandle`], scheduled cooperatively by
//! the explorer. Spawn and join are yield points.

use crate::scheduler::{spawn_child, with_current};
use std::sync::{Arc, Mutex};

/// Handle to a spawned model thread; [`JoinHandle::join`] blocks (in the
/// model) until it finishes and returns its result.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<Mutex<Option<T>>>,
}

/// Spawns a model thread running `f`. The closure must be `'static` — share
/// state via [`crate::sync::Arc`], exactly as with `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let slot = Arc::new(Mutex::new(None));
    let slot_in = Arc::clone(&slot);
    let tid = spawn_child(move || {
        let value = f();
        *slot_in.lock().expect("loom join slot poisoned") = Some(value);
    });
    JoinHandle { tid, slot }
}

impl<T> JoinHandle<T> {
    /// Waits (as a model operation) for the thread to finish and returns
    /// its value. A panic in the target thread aborts the whole execution
    /// with that payload, so `join` itself never returns an error.
    pub fn join(self) -> T {
        with_current(|sched, tid| {
            sched.yield_point(tid);
            let res = sched.join_res_of(self.tid);
            while !sched.is_finished(self.tid) {
                sched.block_on(res, tid);
            }
        });
        self.slot
            .lock()
            .expect("loom join slot poisoned")
            .take()
            .expect("loom: joined thread finished without a result (it panicked)")
    }
}
