//! Shim synchronisation primitives: every operation is a yield point
//! explored by the scheduler.
//!
//! `Arc` is re-exported from std unchanged — reference counting is not a
//! scheduling-observable effect in this stand-in.

pub use std::sync::Arc;

use crate::scheduler::{in_model, with_current, ResId};

pub mod atomic {
    //! Interleaving-explored atomics. `Ordering` is accepted and ignored:
    //! all accesses are explored as seq-cst (see the crate docs).

    pub use std::sync::atomic::Ordering;

    use crate::scheduler::with_current;

    /// One private yield point per atomic operation.
    fn op_point() {
        with_current(|sched, tid| sched.yield_point(tid));
    }

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $val:ty) => {
            /// Model-checked atomic; each access is one scheduling quantum.
            #[derive(Debug, Default)]
            pub struct $name {
                cell: $std,
            }

            impl $name {
                /// Creates the atomic. Construction is not a yield point.
                pub fn new(v: $val) -> $name {
                    $name {
                        cell: <$std>::new(v),
                    }
                }

                /// Loads the value (one quantum).
                pub fn load(&self, _order: Ordering) -> $val {
                    op_point();
                    self.cell.load(Ordering::SeqCst)
                }

                /// Stores `v` (one quantum).
                pub fn store(&self, v: $val, _order: Ordering) {
                    op_point();
                    self.cell.store(v, Ordering::SeqCst)
                }

                /// Swaps in `v`, returning the previous value (one quantum).
                pub fn swap(&self, v: $val, _order: Ordering) -> $val {
                    op_point();
                    self.cell.swap(v, Ordering::SeqCst)
                }
            }
        };
    }

    shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

    impl AtomicUsize {
        /// Atomic add, returning the previous value (one quantum).
        pub fn fetch_add(&self, v: usize, _order: Ordering) -> usize {
            op_point();
            self.cell.fetch_add(v, Ordering::SeqCst)
        }

        /// Atomic subtract, returning the previous value (one quantum).
        pub fn fetch_sub(&self, v: usize, _order: Ordering) -> usize {
            op_point();
            self.cell.fetch_sub(v, Ordering::SeqCst)
        }

        /// Compare-and-exchange (one quantum); `Ok(previous)` on success.
        pub fn compare_exchange(
            &self,
            current: usize,
            new: usize,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<usize, usize> {
            op_point();
            self.cell
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
        }
    }
}

/// A model-checked mutex.
///
/// Divergence from std: [`Mutex::lock`] returns the guard directly — there
/// is no poisoning, because any panic in a model thread aborts the whole
/// execution and is re-raised by the explorer.
#[derive(Debug)]
pub struct Mutex<T> {
    res: ResId,
    data: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releasing it (drop) is a yield point.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    std: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the mutex, registering it with the current execution's
    /// scheduler (must be called inside a model).
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            res: with_current(|sched, _| sched.alloc_res()),
            data: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the mutex, blocking (in the model) while another model
    /// thread holds it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        with_current(|sched, tid| {
            sched.yield_point(tid);
            while !sched.try_acquire(self.res) {
                sched.block_on(self.res, tid);
            }
        });
        MutexGuard {
            mutex: self,
            std: Some(self.data.lock().expect("loom mutex storage poisoned")),
        }
    }

    /// Re-acquires after a condvar wakeup: the caller already holds a fresh
    /// grant, so there is no leading yield point.
    fn reacquire(&self) -> MutexGuard<'_, T> {
        with_current(|sched, tid| {
            while !sched.try_acquire(self.res) {
                sched.block_on(self.res, tid);
            }
        });
        MutexGuard {
            mutex: self,
            std: Some(self.data.lock().expect("loom mutex storage poisoned")),
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard accessed after wait")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard accessed after wait")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.std = None;
        // During an abort unwind (or teardown outside the model) release
        // the model resource without a yield point — there is no schedule
        // left to explore.
        if in_model() && !std::thread::panicking() {
            with_current(|sched, tid| {
                sched.yield_point(tid);
                sched.release(self.mutex.res);
            });
        }
    }
}

/// A model-checked condition variable. No spurious wakeups: waiters wake
/// only on [`Condvar::notify_one`] / [`Condvar::notify_all`] — write the
/// usual predicate loop anyway, exactly as the checked production code
/// does.
#[derive(Debug)]
pub struct Condvar {
    res: ResId,
}

impl Condvar {
    /// Creates the condvar, registering it with the current execution's
    /// scheduler (must be called inside a model).
    pub fn new() -> Condvar {
        Condvar {
            res: with_current(|sched, _| sched.alloc_res()),
        }
    }

    /// Atomically releases `guard`'s mutex and waits for a notification,
    /// then re-acquires the mutex before returning.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex;
        let cv_res = self.res;
        // Drop the storage lock now; the model-level release happens
        // atomically with blocking inside `condvar_wait`, so `forget`
        // skips the guard's own release-on-drop.
        guard.std = None;
        std::mem::forget(guard);
        with_current(|sched, tid| {
            sched.yield_point(tid);
            sched.condvar_wait(cv_res, mutex.res, tid);
        });
        mutex.reacquire()
    }

    /// Wakes every waiter (one quantum).
    pub fn notify_all(&self) {
        with_current(|sched, tid| {
            sched.yield_point(tid);
            sched.wake_all(self.res);
        });
    }

    /// Wakes the lowest-id waiter (one quantum).
    pub fn notify_one(&self) {
        with_current(|sched, tid| {
            sched.yield_point(tid);
            sched.wake_one(self.res);
        });
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}
