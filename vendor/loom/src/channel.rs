//! Model-checked mpmc channel mirroring the vendored
//! `crossbeam::channel::unbounded` surface the pool uses: `send`, blocking
//! `recv` with disconnect detection, cloneable ends. Send, recv, and
//! sender-drop (disconnection) are yield points.

use crate::scheduler::{in_model, with_current, ResId};
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

struct State<T> {
    items: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Scheduler resource blocked receivers wait on.
    res: ResId,
}

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

/// The sending half; clone to add producers. Dropping the last sender
/// disconnects the channel and wakes blocked receivers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clone to add consumers — each message is delivered
/// to exactly one of them.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded model-checked mpmc channel (must be called inside
/// a model).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            items: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        res: with_current(|sched, _| sched.alloc_res()),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().expect("loom channel storage poisoned")
    }
}

impl<T> Sender<T> {
    /// Enqueues `value` (one quantum) and wakes blocked receivers. Fails
    /// when every receiver has dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        with_current(|sched, tid| {
            sched.yield_point(tid);
            let mut state = self.shared.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            sched.wake_all(self.shared.res);
            Ok(())
        })
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next message, blocking (in the model) while the channel
    /// is empty; errors once it is empty *and* disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        with_current(|sched, tid| {
            sched.yield_point(tid);
            loop {
                let mut state = self.shared.lock();
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                drop(state);
                sched.block_on(self.shared.res, tid);
            }
        })
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        // Hand-over of an existing reference, not a scheduling-observable
        // event: no yield point, matching Arc semantics.
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        // Disconnection is observable (it terminates receiver loops), so
        // dropping the last sender is a yield point — except during an
        // abort unwind or teardown outside the model.
        let last = {
            let mut state = self.shared.lock();
            state.senders -= 1;
            state.senders == 0
        };
        if last && in_model() && !std::thread::panicking() {
            with_current(|sched, tid| {
                sched.yield_point(tid);
                sched.wake_all(self.shared.res);
            });
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receivers -= 1;
    }
}
