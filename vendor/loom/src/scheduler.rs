//! The cooperative scheduler and the depth-first schedule explorer.
//!
//! One execution: model threads are real OS threads, but exactly one holds
//! the *grant* at any moment. A thread reaching a yield point parks and
//! notifies the controller; the controller waits until every thread is
//! parked, blocked, or finished, then grants one parked thread the next
//! quantum. The grant sequence is recorded as a trace of [`Choice`]s (who
//! ran, who else was runnable); depth-first search over untried
//! alternatives enumerates every interleaving.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Hard per-execution step cap: a model that exceeds it almost certainly
/// loops forever under some schedule, which the explorer reports instead of
/// hanging.
const MAX_STEPS_PER_EXECUTION: usize = 100_000;

/// Default budget used by [`model`].
pub const DEFAULT_SCHEDULE_BUDGET: usize = 10_000;

/// Sentinel payload used to wind down the remaining model threads once an
/// execution aborts (assertion failure, deadlock, step cap). Filtered from
/// panic-hook output and never reported to the user.
struct LoomAbort;

/// Resource identifier (a mutex, condvar, channel, or join latch).
pub(crate) type ResId = usize;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Holds the grant and is executing its quantum.
    Running,
    /// Parked at a yield point; eligible for the next grant.
    Parked,
    /// Waiting on a resource; ineligible until woken.
    Blocked(ResId),
    Finished,
}

/// One scheduling decision: the granted thread and the full runnable set it
/// was chosen from (the DFS alternatives).
struct Choice {
    chosen: usize,
    alternatives: Vec<usize>,
}

struct Inner {
    statuses: Vec<Status>,
    /// The thread currently between a grant and its next park, if any.
    active: Option<usize>,
    /// Mutex-style resources: `held[r]` while some thread owns `r`.
    held: Vec<bool>,
    /// Per-thread join latch resource, woken when the thread finishes.
    join_res: Vec<ResId>,
    trace: Vec<Choice>,
    /// Replayed decisions for this execution; beyond it, lowest-tid-first.
    prefix: Vec<usize>,
    step: usize,
    /// Set on assertion failure / deadlock / step cap: remaining threads
    /// are woken to unwind with [`LoomAbort`].
    abort: bool,
    /// First real panic payload (not `LoomAbort`), re-raised by `explore`.
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
    real_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// Runs `f` with the current model thread's scheduler handle and id.
/// Panics when called outside a model execution — shim primitives only work
/// inside [`explore`].
pub(crate) fn with_current<R>(f: impl FnOnce(&Arc<Scheduler>, usize) -> R) -> R {
    CURRENT.with(|c| {
        let borrow = c.borrow();
        let (sched, tid) = borrow
            .as_ref()
            .expect("loom primitive used outside loom::explore / loom::model");
        f(sched, *tid)
    })
}

/// True when the calling thread is a model thread (used by shim `Drop`
/// impls, which must tolerate running during teardown outside a model).
pub(crate) fn in_model() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

impl Scheduler {
    fn new(prefix: Vec<usize>) -> Scheduler {
        Scheduler {
            inner: Mutex::new(Inner {
                statuses: Vec::new(),
                active: None,
                held: Vec::new(),
                join_res: Vec::new(),
                trace: Vec::new(),
                prefix,
                step: 0,
                abort: false,
                panic_payload: None,
                real_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("loom scheduler lock poisoned")
    }

    /// Registers a new model thread (status Parked) and allocates its join
    /// latch. Returns the new thread id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut inner = self.lock();
        let tid = inner.statuses.len();
        inner.statuses.push(Status::Parked);
        let res = inner.held.len();
        inner.held.push(false);
        inner.join_res.push(res);
        tid
    }

    pub(crate) fn join_res_of(&self, tid: usize) -> ResId {
        self.lock().join_res[tid]
    }

    /// Allocates a fresh blocking resource (mutex, condvar, channel).
    pub(crate) fn alloc_res(&self) -> ResId {
        let mut inner = self.lock();
        let res = inner.held.len();
        inner.held.push(false);
        res
    }

    /// Parks the calling thread at a yield point and returns once the
    /// controller grants it the next quantum.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut inner = self.lock();
        inner.statuses[tid] = Status::Parked;
        if inner.active == Some(tid) {
            inner.active = None;
        }
        self.cv.notify_all();
        while inner.statuses[tid] != Status::Running {
            inner = self.cv.wait(inner).expect("loom scheduler lock poisoned");
        }
        self.check_abort(inner);
    }

    /// Blocks the calling thread on `res` (releasing its grant) and returns
    /// once it has been woken *and* granted a fresh quantum.
    pub(crate) fn block_on(&self, res: ResId, tid: usize) {
        let mut inner = self.lock();
        inner.statuses[tid] = Status::Blocked(res);
        if inner.active == Some(tid) {
            inner.active = None;
        }
        self.cv.notify_all();
        while inner.statuses[tid] != Status::Running {
            inner = self.cv.wait(inner).expect("loom scheduler lock poisoned");
        }
        self.check_abort(inner);
    }

    /// While holding a grant: acquire `res` if free. Returns whether it was
    /// acquired.
    pub(crate) fn try_acquire(&self, res: ResId) -> bool {
        let mut inner = self.lock();
        if inner.held[res] {
            false
        } else {
            inner.held[res] = true;
            true
        }
    }

    /// While holding a grant: release `res` and make its waiters runnable.
    pub(crate) fn release(&self, res: ResId) {
        let mut inner = self.lock();
        inner.held[res] = false;
        Self::wake_waiters(&mut inner, res);
        self.cv.notify_all();
    }

    /// While holding a grant: make every thread blocked on `res` runnable
    /// without touching the held bit (condvar notify, channel send).
    pub(crate) fn wake_all(&self, res: ResId) {
        let mut inner = self.lock();
        Self::wake_waiters(&mut inner, res);
        self.cv.notify_all();
    }

    /// While holding a grant: wake the lowest-tid thread blocked on `res`.
    pub(crate) fn wake_one(&self, res: ResId) {
        let mut inner = self.lock();
        if let Some(status) = inner
            .statuses
            .iter_mut()
            .find(|s| **s == Status::Blocked(res))
        {
            *status = Status::Parked;
        }
        self.cv.notify_all();
    }

    /// Atomically: release the mutex resource `mutex`, wake its waiters,
    /// and block the caller on the condvar resource `cv_res`. This is the
    /// one operation that must not be split, or a notify between release
    /// and block would be lost — the very bug class the checker exists to
    /// find.
    pub(crate) fn condvar_wait(&self, cv_res: ResId, mutex: ResId, tid: usize) {
        let mut inner = self.lock();
        inner.held[mutex] = false;
        Self::wake_waiters(&mut inner, mutex);
        inner.statuses[tid] = Status::Blocked(cv_res);
        if inner.active == Some(tid) {
            inner.active = None;
        }
        self.cv.notify_all();
        while inner.statuses[tid] != Status::Running {
            inner = self.cv.wait(inner).expect("loom scheduler lock poisoned");
        }
        self.check_abort(inner);
    }

    fn wake_waiters(inner: &mut Inner, res: ResId) {
        for status in inner.statuses.iter_mut() {
            if *status == Status::Blocked(res) {
                *status = Status::Parked;
            }
        }
    }

    /// Marks the calling thread finished, records a real panic payload (if
    /// any) and wakes joiners. `LoomAbort` payloads are the wind-down
    /// signal, not failures, and are dropped.
    pub(crate) fn finish(&self, tid: usize, payload: Option<Box<dyn std::any::Any + Send>>) {
        let mut inner = self.lock();
        inner.statuses[tid] = Status::Finished;
        if inner.active == Some(tid) {
            inner.active = None;
        }
        if let Some(payload) = payload {
            if !payload.is::<LoomAbort>() {
                if inner.panic_payload.is_none() {
                    inner.panic_payload = Some(payload);
                }
                inner.abort = true;
            }
        }
        let res = inner.join_res[tid];
        Self::wake_waiters(&mut inner, res);
        self.cv.notify_all();
    }

    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.lock().statuses[tid] == Status::Finished
    }

    pub(crate) fn push_real_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock().real_handles.push(handle);
    }

    /// Called with the lock held after a wait loop: if the execution is
    /// aborting, unwind this thread with the wind-down sentinel.
    fn check_abort(&self, inner: std::sync::MutexGuard<'_, Inner>) {
        if inner.abort && !std::thread::panicking() {
            drop(inner);
            std::panic::panic_any(LoomAbort);
        }
    }

    /// Raises an execution-level failure: records `msg` as the payload,
    /// flips `abort`, and wakes every live thread so it can wind down.
    fn fail(&self, msg: String) {
        let mut inner = self.lock();
        if inner.panic_payload.is_none() {
            inner.panic_payload = Some(Box::new(msg));
        }
        inner.abort = true;
        for status in inner.statuses.iter_mut() {
            if matches!(*status, Status::Parked | Status::Blocked(_)) {
                *status = Status::Running;
            }
        }
        self.cv.notify_all();
    }

    /// The controller loop: drives one execution to completion and returns
    /// its trace. Runs on the exploring (non-model) thread.
    fn drive(&self) -> Vec<Choice> {
        loop {
            let mut inner = self.lock();
            // Wait until no thread is inside a quantum.
            while inner.active.is_some() {
                inner = self.cv.wait(inner).expect("loom scheduler lock poisoned");
            }
            if inner.abort {
                // Wind-down: keep waking every still-live thread (threads
                // mid-quantum may park once more before they observe the
                // abort) until the execution drains.
                loop {
                    for status in inner.statuses.iter_mut() {
                        if matches!(*status, Status::Parked | Status::Blocked(_)) {
                            *status = Status::Running;
                        }
                    }
                    self.cv.notify_all();
                    if inner.statuses.iter().all(|s| *s == Status::Finished) {
                        break;
                    }
                    inner = self.cv.wait(inner).expect("loom scheduler lock poisoned");
                }
                break;
            }
            if inner.statuses.iter().all(|s| *s == Status::Finished) {
                break;
            }
            let runnable: Vec<usize> = inner
                .statuses
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == Status::Parked)
                .map(|(t, _)| t)
                .collect();
            if runnable.is_empty() {
                let blocked: Vec<String> = inner
                    .statuses
                    .iter()
                    .enumerate()
                    .filter_map(|(t, s)| match s {
                        Status::Blocked(r) => Some(format!("thread {t} blocked on resource {r}")),
                        _ => None,
                    })
                    .collect();
                drop(inner);
                self.fail(format!(
                    "loom: deadlock detected — no runnable thread ({})",
                    blocked.join(", ")
                ));
                continue;
            }
            if inner.step >= MAX_STEPS_PER_EXECUTION {
                drop(inner);
                self.fail(format!(
                    "loom: execution exceeded {MAX_STEPS_PER_EXECUTION} steps — \
                     the model likely loops under this schedule"
                ));
                continue;
            }
            let step = inner.step;
            let chosen = if step < inner.prefix.len() {
                let c = inner.prefix[step];
                if !runnable.contains(&c) {
                    drop(inner);
                    self.fail(format!(
                        "loom: replay diverged at step {step} (thread {c} not runnable) — \
                         the model is nondeterministic (wall clock or entropy inside the model?)"
                    ));
                    continue;
                }
                c
            } else {
                runnable[0]
            };
            inner.trace.push(Choice {
                chosen,
                alternatives: runnable,
            });
            inner.step += 1;
            inner.statuses[chosen] = Status::Running;
            inner.active = Some(chosen);
            self.cv.notify_all();
        }
        // Drain the real OS threads before reporting anything.
        let handles = {
            let mut inner = self.lock();
            std::mem::take(&mut inner.real_handles)
        };
        for handle in handles {
            let _ = handle.join();
        }
        let mut inner = self.lock();
        if let Some(payload) = inner.panic_payload.take() {
            drop(inner);
            resume_unwind(payload);
        }
        std::mem::take(&mut inner.trace)
    }
}

/// Spawns the model thread `tid` running `body` on a real OS thread that
/// parks until its first grant.
fn spawn_model_thread(
    sched: &Arc<Scheduler>,
    tid: usize,
    body: impl FnOnce() + Send + 'static,
) -> std::thread::JoinHandle<()> {
    let sched = Arc::clone(sched);
    std::thread::Builder::new()
        .name(format!("loom-model-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), tid)));
            // Wait for the first grant (the thread starts Parked).
            {
                let mut inner = sched.lock();
                while inner.statuses[tid] != Status::Running {
                    inner = sched.cv.wait(inner).expect("loom scheduler lock poisoned");
                }
                let aborting = inner.abort;
                drop(inner);
                if aborting {
                    sched.finish(tid, None);
                    CURRENT.with(|c| *c.borrow_mut() = None);
                    return;
                }
            }
            let result = catch_unwind(AssertUnwindSafe(body));
            sched.finish(tid, result.err());
            CURRENT.with(|c| *c.borrow_mut() = None);
        })
        .expect("spawning loom model thread")
}

/// Registers and spawns a child model thread from inside a model (the
/// [`crate::thread::spawn`] implementation).
pub(crate) fn spawn_child(body: impl FnOnce() + Send + 'static) -> usize {
    with_current(|sched, tid| {
        sched.yield_point(tid);
        let child = sched.register_thread();
        let handle = spawn_model_thread(sched, child, body);
        sched.push_real_handle(handle);
        child
    })
}

/// The result of an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// Whether the schedule space was exhausted (`false`: the budget was
    /// hit first; every *executed* schedule still passed its assertions).
    pub complete: bool,
}

/// Installs (once, process-wide) a panic hook that silences the internal
/// wind-down sentinel and forwards everything else to the previous hook.
fn install_hook_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<LoomAbort>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Explores interleavings of `body` depth-first, up to `max_schedules`
/// executions. Panics (with the model's own panic payload, or a deadlock /
/// divergence report) if any explored schedule fails; otherwise returns how
/// far the exploration got.
pub fn explore<F>(max_schedules: usize, body: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(max_schedules > 0, "schedule budget must be positive");
    install_hook_once();
    let body = Arc::new(body);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let sched = Arc::new(Scheduler::new(std::mem::take(&mut prefix)));
        let root = sched.register_thread();
        debug_assert_eq!(root, 0);
        let body_run = Arc::clone(&body);
        let handle = spawn_model_thread(&sched, root, move || body_run());
        sched.push_real_handle(handle);
        let trace = sched.drive();
        schedules += 1;
        match next_prefix(&trace) {
            None => {
                return Report {
                    schedules,
                    complete: true,
                }
            }
            Some(_) if schedules >= max_schedules => {
                return Report {
                    schedules,
                    complete: false,
                }
            }
            Some(p) => prefix = p,
        }
    }
}

/// Exhaustively checks `body` under the default budget
/// ([`DEFAULT_SCHEDULE_BUDGET`]); panics if the space cannot be exhausted
/// within it — shrink the model or call [`explore`] with an explicit budget
/// for a bounded (sound-but-incomplete) check.
pub fn model<F>(body: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(DEFAULT_SCHEDULE_BUDGET, body);
    assert!(
        report.complete,
        "loom::model: schedule space not exhausted after {} schedules — \
         shrink the model or use loom::explore with an explicit budget",
        report.schedules
    );
}

/// The deepest-first DFS successor of a trace: re-run the longest prefix
/// that still has an untried alternative, taking the next-larger thread id
/// at that step.
fn next_prefix(trace: &[Choice]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        if let Some(&next) = trace[i].alternatives.iter().find(|&&a| a > trace[i].chosen) {
            let mut p: Vec<usize> = trace[..i].iter().map(|c| c.chosen).collect();
            p.push(next);
            return Some(p);
        }
    }
    None
}
