//! `#[derive(Serialize, Deserialize)]` for the vendored serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenTree` (no syn/quote — the build
//! environment is offline). Supports exactly the shapes this workspace uses:
//!
//! * named-field structs,
//! * tuple structs (newtypes like `TaskId(pub u64)`),
//! * enums with unit and struct variants,
//! * no generics, no serde attributes.
//!
//! Structs map to JSON objects keyed by field name; one-field tuple structs
//! are transparent; enum unit variants map to their name as a string and
//! struct variants to `{"VariantName": {fields…}}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Parsed shape of the deriving type.
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<(String, Variant)>),
}

enum Variant {
    Unit,
    Named(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn is_ident(tt: &TokenTree, word: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == word)
}

/// Skips attributes (`#[...]`, including expanded doc comments) and
/// visibility modifiers (`pub`, `pub(...)`) at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]` group.
                i += 2;
            }
            Some(tt) if is_ident(tt, "pub") => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits the tokens of a brace group into top-level comma-separated chunks.
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                cur.push(tt.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                cur.push(tt.clone());
            }
            _ => cur.push(tt.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts the field names of a named-field chunk list.
fn named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_commas(tokens)
        .iter()
        .filter_map(|chunk| {
            let i = skip_attrs_and_vis(chunk, 0);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match &tokens[i] {
        tt if is_ident(tt, "struct") => "struct",
        tt if is_ident(tt, "enum") => "enum",
        other => panic!("serde derive: expected struct or enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in does not support generic types ({name})");
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Named(named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Tuple(split_commas(&inner).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde derive: malformed struct body: {other:?}"),
        }
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde derive: malformed enum body: {other:?}"),
        };
        let inner: Vec<TokenTree> = body.into_iter().collect();
        let variants = split_commas(&inner)
            .iter()
            .filter_map(|chunk| {
                let j = skip_attrs_and_vis(chunk, 0);
                let vname = match chunk.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => return None,
                };
                let variant = match chunk.get(j + 1) {
                    None => Variant::Unit,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields: Vec<TokenTree> = g.stream().into_iter().collect();
                        Variant::Named(named_fields(&fields))
                    }
                    Some(other) => panic!(
                        "serde derive stand-in supports unit and struct variants only \
                         ({vname}: {other})"
                    ),
                };
                Some((vname, variant))
            })
            .collect();
        Shape::Enum(variants)
    };

    Input { name, shape }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse(input);
    let mut body = String::new();
    match &shape {
        Shape::Named(fields) => {
            body.push_str("let mut m = Vec::new();\n");
            for f in fields {
                let _ = writeln!(
                    body,
                    "m.push((String::from({f:?}), serde::Serialize::to_value(&self.{f})));"
                );
            }
            body.push_str("serde::Value::Map(m)");
        }
        Shape::Tuple(1) => body.push_str("serde::Serialize::to_value(&self.0)"),
        Shape::Tuple(n) => {
            body.push_str("serde::Value::Array(vec![");
            for idx in 0..*n {
                let _ = write!(body, "serde::Serialize::to_value(&self.{idx}),");
            }
            body.push_str("])");
        }
        Shape::Unit => body.push_str("serde::Value::Map(Vec::new())"),
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for (vname, variant) in variants {
                match variant {
                    Variant::Unit => {
                        let _ = writeln!(
                            body,
                            "{name}::{vname} => serde::Value::Str(String::from({vname:?})),"
                        );
                    }
                    Variant::Named(fields) => {
                        let binders = fields.join(", ");
                        let _ = writeln!(body, "{name}::{vname} {{ {binders} }} => {{");
                        body.push_str("let mut m = Vec::new();\n");
                        for f in fields {
                            let _ = writeln!(
                                body,
                                "m.push((String::from({f:?}), serde::Serialize::to_value({f})));"
                            );
                        }
                        let _ = writeln!(
                            body,
                            "serde::Value::Map(vec![(String::from({vname:?}), \
                             serde::Value::Map(m))]) }}"
                        );
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse(input);
    let mut body = String::new();
    match &shape {
        Shape::Named(fields) => {
            let _ = writeln!(
                body,
                "if v.as_map().is_none() {{ return Err(serde::Error::custom(\
                 format!(\"expected map for {name}, found {{}}\", v.kind()))); }}"
            );
            let _ = writeln!(body, "Ok({name} {{");
            for f in fields {
                let _ = writeln!(
                    body,
                    "{f}: serde::Deserialize::from_value(\
                     v.get_field({f:?}).unwrap_or(&serde::Value::Null))\
                     .map_err(|e| serde::Error::custom(\
                     format!(\"{name}.{f}: {{e}}\")))?,"
                );
            }
            body.push_str("})");
        }
        Shape::Tuple(1) => {
            let _ = write!(body, "Ok({name}(serde::Deserialize::from_value(v)?))");
        }
        Shape::Tuple(n) => {
            let _ = writeln!(
                body,
                "let a = v.as_array().ok_or_else(|| serde::Error::custom(\
                 \"expected array for {name}\"))?;\n\
                 if a.len() != {n} {{ return Err(serde::Error::custom(\
                 \"wrong arity for {name}\")); }}"
            );
            let _ = write!(body, "Ok({name}(");
            for idx in 0..*n {
                let _ = write!(body, "serde::Deserialize::from_value(&a[{idx}])?,");
            }
            body.push_str("))");
        }
        Shape::Unit => {
            let _ = write!(body, "Ok({name})");
        }
        Shape::Enum(variants) => {
            body.push_str("match v {\n");
            body.push_str("serde::Value::Str(s) => match s.as_str() {\n");
            for (vname, variant) in variants {
                if matches!(variant, Variant::Unit) {
                    let _ = writeln!(body, "{vname:?} => Ok({name}::{vname}),");
                }
            }
            let _ = writeln!(
                body,
                "other => Err(serde::Error::custom(format!(\
                 \"unknown {name} variant {{other:?}}\"))),\n}},"
            );
            body.push_str(
                "serde::Value::Map(m) if m.len() == 1 => {\n\
                 let (tag, inner) = &m[0];\nmatch tag.as_str() {\n",
            );
            for (vname, variant) in variants {
                if let Variant::Named(fields) = variant {
                    let _ = writeln!(body, "{vname:?} => Ok({name}::{vname} {{");
                    for f in fields {
                        let _ = writeln!(
                            body,
                            "{f}: serde::Deserialize::from_value(\
                             inner.get_field({f:?}).unwrap_or(&serde::Value::Null))?,"
                        );
                    }
                    body.push_str("}),\n");
                }
            }
            let _ = writeln!(
                body,
                "other => Err(serde::Error::custom(format!(\
                 \"unknown {name} variant {{other:?}}\"))),\n}}\n}},"
            );
            let _ = writeln!(
                body,
                "other => Err(serde::Error::custom(format!(\
                 \"expected {name}, found {{}}\", other.kind()))),\n}}"
            );
        }
    }
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> \
         {{\n{body}\n}}\n}}"
    )
    .parse()
    .expect("serde derive: generated Deserialize impl must parse")
}
