//! Offline stand-in for a [`mio`](https://crates.io/crates/mio)-style
//! readiness poller.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! minimal surface the serving layer's event loop needs: a level-triggered
//! [`Poller`] over non-blocking file descriptors with `register` /
//! `reregister` / `deregister` / `wait`, plus a pipe-based [`Waker`] for
//! cross-thread wake-ups. On Linux the default backend is `epoll(7)`;
//! everywhere (including Linux, selectable for tests) a portable `poll(2)`
//! backend is available. Both are level-triggered: an event repeats on
//! every `wait` until the readiness condition is drained.
//!
//! Ownership of non-blocking setup lives *here*: [`Poller::register`] puts
//! the descriptor into non-blocking mode itself (via `fcntl`), so callers
//! never touch `O_NONBLOCK` directly — the workspace's `adhoc-nonblocking`
//! lint flags any raw non-blocking setup outside this crate.
//!
//! No `libc` crate exists in the vendor set, so the syscalls are declared
//! directly as `extern "C"` items with the kernel ABI types spelled out
//! locally. Every unsafe block documents why the call is sound.

#![warn(missing_docs)]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

mod sys {
    //! Raw syscall surface. Types mirror the C ABI on the platforms the
    //! workspace targets (64-bit Unix).

    pub type CInt = i32;
    pub type CShort = i16;
    pub type Nfds = u64;

    pub const F_GETFL: CInt = 3;
    pub const F_SETFL: CInt = 4;

    #[cfg(target_os = "linux")]
    pub const O_NONBLOCK: CInt = 0o4000;
    #[cfg(not(target_os = "linux"))]
    pub const O_NONBLOCK: CInt = 0x0004;

    pub const POLLIN: CShort = 0x001;
    pub const POLLOUT: CShort = 0x004;
    pub const POLLERR: CShort = 0x008;
    pub const POLLHUP: CShort = 0x010;

    pub const EINTR: CInt = 4;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: CInt,
        pub events: CShort,
        pub revents: CShort,
    }

    extern "C" {
        pub fn fcntl(fd: CInt, cmd: CInt, arg: CInt) -> CInt;
        pub fn poll(fds: *mut PollFd, nfds: Nfds, timeout: CInt) -> CInt;
        pub fn close(fd: CInt) -> CInt;
        pub fn read(fd: CInt, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: CInt, buf: *const u8, count: usize) -> isize;
        pub fn pipe(fds: *mut CInt) -> CInt;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use super::CInt;

        pub const EPOLL_CLOEXEC: CInt = 0o2000000;
        pub const EPOLL_CTL_ADD: CInt = 1;
        pub const EPOLL_CTL_DEL: CInt = 2;
        pub const EPOLL_CTL_MOD: CInt = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;

        // The kernel's epoll_event is packed on x86-64 (a 32-bit ABI
        // leftover) and naturally aligned elsewhere.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: CInt) -> CInt;
            pub fn epoll_ctl(epfd: CInt, op: CInt, fd: CInt, event: *mut EpollEvent) -> CInt;
            pub fn epoll_wait(
                epfd: CInt,
                events: *mut EpollEvent,
                maxevents: CInt,
                timeout: CInt,
            ) -> CInt;
        }
    }
}

/// Which readiness conditions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    read: bool,
    write: bool,
}

impl Interest {
    /// Readable-only interest.
    pub const READABLE: Interest = Interest {
        read: true,
        write: false,
    };
    /// Writable-only interest.
    pub const WRITABLE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: usize,
    /// Reading will not block (includes EOF: a read returning 0).
    pub readable: bool,
    /// Writing will not block.
    pub writable: bool,
}

/// Sets a descriptor non-blocking. Private on purpose: registration is the
/// only path, so non-blocking setup cannot leak into caller code.
fn set_fd_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: F_GETFL on an owned, open descriptor reads its status flags
    // and touches no memory.
    let flags = unsafe { sys::fcntl(fd, sys::F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: F_SETFL only updates the descriptor's status flags; the
    // argument is the flag word just read, plus the non-blocking bit.
    if unsafe { sys::fcntl(fd, sys::F_SETFL, flags | sys::O_NONBLOCK) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Backend selector for [`Poller::with_backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The platform default: `epoll` on Linux, `poll(2)` elsewhere.
    Default,
    /// Force the portable `poll(2)` backend.
    Poll,
}

enum Impl {
    #[cfg(target_os = "linux")]
    Epoll(RawFd),
    Poll,
}

/// A level-triggered readiness poller over non-blocking descriptors.
///
/// Registered descriptors are keyed by caller-chosen `usize` tokens.
/// The poller does **not** own the descriptors; callers must `deregister`
/// before closing them (the `poll` backend would otherwise report `EBADF`
/// via an error event, and epoll would drop the registration silently).
pub struct Poller {
    backend: Impl,
    /// fd → (token, interest); also the fd set for the poll backend.
    /// Ordered so poll(2) scans are deterministic.
    registry: std::collections::BTreeMap<RawFd, (usize, Interest)>,
}

impl Poller {
    /// Creates a poller on the platform-default backend.
    pub fn new() -> io::Result<Poller> {
        Poller::with_backend(Backend::Default)
    }

    /// Creates a poller on an explicit backend (tests exercise the
    /// portable fallback on every platform).
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let backend = match backend {
            #[cfg(target_os = "linux")]
            Backend::Default => {
                // SAFETY: epoll_create1 allocates a new epoll instance;
                // CLOEXEC keeps it out of spawned children.
                let epfd = unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) };
                if epfd < 0 {
                    return Err(io::Error::last_os_error());
                }
                Impl::Epoll(epfd)
            }
            #[cfg(not(target_os = "linux"))]
            Backend::Default => Impl::Poll,
            Backend::Poll => Impl::Poll,
        };
        Ok(Poller {
            backend,
            registry: std::collections::BTreeMap::new(),
        })
    }

    /// Registers a descriptor under `token`, switching it to non-blocking
    /// mode. One registration per descriptor; re-registering an fd that is
    /// already present is an error (use [`Poller::reregister`]).
    pub fn register(
        &mut self,
        source: &impl AsRawFd,
        token: usize,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        if self.registry.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {fd} is already registered"),
            ));
        }
        set_fd_nonblocking(fd)?;
        #[cfg(target_os = "linux")]
        if let Impl::Epoll(epfd) = self.backend {
            let mut ev = sys::epoll::EpollEvent {
                events: epoll_mask(interest),
                data: token as u64,
            };
            // SAFETY: epfd is a live epoll instance owned by self, fd is a
            // live descriptor, and `ev` outlives the call (the kernel
            // copies it).
            if unsafe { sys::epoll::epoll_ctl(epfd, sys::epoll::EPOLL_CTL_ADD, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        self.registry.insert(fd, (token, interest));
        Ok(())
    }

    /// Updates the token and interest of an already-registered descriptor.
    pub fn reregister(
        &mut self,
        source: &impl AsRawFd,
        token: usize,
        interest: Interest,
    ) -> io::Result<()> {
        let fd = source.as_raw_fd();
        if !self.registry.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            ));
        }
        #[cfg(target_os = "linux")]
        if let Impl::Epoll(epfd) = self.backend {
            let mut ev = sys::epoll::EpollEvent {
                events: epoll_mask(interest),
                data: token as u64,
            };
            // SAFETY: same contract as EPOLL_CTL_ADD above; MOD requires
            // the fd to be present, which the registry check guarantees.
            if unsafe { sys::epoll::epoll_ctl(epfd, sys::epoll::EPOLL_CTL_MOD, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
        }
        self.registry.insert(fd, (token, interest));
        Ok(())
    }

    /// Removes a descriptor from the poller. Call before closing the fd.
    pub fn deregister(&mut self, source: &impl AsRawFd) -> io::Result<()> {
        let fd = source.as_raw_fd();
        if self.registry.remove(&fd).is_none() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            ));
        }
        #[cfg(target_os = "linux")]
        if let Impl::Epoll(epfd) = self.backend {
            // SAFETY: removing a live fd from a live epoll instance; the
            // event argument is ignored for DEL on modern kernels and may
            // be null.
            if unsafe {
                sys::epoll::epoll_ctl(epfd, sys::epoll::EPOLL_CTL_DEL, fd, std::ptr::null_mut())
            } < 0
            {
                return Err(io::Error::last_os_error());
            }
        }
        Ok(())
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.registry.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.registry.is_empty()
    }

    /// Waits for readiness, appending events to `events` (which is cleared
    /// first) and returning how many fired. `None` blocks indefinitely;
    /// `Some(d)` waits at most `d` (rounded up to the next millisecond so a
    /// sub-millisecond timeout cannot spin hot). Interrupted waits
    /// (`EINTR`) are retried internally.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms: sys::CInt = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                let ms = if ms == 0 && d.as_nanos() > 0 { 1 } else { ms };
                ms.min(sys::CInt::MAX as u128) as sys::CInt
            }
        };
        match self.backend {
            #[cfg(target_os = "linux")]
            Impl::Epoll(epfd) => {
                let cap = self.registry.len().clamp(1, 1024);
                let mut buf = vec![sys::epoll::EpollEvent { events: 0, data: 0 }; cap];
                let n = loop {
                    // SAFETY: `buf` is a live, properly-sized array of
                    // EpollEvent; the kernel writes at most `cap` entries.
                    let n = unsafe {
                        sys::epoll::epoll_wait(epfd, buf.as_mut_ptr(), cap as sys::CInt, timeout_ms)
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.raw_os_error() != Some(sys::EINTR) {
                        return Err(err);
                    }
                };
                for ev in &buf[..n] {
                    // Copy out of the (possibly packed) struct before use.
                    let mask = ev.events;
                    let data = ev.data;
                    let err = mask & (sys::epoll::EPOLLERR | sys::epoll::EPOLLHUP) != 0;
                    events.push(Event {
                        token: data as usize,
                        // Error/hangup surface as readable+writable so the
                        // owner's next I/O attempt observes the failure —
                        // the level-triggered contract mio documents.
                        readable: mask & sys::epoll::EPOLLIN != 0 || err,
                        writable: mask & sys::epoll::EPOLLOUT != 0 || err,
                    });
                }
                Ok(events.len())
            }
            Impl::Poll => {
                let mut fds: Vec<sys::PollFd> = self
                    .registry
                    .iter()
                    .map(|(&fd, &(_, interest))| sys::PollFd {
                        fd,
                        events: {
                            let mut e = 0;
                            if interest.read {
                                e |= sys::POLLIN;
                            }
                            if interest.write {
                                e |= sys::POLLOUT;
                            }
                            e
                        },
                        revents: 0,
                    })
                    .collect();
                if fds.is_empty() {
                    // poll(2) with no fds still honours the timeout; match
                    // that so a loop with nothing registered can't spin.
                    if timeout_ms != 0 {
                        // SAFETY: a zero-length poll only sleeps.
                        let rc = unsafe { sys::poll(std::ptr::null_mut(), 0, timeout_ms) };
                        if rc < 0 {
                            let err = io::Error::last_os_error();
                            if err.raw_os_error() != Some(sys::EINTR) {
                                return Err(err);
                            }
                        }
                    }
                    return Ok(0);
                }
                loop {
                    // SAFETY: `fds` is a live array of PollFd structs whose
                    // length is passed alongside; poll writes only revents.
                    let n =
                        unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as sys::Nfds, timeout_ms) };
                    if n >= 0 {
                        break;
                    }
                    let err = io::Error::last_os_error();
                    if err.raw_os_error() != Some(sys::EINTR) {
                        return Err(err);
                    }
                }
                for pfd in &fds {
                    if pfd.revents == 0 {
                        continue;
                    }
                    let (token, _) = self.registry[&pfd.fd];
                    let err = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
                    events.push(Event {
                        token,
                        readable: pfd.revents & sys::POLLIN != 0 || err,
                        writable: pfd.revents & sys::POLLOUT != 0 || err,
                    });
                }
                Ok(events.len())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Impl::Epoll(epfd) = self.backend {
            // SAFETY: closing the epoll fd this poller created and owns.
            unsafe { sys::close(epfd) };
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_mask(interest: Interest) -> u32 {
    let mut mask = 0;
    if interest.read {
        mask |= sys::epoll::EPOLLIN;
    }
    if interest.write {
        mask |= sys::epoll::EPOLLOUT;
    }
    mask
}

struct WakerFds {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Drop for WakerFds {
    fn drop(&mut self) {
        // SAFETY: closing the pipe ends this waker created and owns.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

/// A cross-thread wake-up handle: `wake()` makes the paired [`Poller`]'s
/// `wait` return with an event carrying the waker's token. Clones share
/// the underlying pipe. The waker stays registered for the poller's
/// lifetime; drop the poller first (or never — both ends close when the
/// last clone drops).
#[derive(Clone)]
pub struct Waker {
    fds: Arc<WakerFds>,
}

impl Waker {
    /// Creates a waker and registers its read end with `poller` under
    /// `token`.
    pub fn new(poller: &mut Poller, token: usize) -> io::Result<Waker> {
        let mut pair: [sys::CInt; 2] = [0, 0];
        // SAFETY: pipe() writes exactly two descriptors into the array.
        if unsafe { sys::pipe(pair.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let fds = WakerFds {
            read_fd: pair[0],
            write_fd: pair[1],
        };
        // The write end must be non-blocking too: a wake() against a full
        // pipe should drop the byte (a wake is already pending), not block.
        set_fd_nonblocking(fds.write_fd)?;
        struct Raw(RawFd);
        impl AsRawFd for Raw {
            fn as_raw_fd(&self) -> RawFd {
                self.0
            }
        }
        poller.register(&Raw(fds.read_fd), token, Interest::READABLE)?;
        Ok(Waker { fds: Arc::new(fds) })
    }

    /// Wakes the poller. Safe from any thread; coalesces with wakes not
    /// yet drained.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: writing one byte from a live stack buffer into an owned,
        // open pipe fd. A full pipe returns EAGAIN, which is fine — a wake
        // is already pending.
        unsafe { sys::write(self.fds.write_fd, &byte, 1) };
    }

    /// Drains pending wake bytes (call when the waker's token fires, or
    /// the level-triggered poller will keep reporting it readable).
    pub fn clear(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a live stack buffer from the owned,
            // non-blocking pipe read end; returns <= buf.len().
            let n = unsafe { sys::read(self.fds.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n < (buf.len() as isize) {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn backends() -> Vec<Backend> {
        vec![Backend::Default, Backend::Poll]
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            poller.register(&listener, 7, Interest::READABLE).unwrap();

            let mut events = Vec::new();
            // Nothing pending yet: a short wait times out empty.
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}");

            let _client = TcpStream::connect(addr).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{backend:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Level-triggered: the pending accept keeps reporting.
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            assert_eq!(n, 1, "{backend:?} must stay level-triggered");

            // Accepting drains the condition.
            listener.accept().unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}");
        }
    }

    #[test]
    fn registered_streams_are_nonblocking_and_data_fires_readable() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (mut served, _) = listener.accept().unwrap();
            poller.register(&served, 3, Interest::READABLE).unwrap();

            // Registration made the fd non-blocking: a read with no data
            // returns WouldBlock instead of hanging.
            let mut buf = [0u8; 8];
            let err = served.read(&mut buf).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::WouldBlock, "{backend:?}");

            client.write_all(b"x").unwrap();
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1);
            assert!(events[0].readable);
            assert_eq!(served.read(&mut buf).unwrap(), 1);

            // Peer close surfaces as readable (EOF), the shape the event
            // loop's close detection leans on.
            drop(client);
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1);
            assert!(events[0].readable);
            assert_eq!(served.read(&mut buf).unwrap(), 0, "EOF");
            poller.deregister(&served).unwrap();
            assert!(poller.is_empty());
        }
    }

    #[test]
    fn writable_interest_fires_for_an_open_socket() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let _served = listener.accept().unwrap();
            poller.register(&client, 9, Interest::BOTH).unwrap();
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{backend:?}");
            assert!(events[0].writable);
        }
    }

    #[test]
    fn reregister_switches_interest_and_token() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let _served = listener.accept().unwrap();
            poller.register(&client, 1, Interest::READABLE).unwrap();
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}: no data, no readable event");
            poller.reregister(&client, 2, Interest::WRITABLE).unwrap();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1);
            assert_eq!(events[0].token, 2);
            assert!(events[0].writable);
        }
    }

    #[test]
    fn double_register_and_unknown_deregister_are_errors() {
        let mut poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        poller.register(&listener, 0, Interest::READABLE).unwrap();
        assert!(poller.register(&listener, 1, Interest::READABLE).is_err());
        poller.deregister(&listener).unwrap();
        assert!(poller.deregister(&listener).is_err());
        let other = TcpListener::bind("127.0.0.1:0").unwrap();
        assert!(poller.reregister(&other, 5, Interest::BOTH).is_err());
    }

    #[test]
    fn waker_wakes_across_threads_and_clears() {
        for backend in backends() {
            let mut poller = Poller::with_backend(backend).unwrap();
            let waker = Waker::new(&mut poller, 99).unwrap();
            let remote = waker.clone();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                remote.wake();
                remote.wake(); // coalesces
            });
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{backend:?}");
            assert_eq!(events[0].token, 99);
            waker.clear();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0, "{backend:?}: cleared waker is quiet");
            handle.join().unwrap();
        }
    }

    #[test]
    fn empty_poller_honours_the_timeout() {
        let mut poller = Poller::with_backend(Backend::Poll).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 0);
    }
}
