//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Two surfaces of the real crate are reproduced, both with crossbeam's
//! calling conventions:
//!
//! * [`thread::scope`] — scoped fork–join threads. Since Rust 1.63 the
//!   standard library provides these, so this is a thin adapter (`scope`
//!   returns a `Result`, spawned closures receive the scope so they can
//!   spawn nested work).
//! * [`channel`] — multi-producer **multi-consumer** channels
//!   (`std::sync::mpsc` is single-consumer, so the stand-in is its own
//!   small queue). This is the job-injector feeding the persistent worker
//!   pool in `crowdfusion_core::pool`: every worker holds a clone of the
//!   same [`channel::Receiver`] and competes for submitted jobs.

#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads with crossbeam's API shape.

    /// What `scope` returns: crossbeam reports panics in child threads as an
    /// `Err` payload. The std backend instead propagates child panics when
    /// the scope joins, so in practice this is always `Ok` — matching code
    /// written for crossbeam, which `.expect(..)`s the result.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle; borrows from the enclosing `scope` call and hands out
    /// spawns that may reference stack data of the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// (crossbeam convention) so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow local data;
    /// joins all of them before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels (crossbeam's API shape).
    //!
    //! The stand-in covers the unbounded flavour only: a `Mutex<VecDeque>`
    //! plus a `Condvar`, with sender/receiver liveness tracked by two
    //! counters so a blocked [`Receiver::recv`] wakes (and reports
    //! disconnection) when the last [`Sender`] drops, and a [`Sender::send`]
    //! fails once every receiver is gone. Messages already queued when the
    //! senders disconnect are still delivered — `recv` only errors on an
    //! *empty* disconnected channel, matching crossbeam.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// The sending half; clone freely to add producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely to add consumers — each queued
    /// message is delivered to exactly one of them.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, waking one blocked receiver. Fails (returning the
        /// message) when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.items.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.queue.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Blocked receivers must observe the disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next message, blocking while the channel is empty
        /// and at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = state.items.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Dequeues the next message if one is ready; `None` on an empty
        /// queue (whether or not senders remain).
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawned_threads_mutate_borrowed_chunks() {
        let mut data = vec![0u64; 64];
        crate::thread::scope(|scope| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                scope.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 16 + j) as u64;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn nested_spawns_receive_the_scope() {
        let total = std::sync::atomic::AtomicU32::new(0);
        crate::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
                total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn channel_is_fifo_for_a_single_consumer() {
        let (tx, rx) = crate::channel::unbounded();
        for i in 0..8 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..8).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn cloned_receivers_compete_without_losing_or_duplicating() {
        let (tx, rx) = crate::channel::unbounded::<u32>();
        let consumers: Vec<_> = (0..3).map(|_| rx.clone()).collect();
        drop(rx);
        let seen = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for rx in &consumers {
                s.spawn(|| {
                    while let Ok(v) = rx.recv() {
                        seen.lock().unwrap().push(v);
                    }
                });
            }
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx); // disconnect wakes all blocked consumers
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn queued_messages_survive_sender_disconnect() {
        let (tx, rx) = crate::channel::unbounded();
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.recv(), Ok("b"));
        assert_eq!(rx.recv(), Err(crate::channel::RecvError));
    }

    #[test]
    fn send_fails_once_all_receivers_are_gone() {
        let (tx, rx) = crate::channel::unbounded();
        let rx2 = rx.clone();
        drop(rx);
        tx.send(1).unwrap();
        drop(rx2);
        assert_eq!(tx.send(2), Err(crate::channel::SendError(2)));
    }

    #[test]
    fn cloned_senders_keep_the_channel_alive() {
        let (tx, rx) = crate::channel::unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7u8).unwrap();
        assert_eq!(rx.recv(), Ok(7));
        drop(tx2);
        assert!(rx.recv().is_err());
    }
}
