//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! Only `crossbeam::thread::scope` is used by this workspace; since Rust
//! 1.63 the standard library provides scoped threads, so this crate is a
//! thin adapter reproducing crossbeam's calling convention (`scope` returns
//! a `Result`, spawned closures receive the scope as an argument so they can
//! spawn nested work).

#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads with crossbeam's API shape.

    /// What `scope` returns: crossbeam reports panics in child threads as an
    /// `Err` payload. The std backend instead propagates child panics when
    /// the scope joins, so in practice this is always `Ok` — matching code
    /// written for crossbeam, which `.expect(..)`s the result.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle; borrows from the enclosing `scope` call and hands out
    /// spawns that may reference stack data of the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. The closure receives the scope
        /// (crossbeam convention) so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow local data;
    /// joins all of them before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawned_threads_mutate_borrowed_chunks() {
        let mut data = vec![0u64; 64];
        crate::thread::scope(|scope| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                scope.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = (i * 16 + j) as u64;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn nested_spawns_receive_the_scope() {
        let total = std::sync::atomic::AtomicU32::new(0);
        crate::thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
                total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .unwrap();
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 2);
    }
}
