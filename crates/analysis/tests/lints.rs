//! Fixture tests: each lint class must catch its known-bad snippet at the
//! exact lines, the known-good snippet must be silent, and an `allow`
//! annotation must suppress precisely one finding.

use crowdfusion_analysis::{analyze_file, prepare_source, unsafe_sites, Finding, Rule};

fn run(src: &str) -> Vec<Finding> {
    analyze_file(&prepare_source("fixture.rs", "core", src))
}

fn hits(findings: &[Finding]) -> Vec<(Rule, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn hash_iter_fixture_is_caught_at_exact_lines() {
    let findings = run(include_str!("fixtures/bad_hash_iter.rs"));
    assert_eq!(
        hits(&findings),
        vec![(Rule::HashIter, 3), (Rule::HashIter, 10)],
        "{findings:#?}"
    );
}

#[test]
fn unsafe_fixture_flags_only_unjustified_sites() {
    let src = include_str!("fixtures/bad_unsafe.rs");
    let findings = run(src);
    assert_eq!(
        hits(&findings),
        vec![(Rule::UnsafeNoSafety, 5), (Rule::UnsafeNoSafety, 11)],
        "{findings:#?}"
    );
    // The inventory still records all three sites, with the justified one
    // marked as such.
    let sites = unsafe_sites(&prepare_source("fixture.rs", "core", src));
    assert_eq!(sites.len(), 3);
    let by_line: Vec<(u32, &str, bool)> = sites
        .iter()
        .map(|s| (s.line, s.kind, s.has_safety))
        .collect();
    assert_eq!(
        by_line,
        vec![(5, "impl", false), (8, "impl", true), (11, "block", false)]
    );
}

#[test]
fn wall_clock_fixture_is_caught_at_exact_lines() {
    let findings = run(include_str!("fixtures/bad_wall_clock.rs"));
    assert_eq!(
        hits(&findings),
        vec![(Rule::WallClock, 4), (Rule::WallClock, 5)],
        "{findings:#?}"
    );
}

#[test]
fn entropy_fixture_is_caught_at_exact_lines() {
    let findings = run(include_str!("fixtures/bad_entropy.rs"));
    assert_eq!(
        hits(&findings),
        vec![
            (Rule::EntropyRng, 4),
            (Rule::EntropyRng, 5),
            (Rule::EntropyRng, 6)
        ],
        "{findings:#?}"
    );
}

#[test]
fn good_fixture_is_silent() {
    let src = include_str!("fixtures/good.rs");
    let findings = run(src);
    assert!(findings.is_empty(), "{findings:#?}");
    // Its single unsafe fn is inventoried as justified.
    let sites = unsafe_sites(&prepare_source("fixture.rs", "core", src));
    assert_eq!(sites.len(), 1);
    assert!(sites[0].has_safety);
    assert_eq!(sites[0].kind, "fn");
}

#[test]
fn allow_suppresses_exactly_one_finding() {
    let findings = run(include_str!("fixtures/allow_once.rs"));
    // The annotated HashSet on line 5 is forgiven; the second offender on
    // line 16 is not, and the annotation itself is counted as used.
    assert_eq!(hits(&findings), vec![(Rule::HashIter, 16)], "{findings:#?}");
}

#[test]
fn bench_crate_is_exempt_from_wall_clock() {
    let findings = analyze_file(&prepare_source(
        "fixture.rs",
        "bench",
        include_str!("fixtures/bad_wall_clock.rs"),
    ));
    assert!(findings.is_empty(), "{findings:#?}");
}
