//! The analyzer run over the real workspace: zero findings, and the
//! committed unsafe inventory must match a fresh scan byte-for-byte. This
//! is the same gate CI applies via `crowdfusion-analyze --deny-findings`,
//! kept as a test so `cargo test` alone catches drift.

use crowdfusion_analysis::{analyze_files, inventory, scan_workspace, to_json};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/analysis sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_has_zero_findings() {
    let files = scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        files.len() > 20,
        "suspiciously few files scanned ({}) — wrong root?",
        files.len()
    );
    let findings = analyze_files(&files);
    assert!(
        findings.is_empty(),
        "the tree must be lint-clean; fix or annotate:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn committed_unsafe_inventory_is_current() {
    let root = workspace_root();
    let files = scan_workspace(&root).expect("scan workspace");
    let fresh = to_json(&inventory(&files));
    let committed = std::fs::read_to_string(root.join("ANALYSIS_unsafe.json"))
        .expect("ANALYSIS_unsafe.json is committed at the workspace root");
    assert_eq!(
        fresh, committed,
        "unsafe inventory drifted; regenerate with:\n  \
         cargo run -p crowdfusion_analysis -- --json ANALYSIS_unsafe.json"
    );
}
