//! Fixture: entropy-seeded randomness outside the run's fixed seed.

pub fn roll() -> u64 {
    let mut rng = SmallRng::from_entropy();
    let a: u64 = rand::random();
    let b = thread_rng().next_u64();
    let _ = rng;
    a ^ b
}
