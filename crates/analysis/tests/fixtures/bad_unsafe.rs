//! Fixture: `unsafe` sites with and without SAFETY justification.

pub struct Wrapper(*mut u8);

unsafe impl Send for Wrapper {}

// SAFETY: no data races; the pointer is uniquely owned.
unsafe impl Sync for Wrapper {}

pub fn read(w: &Wrapper) -> u8 {
    unsafe { *w.0 }
}
