//! Fixture: one annotation suppresses exactly one finding.

pub fn dedup(xs: &[u64]) -> usize {
    // analyze: allow(hash-iter)
    let mut seen: HashSet<u64> = HashSet::new();
    let mut kept = 0;
    for &x in xs {
        if seen.insert(x) {
            kept += 1;
        }
    }
    kept
}

pub fn second_offender() -> usize {
    let other: HashSet<u64> = HashSet::new();
    other.len()
}
