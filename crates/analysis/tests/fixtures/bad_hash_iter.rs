//! Fixture: iteration over hash-order collections in trace-affecting code.

pub fn entropy_over_groups(groups: HashMap<u64, Vec<f64>>) -> f64 {
    let mut h = 0.0;
    for w in groups.values() {
        for &p in w {
            h -= p * p.log2();
        }
    }
    let seen: HashSet<u64> = HashSet::new();
    let _ = seen;
    h
}
