//! Fixture: clean trace-affecting code — zero findings expected.

pub fn entropy_sorted(groups: &BTreeMap<u64, Vec<f64>>) -> f64 {
    let mut h = 0.0;
    for w in groups.values() {
        for &p in w {
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
    }
    h
}

// SAFETY: the buffer outlives the call and chunk indices are disjoint.
pub unsafe fn write_chunk(buf: *mut f64, at: usize, v: f64) {
    *buf.add(at) = v;
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_in_tests_is_fine() {
        let m: HashMap<u32, u32> = HashMap::new();
        assert!(m.is_empty());
    }
}
