//! Fixture: wall-clock reads in trace-affecting code.

pub fn stamp() -> u64 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    let _ = (t0, wall);
    0
}
