//! A minimal Rust lexer: just enough to walk source as tokens with line
//! numbers, keeping comments (the lint pass reads `// SAFETY:` and
//! `// analyze: allow(...)` out of them) and discarding literal *contents*
//! (so a string containing `HashMap` can never trip a lint).
//!
//! Handled: line and (nested) block comments, string/byte-string literals
//! with escapes, raw strings `r#"…"#` at any hash depth, char literals vs
//! lifetimes, raw identifiers, and numeric literals (including `1.0e-9`
//! without eating the `..` of a range).

/// What a token is; literal and numeric contents are deliberately dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character.
    Punct(char),
    /// A comment; the text excludes the `//` / `/*` markers.
    Comment(String),
    /// A string, char, byte, or numeric literal (contents dropped).
    Literal,
}

/// One token with its source position (1-based lines).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Line the token starts on.
    pub line: u32,
    /// Line the token ends on (differs from `line` only for block comments
    /// and multi-line strings).
    pub end_line: u32,
    /// The token itself.
    pub kind: TokKind,
}

/// Tokenizes `src`. Unterminated constructs (possible in fixtures, not in
/// code that compiles) terminate at end of input rather than erroring: the
/// scanner's job is linting, not validation.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let count_lines = |slice: &[char]| slice.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && chars[j] != '\n' {
                    j += 1;
                }
                toks.push(Tok {
                    line,
                    end_line: line,
                    kind: TokKind::Comment(chars[start..j].iter().collect()),
                });
                i = j;
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < n && depth > 0 {
                    if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let body_end = j.saturating_sub(2).max(start);
                line += count_lines(&chars[i..j]);
                toks.push(Tok {
                    line: start_line,
                    end_line: line,
                    kind: TokKind::Comment(chars[start..body_end].iter().collect()),
                });
                i = j;
            }
            '"' => {
                let start_line = line;
                let mut j = i + 1;
                while j < n {
                    match chars[j] {
                        '\\' => j += 2,
                        '"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                let j = j.min(n);
                line += count_lines(&chars[i..j]);
                toks.push(Tok {
                    line: start_line,
                    end_line: line,
                    kind: TokKind::Literal,
                });
                i = j;
            }
            '\'' => {
                // Lifetime (`'static`) or char literal (`'a'`, `'\n'`)?
                let next = chars.get(i + 1).copied();
                let is_lifetime = match next {
                    Some(c2) if c2.is_alphabetic() || c2 == '_' => {
                        // `'a'` is a char, `'ab` is a lifetime: decide by
                        // whether an ident run is followed by a quote.
                        let mut j = i + 1;
                        while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                            j += 1;
                        }
                        !(j < n && chars[j] == '\'' && j == i + 2)
                    }
                    _ => false,
                };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    toks.push(Tok {
                        line,
                        end_line: line,
                        kind: TokKind::Literal,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < n {
                        match chars[j] {
                            '\\' => j += 2,
                            '\'' => {
                                j += 1;
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    toks.push(Tok {
                        line,
                        end_line: line,
                        kind: TokKind::Literal,
                    });
                    i = j.min(n);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                // Raw string / raw ident / byte string prefixes first.
                if (c == 'r' || c == 'b') && is_raw_string_start(&chars, i) {
                    let (j, crossed) = consume_raw_string(&chars, i);
                    let start_line = line;
                    line += crossed;
                    toks.push(Tok {
                        line: start_line,
                        end_line: line,
                        kind: TokKind::Literal,
                    });
                    i = j;
                    continue;
                }
                if c == 'b' && matches!(chars.get(i + 1), Some('"') | Some('\'')) {
                    // Re-dispatch on the quote; the `b` adds nothing.
                    i += 1;
                    continue;
                }
                if c == 'r' && chars.get(i + 1) == Some(&'#') && is_ident_start(chars.get(i + 2)) {
                    let mut j = i + 2;
                    while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                        j += 1;
                    }
                    toks.push(Tok {
                        line,
                        end_line: line,
                        kind: TokKind::Ident(chars[i + 2..j].iter().collect()),
                    });
                    i = j;
                    continue;
                }
                let mut j = i;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    line,
                    end_line: line,
                    kind: TokKind::Ident(chars[i..j].iter().collect()),
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < n {
                    let d = chars[j];
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.' && chars.get(j + 1).is_some_and(|c2| c2.is_ascii_digit()) {
                        // `1.5` continues the literal; `0..n` does not.
                        j += 1;
                    } else if (d == '+' || d == '-')
                        && matches!(chars.get(j.wrapping_sub(1)), Some('e') | Some('E'))
                    {
                        // Exponent sign inside `1.0e-9`.
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    line,
                    end_line: line,
                    kind: TokKind::Literal,
                });
                i = j;
            }
            other => {
                toks.push(Tok {
                    line,
                    end_line: line,
                    kind: TokKind::Punct(other),
                });
                i += 1;
            }
        }
    }
    toks
}

fn is_ident_start(c: Option<&char>) -> bool {
    c.is_some_and(|&c| c.is_alphabetic() || c == '_')
}

/// Does position `i` (at `r` or `b`) start a raw string (`r"`, `r#"`,
/// `br"`, `br#"`)?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Consumes a raw string starting at `i`; returns (end index, newlines
/// crossed).
fn consume_raw_string(chars: &[char], i: usize) -> (usize, u32) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut crossed = 0u32;
    while j < chars.len() {
        if chars[j] == '\n' {
            crossed += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, crossed);
            }
        }
        j += 1;
    }
    (chars.len(), crossed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn literals_never_leak_idents() {
        // `HashMap` inside strings, chars, raw strings, and comments must
        // not appear as an identifier token.
        let src = r####"
            let a = "HashMap in a string";
            let b = r#"HashMap in a raw string "quoted" inside"#;
            let c = 'H';
            let d = b"HashMap bytes";
        "####;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn comments_are_kept_with_text() {
        let src = "// SAFETY: fine\nlet x = 1; /* block\ncomment */\n";
        let toks = lex(src);
        let comments: Vec<(&str, u32, u32)> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Comment(s) => Some((s.as_str(), t.line, t.end_line)),
                _ => None,
            })
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].0.contains("SAFETY:"));
        assert_eq!(comments[0].1, 1);
        assert_eq!((comments[1].1, comments[1].2), (2, 3));
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ HashMap";
        let ids = idents(src);
        assert_eq!(ids, vec!["HashMap"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A `'static` must not swallow the rest of the line as a "char".
        let src = "&'static str; let c = 'x'; let esc = '\\n'; HashMap";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        assert!(ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn numeric_literals_do_not_eat_ranges() {
        let src = "for i in 0..n { let e = 1.0e-9; }";
        let ids = idents(src);
        assert_eq!(ids, vec!["for", "i", "in", "n", "let", "e"]);
        // The `..` survives as two puncts.
        let dots = lex(src)
            .iter()
            .filter(|t| t.kind == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn raw_identifiers_yield_the_bare_name() {
        let ids = idents("let r#type = 3; r#fn();");
        assert!(ids.contains(&"type".to_string()));
        assert!(ids.contains(&"fn".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "let a = \"line\n1\";\nHashMap";
        let toks = lex(src);
        let hash = toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("HashMap".into()))
            .unwrap();
        assert_eq!(hash.line, 3);
    }
}
