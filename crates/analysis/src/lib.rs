//! `crowdfusion_analysis` — the workspace's own static-analysis pass.
//!
//! CrowdFusion's headline guarantee is bit-identical traces across thread
//! counts, backends, and restarts (DESIGN.md §6). The compiler cannot check
//! that contract, so this crate does: a zero-external-dep token-level lint
//! pass over every production source file, plus a machine-readable
//! inventory of `unsafe` sites that CI diffs against a committed baseline.
//!
//! Rules (see [`lints::Rule`]):
//!
//! - `hash-iter` — `HashMap`/`HashSet` in trace-affecting crates; hash
//!   iteration order is per-process and poisons any fold over it.
//!   Membership-only uses are annotated `// analyze: allow(hash-iter)`.
//! - `wall-clock` — `Instant`/`SystemTime` outside bench code.
//! - `entropy-rng` — `from_entropy`/`thread_rng`/`rand::random`.
//! - `adhoc-thread` — `thread::{spawn,scope,Builder}`; concurrency must
//!   route through the pool so float reductions combine in index order.
//! - `adhoc-nonblocking` — `set_nonblocking`/`O_NONBLOCK` outside
//!   `vendor/polling`; sockets go nonblocking only through the poller's
//!   registration path.
//! - `unsafe-no-safety` — an `unsafe` site with no adjacent `// SAFETY:`.
//! - `unused-allow` — an annotation that suppressed nothing (annotations
//!   cannot go stale silently).
//!
//! The binary (`crowdfusion-analyze`) prints findings as
//! `path:line: [rule] message`, writes the unsafe inventory with `--json`,
//! and exits nonzero under `--deny-findings` — that is the CI gate.
//!
//! ```
//! use crowdfusion_analysis::scan::prepare_source;
//! use crowdfusion_analysis::lints::{analyze_file, Rule};
//!
//! let sf = prepare_source("demo.rs", "core", "let m = HashMap::new();\n");
//! let findings = analyze_file(&sf);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, Rule::HashIter);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod inventory;
pub mod lexer;
pub mod lints;
pub mod scan;

pub use inventory::{inventory, to_json, unsafe_sites, UnsafeSite};
pub use lints::{analyze_file, analyze_files, rules_for_crate, Finding, Rule};
pub use scan::{prepare_source, scan_workspace, SourceFile};
