//! The unsafe inventory: every `unsafe` site in production code, whether it
//! carries an adjacent `// SAFETY:` justification, and a machine-readable
//! JSON rendering that CI diffs against the committed baseline
//! (`ANALYSIS_unsafe.json`) so new unsafe code cannot land silently.

use crate::lexer::TokKind;
use crate::scan::SourceFile;

/// One `unsafe` occurrence in production (non-test) code.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// Line of the `unsafe` keyword.
    pub line: u32,
    /// `"impl"`, `"fn"`, or `"block"`.
    pub kind: &'static str,
    /// Whether a `// SAFETY:` comment sits on the same line or within the
    /// three lines above.
    pub has_safety: bool,
    /// The trimmed source line, for human review of the inventory diff.
    pub context: String,
}

/// Collects the unsafe sites of one file. A site is justified when some
/// comment containing `SAFETY:` ends within three lines above the `unsafe`
/// keyword or sits on its line (trailing form). A trailing comment — one
/// preceded by code on its own line — covers only that line, so a SAFETY
/// remark about line N cannot silently bless an unsafe on line N+1.
pub fn unsafe_sites(sf: &SourceFile) -> Vec<UnsafeSite> {
    let mut code_lines = std::collections::BTreeSet::new();
    let mut comments: Vec<(u32, u32, bool, bool)> = Vec::new(); // (line, end_line, trailing, has_safety)
    for tok in &sf.toks {
        match &tok.kind {
            TokKind::Comment(text) => comments.push((
                tok.line,
                tok.end_line,
                code_lines.contains(&tok.line),
                text.contains("SAFETY:"),
            )),
            _ => {
                code_lines.insert(tok.line);
            }
        }
    }
    // A `// SAFETY:` justification often wraps over several `//` lines,
    // which lex as separate comments; extend each SAFETY comment through
    // the contiguous run of non-trailing comments that follows so the
    // proximity window measures from where the prose actually ends.
    let mut safety: Vec<(u32, u32, bool)> = Vec::new(); // (line, end_line, trailing)
    for (i, &(line, mut end, trailing, has_safety)) in comments.iter().enumerate() {
        if !has_safety {
            continue;
        }
        if !trailing {
            for &(n_line, n_end, n_trailing, _) in &comments[i + 1..] {
                if n_trailing || n_line != end + 1 || code_lines.contains(&n_line) {
                    break;
                }
                end = n_end;
            }
        }
        safety.push((line, end, trailing));
    }
    let mut sites = Vec::new();
    for (idx, tok) in sf.toks.iter().enumerate() {
        if sf.in_test[idx] || tok.kind != TokKind::Ident("unsafe".to_string()) {
            continue;
        }
        let kind = sf.toks[idx + 1..]
            .iter()
            .find(|t| !matches!(t.kind, TokKind::Comment(_)))
            .map(|t| match &t.kind {
                TokKind::Ident(s) if s == "impl" || s == "trait" => "impl",
                TokKind::Ident(s) if s == "fn" => "fn",
                _ => "block",
            })
            .unwrap_or("block");
        let line = tok.line;
        let has_safety = safety.iter().any(|&(c_line, c_end, trailing)| {
            if trailing {
                c_line == line
            } else {
                c_line == line || (c_end < line && line - c_end <= 3)
            }
        });
        let context = sf
            .lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        sites.push(UnsafeSite {
            file: sf.rel_path.clone(),
            line,
            kind,
            has_safety,
            context,
        });
    }
    sites
}

/// Collects and sorts unsafe sites across all files by (file, line).
pub fn inventory(files: &[SourceFile]) -> Vec<UnsafeSite> {
    let mut sites: Vec<UnsafeSite> = files.iter().flat_map(unsafe_sites).collect();
    sites.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    sites
}

/// Renders the inventory as pretty-printed JSON with a trailing newline.
/// Key order and formatting are fixed so the output is byte-stable and
/// diffable in CI.
pub fn to_json(sites: &[UnsafeSite]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"crowdfusion-analyze\",\n");
    out.push_str(&format!("  \"total_sites\": {},\n", sites.len()));
    out.push_str("  \"sites\": [");
    for (i, site) in sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"file\": {},\n", json_str(&site.file)));
        out.push_str(&format!("      \"line\": {},\n", site.line));
        out.push_str(&format!("      \"kind\": {},\n", json_str(site.kind)));
        out.push_str(&format!("      \"has_safety\": {},\n", site.has_safety));
        out.push_str(&format!("      \"context\": {}\n", json_str(&site.context)));
        out.push_str("    }");
    }
    if !sites.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::prepare_source;

    #[test]
    fn safety_comment_within_three_lines_counts() {
        let src = "\
// SAFETY: justified here.
unsafe impl Send for X {}
fn f() {
    let p = unsafe { danger() }; // SAFETY: trailing form.
    let q = unsafe { danger() };
}
";
        let sf = prepare_source("x.rs", "core", src);
        let sites = unsafe_sites(&sf);
        assert_eq!(sites.len(), 3);
        assert_eq!((sites[0].kind, sites[0].has_safety), ("impl", true));
        assert_eq!((sites[1].kind, sites[1].has_safety), ("block", true));
        assert_eq!((sites[2].kind, sites[2].has_safety), ("block", false));
    }

    #[test]
    fn multi_line_safety_prose_extends_the_window() {
        // Four `//` lines of justification, then the unsafe: the window
        // must measure from the end of the comment run, not its start.
        let src = "\
// SAFETY: a long argument that wraps
// across several comment lines and
// keeps going for a while before the
// code it justifies finally appears.
let p = unsafe { danger() };
";
        let sf = prepare_source("x.rs", "core", src);
        let sites = unsafe_sites(&sf);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].has_safety);
    }

    #[test]
    fn distant_safety_comment_does_not_count() {
        let src = "// SAFETY: too far away.\n\n\n\n\nunsafe fn f() {}\n";
        let sf = prepare_source("x.rs", "core", src);
        let sites = unsafe_sites(&sf);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].has_safety);
        assert_eq!(sites[0].kind, "fn");
    }

    #[test]
    fn unsafe_in_tests_is_not_inventoried() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { x() } }\n}\n";
        let sf = prepare_source("x.rs", "core", src);
        assert!(unsafe_sites(&sf).is_empty());
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let sites = vec![UnsafeSite {
            file: "a/b.rs".into(),
            line: 7,
            kind: "block",
            has_safety: true,
            context: "say \"hi\"\\".into(),
        }];
        let json = to_json(&sites);
        assert!(json.contains("\"total_sites\": 1"));
        assert!(json.contains("\"say \\\"hi\\\"\\\\\""));
        assert!(json.ends_with("}\n"));
        // Empty inventory still renders valid JSON.
        assert!(to_json(&[]).contains("\"sites\": []"));
    }
}
