//! The determinism/unsafe lint rules and the engine that applies them.
//!
//! Rules are token-pattern based and deliberately over-approximate (any
//! `HashMap` identifier, not just provably-iterated ones — iteration is
//! undecidable at token level). The pressure valve is the annotation
//! `// analyze: allow(rule)`, which suppresses exactly one finding on its
//! own line or the next code line; annotations that suppress nothing are
//! themselves findings, so stale exemptions cannot accumulate.

use crate::inventory::unsafe_sites;
use crate::lexer::TokKind;
use crate::scan::SourceFile;
use std::collections::BTreeSet;
use std::fmt;

/// The lint rules. `UnusedAllow` is meta: it fires on annotations that
/// suppressed nothing and is always active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in trace-affecting code: iteration order varies
    /// per process (seeded `RandomState`), so any fold over it can leak
    /// nondeterminism into traces. Use `BTreeMap`/`BTreeSet`, or annotate
    /// membership-only uses.
    HashIter,
    /// `Instant`/`SystemTime` outside bench code: traces must not depend
    /// on real time.
    WallClock,
    /// `from_entropy`/`thread_rng`/`rand::random`: randomness not derived
    /// from the run's fixed seed.
    EntropyRng,
    /// `thread::{spawn,scope,Builder}` in trace-affecting code: concurrency
    /// must route through the pool, whose reducer combines in index order.
    AdhocThread,
    /// `set_nonblocking`/`O_NONBLOCK` outside `vendor/polling`: readiness
    /// I/O must go through the poller's registration path, which owns the
    /// nonblocking transition, so no socket is half-configured.
    AdhocNonblocking,
    /// An `unsafe` site without an adjacent `// SAFETY:` comment.
    UnsafeNoSafety,
    /// An `// analyze: allow(...)` annotation that suppressed no finding.
    UnusedAllow,
}

impl Rule {
    /// The kebab-case name used in output and in `allow(...)` annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::EntropyRng => "entropy-rng",
            Rule::AdhocThread => "adhoc-thread",
            Rule::AdhocNonblocking => "adhoc-nonblocking",
            Rule::UnsafeNoSafety => "unsafe-no-safety",
            Rule::UnusedAllow => "unused-allow",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint hit, pointing at a workspace-relative file and line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rules run for a crate. Determinism rules cover every trace-
/// affecting crate; `bench` is exempt from them (benchmarks time things and
/// may thread freely — their output is never part of a trace). Unsafe
/// hygiene, entropy and nonblocking-socket rules run everywhere. Unknown
/// crate names get the full set: fail closed.
pub fn rules_for_crate(crate_name: &str) -> &'static [Rule] {
    const FULL: &[Rule] = &[
        Rule::HashIter,
        Rule::WallClock,
        Rule::EntropyRng,
        Rule::AdhocThread,
        Rule::AdhocNonblocking,
        Rule::UnsafeNoSafety,
    ];
    const BENCH: &[Rule] = &[
        Rule::EntropyRng,
        Rule::AdhocNonblocking,
        Rule::UnsafeNoSafety,
    ];
    match crate_name {
        "bench" => BENCH,
        _ => FULL,
    }
}

/// Runs every active rule over one file, applies its `allow` annotations
/// (each suppresses at most one finding), and reports unused annotations.
/// Findings come back sorted by (line, rule).
pub fn analyze_file(sf: &SourceFile) -> Vec<Finding> {
    let rules = rules_for_crate(&sf.crate_name);
    let mut findings = pattern_findings(sf, rules);

    if rules.contains(&Rule::UnsafeNoSafety) {
        for site in unsafe_sites(sf) {
            if !site.has_safety {
                findings.push(Finding {
                    file: sf.rel_path.clone(),
                    line: site.line,
                    rule: Rule::UnsafeNoSafety,
                    message: format!(
                        "`unsafe` {} without an adjacent `// SAFETY:` comment",
                        site.kind
                    ),
                });
            }
        }
    }

    // Annotation pass: each allow may consume exactly one finding whose
    // rule name matches and whose line is one the annotation targets.
    let mut used = vec![false; sf.allows.len()];
    findings.retain(|f| {
        for (i, allow) in sf.allows.iter().enumerate() {
            if !used[i] && allow.rule == f.rule.name() && allow.target_lines.contains(&f.line) {
                used[i] = true;
                return false;
            }
        }
        true
    });
    for (i, allow) in sf.allows.iter().enumerate() {
        if !used[i] {
            findings.push(Finding {
                file: sf.rel_path.clone(),
                line: allow.comment_line,
                rule: Rule::UnusedAllow,
                message: format!(
                    "`// analyze: allow({})` suppresses no finding; remove it",
                    allow.rule
                ),
            });
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Runs [`analyze_file`] over every file; results keep the scan's sorted
/// file order.
pub fn analyze_files(files: &[SourceFile]) -> Vec<Finding> {
    files.iter().flat_map(analyze_file).collect()
}

/// The token-pattern rules (everything except unsafe hygiene, which works
/// off the inventory). One finding per (rule, line) even if a line mentions
/// a pattern twice — an annotation then clears the whole line for that rule.
fn pattern_findings(sf: &SourceFile, rules: &[Rule]) -> Vec<Finding> {
    // Comments dropped: sequence patterns must see through interleaved
    // comments. `use` declarations are skipped entirely — imports don't
    // execute, and flagging them would double-bill every real use site.
    let code: Vec<(usize, &TokKind, u32)> = sf
        .toks
        .iter()
        .enumerate()
        .filter(|(idx, t)| !sf.in_test[*idx] && !matches!(t.kind, TokKind::Comment(_)))
        .map(|(idx, t)| (idx, &t.kind, t.line))
        .collect();

    let mut seen: BTreeSet<(Rule, u32)> = BTreeSet::new();
    let mut findings = Vec::new();
    let mut emit = |rule: Rule, line: u32, message: &str| {
        if rules.contains(&rule) && seen.insert((rule, line)) {
            findings.push(Finding {
                file: sf.rel_path.clone(),
                line,
                rule,
                message: message.to_string(),
            });
        }
    };

    let ident_at = |k: usize| match code.get(k) {
        Some((_, TokKind::Ident(s), _)) => Some(s.as_str()),
        _ => None,
    };
    let path_sep_at = |k: usize| {
        matches!(code.get(k), Some((_, TokKind::Punct(':'), _)))
            && matches!(code.get(k + 1), Some((_, TokKind::Punct(':'), _)))
    };

    let mut in_use = false;
    for (k, &(_, kind, line)) in code.iter().enumerate() {
        match kind {
            TokKind::Ident(s) if s == "use" => {
                in_use = true;
                continue;
            }
            TokKind::Punct(';') if in_use => {
                in_use = false;
                continue;
            }
            _ if in_use => continue,
            _ => {}
        }
        let TokKind::Ident(s) = kind else { continue };
        match s.as_str() {
            "HashMap" | "HashSet" => emit(
                Rule::HashIter,
                line,
                "hash-order collection in a trace-affecting crate; iteration order is \
                 nondeterministic — use BTreeMap/BTreeSet, or mark membership-only use \
                 with `// analyze: allow(hash-iter)`",
            ),
            "set_nonblocking" | "O_NONBLOCK" => emit(
                Rule::AdhocNonblocking,
                line,
                "raw nonblocking-socket control outside vendor/polling; readiness I/O \
                 must acquire O_NONBLOCK through the poller's registration path",
            ),
            "Instant" | "SystemTime" => emit(
                Rule::WallClock,
                line,
                "wall-clock read outside bench code; traces must not depend on real time",
            ),
            "from_entropy" | "thread_rng" => emit(
                Rule::EntropyRng,
                line,
                "entropy-seeded RNG; all randomness must derive from the run's fixed seed",
            ),
            "rand" if path_sep_at(k + 1) && ident_at(k + 3) == Some("random") => emit(
                Rule::EntropyRng,
                line,
                "entropy-seeded RNG; all randomness must derive from the run's fixed seed",
            ),
            "thread"
                if path_sep_at(k + 1)
                    && matches!(ident_at(k + 3), Some("spawn" | "scope" | "Builder")) =>
            {
                emit(
                    Rule::AdhocThread,
                    line,
                    "ad-hoc thread primitive in a trace-affecting crate; concurrency must \
                     route through the pool so reductions combine in index order",
                )
            }
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::prepare_source;

    fn run(crate_name: &str, src: &str) -> Vec<Finding> {
        analyze_file(&prepare_source("x.rs", crate_name, src))
    }

    #[test]
    fn use_declarations_are_not_flagged() {
        let f = run("core", "use std::collections::HashMap;\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hash_ident_outside_use_is_flagged_once_per_line() {
        let f = run("core", "let m: HashMap<u32, HashMap<u32, u32>> = x();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::HashIter);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn thread_sequence_sees_through_comments() {
        let f = run("core", "std::thread /* why */ :: spawn(|| {});\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::AdhocThread);
    }

    #[test]
    fn bench_crate_skips_determinism_rules_only() {
        let src = "let t = Instant::now();\nlet m = HashMap::new();\nlet r = thread_rng();\n";
        let f = run("bench", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, Rule::EntropyRng);
    }

    #[test]
    fn unknown_crate_fails_closed() {
        let f = run("some-new-crate", "let t = SystemTime::now();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::WallClock);
    }

    #[test]
    fn allow_consumes_exactly_one_finding() {
        let src = "\
// analyze: allow(hash-iter)
let a: HashSet<u32> = HashSet::new();
let b: HashSet<u32> = HashSet::new();
";
        let f = run("core", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!((f[0].rule, f[0].line), (Rule::HashIter, 3));
    }

    #[test]
    fn unused_allow_is_a_finding() {
        let f = run("core", "// analyze: allow(wall-clock)\nlet x = 1;\n");
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), (Rule::UnusedAllow, 1));
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let m = HashMap::new(); }\n}\n";
        assert!(run("core", src).is_empty());
    }

    #[test]
    fn raw_nonblocking_control_is_flagged_everywhere() {
        // The method call and the libc constant both fire, in every crate
        // class — readiness I/O owns the nonblocking transition.
        for crate_name in ["service", "bench"] {
            let f = run(crate_name, "stream.set_nonblocking(true)?;\n");
            assert_eq!(f.len(), 1, "{crate_name}: {f:?}");
            assert_eq!(f[0].rule, Rule::AdhocNonblocking);
        }
        let f = run("core", "let flags = old | libc::O_NONBLOCK;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::AdhocNonblocking);
    }

    #[test]
    fn nonblocking_tokens_in_comments_and_allows_are_clean() {
        // Prose mentioning the constant is not a finding, and the
        // annotation works like any other rule's.
        let f = run("service", "// the only path to O_NONBLOCK is register\n");
        assert!(f.is_empty(), "{f:?}");
        let f = run(
            "service",
            "// analyze: allow(adhoc-nonblocking)\nsock.set_nonblocking(true)?;\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn rand_random_path_is_entropy() {
        let f = run("core", "let x: u64 = rand::random();\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::EntropyRng);
    }

    #[test]
    fn unsafe_without_safety_is_reported_with_kind() {
        let f = run("core", "unsafe impl Send for X {}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnsafeNoSafety);
        assert!(f[0].message.contains("impl"));
    }
}
