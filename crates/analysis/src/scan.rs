//! Workspace walking and per-file preprocessing: which files to scan, which
//! token regions are `#[cfg(test)]` / `#[test]` (exempt from lints), and
//! where `// analyze: allow(rule)` annotations sit.

use crate::lexer::{lex, Tok, TokKind};
use std::path::{Path, PathBuf};

/// One source file, lexed, with its lint-exempt regions and annotations
/// resolved.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// The crate this file belongs to (e.g. `core`, `root`, `analysis`).
    pub crate_name: String,
    /// All tokens, in order.
    pub toks: Vec<Tok>,
    /// Raw source lines (for inventory context snippets).
    pub lines: Vec<String>,
    /// For each token, whether it sits inside a test-only region.
    pub in_test: Vec<bool>,
    /// `analyze: allow(rule)` annotations found outside test regions.
    pub allows: Vec<Allow>,
}

/// A parsed `// analyze: allow(rule)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule name inside the parentheses, verbatim.
    pub rule: String,
    /// Line the comment itself is on.
    pub comment_line: u32,
    /// Line the annotation applies to: the comment's own line (trailing
    /// form) plus the next line that carries code (preceding form). A
    /// finding on either line consumes the annotation.
    pub target_lines: Vec<u32>,
}

/// Walks the workspace at `root` and lexes every non-test production source
/// file: `src/` of the root package plus `crates/*/src`. `vendor/` is
/// intentionally out of scope (stand-ins mimic external APIs, including
/// nondeterministic ones), as are `tests/` and `benches/` trees. Files are
/// returned in sorted path order so findings are stable.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut units: Vec<(String, PathBuf)> = vec![("root".to_string(), root.join("src"))];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<String> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().join("src").is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        for name in names {
            let src = crates_dir.join(&name).join("src");
            units.push((name, src));
        }
    }

    let mut files = Vec::new();
    for (crate_name, src_dir) in units {
        let mut paths = Vec::new();
        collect_rs_files(&src_dir, &mut paths)?;
        paths.sort();
        for path in paths {
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            files.push(prepare_source(&rel, &crate_name, &text));
        }
    }
    Ok(files)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lexes `text` and resolves test regions and annotations. Public so tests
/// can run the pipeline on fixture strings.
pub fn prepare_source(rel_path: &str, crate_name: &str, text: &str) -> SourceFile {
    let toks = lex(text);
    let in_test = mark_test_regions(&toks);
    let allows = collect_allows(&toks, &in_test);
    SourceFile {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        toks,
        lines: text.lines().map(str::to_string).collect(),
        in_test,
        allows,
    }
}

/// Marks every token covered by a `#[test]`- or `#[cfg(test)]`-decorated
/// item (the attribute, the item header, and its `{…}` body or terminating
/// `;`). Token-level, so it keys off attribute shape, not expansion:
/// `#[cfg(test)]` and `#[cfg(all(test, …))]` count; `#[cfg(not(test))]`
/// does not.
fn mark_test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind != TokKind::Punct('#') {
            i += 1;
            continue;
        }
        // Attribute: `#[ ... ]` (we ignore inner `#![...]` — a file-level
        // test cfg would exclude the whole file, which no production source
        // here uses).
        let Some((attr_idents, attr_end)) = read_attr(toks, i) else {
            i += 1;
            continue;
        };
        if !attr_is_test(&attr_idents) {
            i = attr_end;
            continue;
        }
        // Covered region: from `#` through the decorated item. Skip any
        // further attributes, then scan to the end of the item: the first
        // `;` at depth 0 or the matching brace of the first `{`.
        let mut j = attr_end;
        while j < toks.len() && toks[j].kind == TokKind::Punct('#') {
            match read_attr(toks, j) {
                Some((_, e)) => j = e,
                None => break,
            }
        }
        let mut depth = 0i32;
        let mut end = toks.len();
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                TokKind::Punct(';') if depth == 0 => {
                    end = j + 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        for flag in in_test.iter_mut().take(end).skip(i) {
            *flag = true;
        }
        i = end;
    }
    in_test
}

/// Reads an outer attribute starting at the `#` at `start`; returns the
/// identifier tokens inside it and the index one past the closing `]`.
fn read_attr(toks: &[Tok], start: usize) -> Option<(Vec<String>, usize)> {
    if toks.get(start + 1).map(|t| &t.kind) != Some(&TokKind::Punct('[')) {
        return None;
    }
    let mut idents = Vec::new();
    let mut depth = 0i32;
    let mut j = start + 1;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some((idents, j + 1));
                }
            }
            TokKind::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    None
}

fn attr_is_test(idents: &[String]) -> bool {
    let has = |w: &str| idents.iter().any(|s| s == w);
    // `#[test]` (possibly with companions like `#[ignore]` handled as
    // separate attributes) or any `cfg` mentioning `test` positively.
    if idents.len() == 1 && idents[0] == "test" {
        return true;
    }
    has("cfg") && has("test") && !has("not")
}

/// Extracts `analyze: allow(rule)` annotations from comments outside test
/// regions. The annotation guards its own line (for trailing-comment form)
/// and the next line holding a code token (for the preceding-line form).
fn collect_allows(toks: &[Tok], in_test: &[bool]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, tok) in toks.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        let TokKind::Comment(text) = &tok.kind else {
            continue;
        };
        let Some(rule) = parse_allow(text) else {
            continue;
        };
        let mut target_lines = vec![tok.line];
        // The next non-comment token's line, if it is past this comment's
        // last line (i.e. the annotation precedes the code it covers).
        if let Some(next) = toks[idx + 1..]
            .iter()
            .find(|t| !matches!(t.kind, TokKind::Comment(_)))
        {
            if next.line > tok.end_line || (next.line >= tok.end_line && next.line != tok.line) {
                target_lines.push(next.line);
            }
        }
        allows.push(Allow {
            rule,
            comment_line: tok.line,
            target_lines,
        });
    }
    allows
}

/// Parses `analyze: allow(rule-name)` out of a comment body; whitespace
/// around the pieces is tolerated.
fn parse_allow(comment: &str) -> Option<String> {
    let rest = comment.trim().strip_prefix("analyze:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let (rule, _) = rest.split_once(')')?;
    let rule = rule.trim();
    if rule.is_empty() {
        None
    } else {
        Some(rule.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prep(src: &str) -> SourceFile {
        prepare_source("x.rs", "core", src)
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn prod2() {}\n";
        let sf = prep(src);
        let flag_of = |name: &str| {
            sf.toks
                .iter()
                .zip(&sf.in_test)
                .find(|(t, _)| t.kind == TokKind::Ident(name.into()))
                .map(|(_, &f)| f)
                .unwrap()
        };
        assert!(!flag_of("prod"));
        assert!(flag_of("helper"));
        assert!(!flag_of("prod2"));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let sf = prep("#[cfg(not(test))]\nfn only_prod() {}\n");
        assert!(sf.in_test.iter().all(|&f| !f));
    }

    #[test]
    fn test_fn_with_extra_attrs_is_marked() {
        let src = "#[test]\n#[ignore]\nfn t() { body(); }\nfn after() {}\n";
        let sf = prep(src);
        let body = sf
            .toks
            .iter()
            .zip(&sf.in_test)
            .find(|(t, _)| t.kind == TokKind::Ident("body".into()))
            .unwrap();
        assert!(*body.1);
        let after = sf
            .toks
            .iter()
            .zip(&sf.in_test)
            .find(|(t, _)| t.kind == TokKind::Ident("after".into()))
            .unwrap();
        assert!(!*after.1);
    }

    #[test]
    fn allow_annotations_resolve_both_forms() {
        let src = "\
use std::collections::HashSet;
// analyze: allow(hash-iter)
let seen: HashSet<u64> = HashSet::new();
let trailing = 1; // analyze: allow(wall-clock)
";
        let sf = prep(src);
        assert_eq!(sf.allows.len(), 2);
        assert_eq!(sf.allows[0].rule, "hash-iter");
        assert_eq!(sf.allows[0].comment_line, 2);
        assert!(sf.allows[0].target_lines.contains(&3));
        assert_eq!(sf.allows[1].rule, "wall-clock");
        assert!(sf.allows[1].target_lines.contains(&4));
    }

    #[test]
    fn allows_inside_test_regions_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n    // analyze: allow(hash-iter)\n    fn t() {}\n}\n";
        let sf = prep(src);
        assert!(sf.allows.is_empty());
    }
}
