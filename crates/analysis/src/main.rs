//! `crowdfusion-analyze`: run the determinism/unsafe lint pass over the
//! workspace.
//!
//! ```text
//! crowdfusion-analyze [--root <dir>] [--json <out-file>] [--deny-findings]
//! ```
//!
//! - `--root` — workspace root to scan (default: the workspace containing
//!   this crate, falling back to the current directory).
//! - `--json` — write the unsafe-site inventory to `<out-file>`; CI diffs
//!   it against the committed `ANALYSIS_unsafe.json`.
//! - `--deny-findings` — exit 1 if any finding survives annotations. CI
//!   runs with this flag; locally the default is report-only.

use crowdfusion_analysis::{analyze_files, inventory, scan_workspace, to_json};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut deny = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--deny-findings" => deny = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = root.unwrap_or_else(default_root);
    let files = match scan_workspace(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("crowdfusion-analyze: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let findings = analyze_files(&files);
    for f in &findings {
        println!("{f}");
    }

    let sites = inventory(&files);
    let missing = sites.iter().filter(|s| !s.has_safety).count();
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, to_json(&sites)) {
            eprintln!("crowdfusion-analyze: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    println!(
        "crowdfusion-analyze: {} file(s), {} finding(s); {} unsafe site(s), {} missing SAFETY",
        files.len(),
        findings.len(),
        sites.len(),
        missing
    );

    if deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The workspace root when run via `cargo run -p crowdfusion_analysis`:
/// two levels above this crate's manifest.
fn default_root() -> PathBuf {
    let manifest: PathBuf = env!("CARGO_MANIFEST_DIR").into();
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("crowdfusion-analyze: {err}");
    }
    eprintln!("usage: crowdfusion-analyze [--root <dir>] [--json <out-file>] [--deny-findings]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
