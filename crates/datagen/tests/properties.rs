//! Property-based tests for the dataset generators.

use crowdfusion_crowd::TaskClass;
use crowdfusion_datagen::book::generate;
use crowdfusion_datagen::country::generate as gen_countries;
use crowdfusion_datagen::{BookGenConfig, CountryGenConfig};
use proptest::prelude::*;

fn arb_book_config() -> impl Strategy<Value = BookGenConfig> {
    (
        1usize..=12,  // books
        1usize..=6,   // sources
        0usize..=2,   // specialists
        2usize..=6,   // min statements
        0usize..=4,   // extra statements
        0.0f64..=1.0, // textbook fraction
        0.2f64..=0.9, // reliability low
        0.0f64..=0.6, // participation slack
        any::<u64>(), // seed
    )
        .prop_map(
            |(books, sources, specialists, min_s, extra_s, textbook, rel_lo, part, seed)| {
                BookGenConfig {
                    n_books: books,
                    n_sources: sources,
                    n_specialists: specialists,
                    statements_per_book: (min_s, min_s + extra_s),
                    textbook_fraction: textbook,
                    source_reliability: (rel_lo, (rel_lo + 0.1).min(1.0)),
                    participation: (0.4 + part).min(1.0),
                    seed,
                    ..BookGenConfig::default()
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_books_are_internally_consistent(config in arb_book_config()) {
        let g = generate(config.clone());
        // Arity invariants.
        prop_assert_eq!(g.dataset.entities().len(), config.n_books);
        prop_assert_eq!(g.gold.len(), g.dataset.statements().len());
        prop_assert_eq!(g.classes.len(), g.dataset.statements().len());
        prop_assert_eq!(g.textbook.len(), config.n_books);
        // Every book has at least one true statement and respects limits.
        for e in g.dataset.entities() {
            prop_assert!(!e.statements.is_empty());
            prop_assert!(e.statements.len() <= config.statements_per_book.1);
            prop_assert!(e.statements.iter().any(|s| g.gold[s.0 as usize]));
        }
        // Gold labels agree with author-set equivalence (the generator's
        // own verifier asserts internally).
        g.verify_gold_consistency();
    }

    #[test]
    fn class_gold_coherence(config in arb_book_config()) {
        let g = generate(config);
        for (i, class) in g.classes.iter().enumerate() {
            match class {
                TaskClass::WrongOrder => prop_assert!(g.gold[i]),
                TaskClass::Misspelling | TaskClass::AdditionalInfo => {
                    prop_assert!(!g.gold[i])
                }
                TaskClass::Clean => {}
            }
        }
    }

    #[test]
    fn generation_deterministic(config in arb_book_config()) {
        prop_assert_eq!(generate(config.clone()), generate(config));
    }

    #[test]
    fn claims_reference_own_entity(config in arb_book_config()) {
        let g = generate(config);
        for claim in g.dataset.claims() {
            let entity = g.dataset.statement_entity(claim.statement);
            prop_assert!(g
                .dataset
                .statements_of(entity)
                .contains(&claim.statement));
        }
    }

    #[test]
    fn select_books_preserves_per_book_data(config in arb_book_config(), count in 1usize..=4) {
        let g = generate(config);
        let keep = g.smallest_books(count.min(g.dataset.entities().len()));
        let sub = g.select_books(&keep);
        prop_assert_eq!(sub.dataset.entities().len(), keep.len());
        // Gold/class vectors stay aligned per statement.
        for (new_e, old_e) in sub.dataset.entities().iter().zip(&keep) {
            prop_assert_eq!(
                sub.gold_for(new_e.id),
                g.gold_for(*old_e)
            );
            prop_assert_eq!(
                sub.classes_for(new_e.id),
                g.classes_for(*old_e)
            );
        }
        sub.verify_gold_consistency();
    }

    #[test]
    fn correlation_groups_partition(config in arb_book_config()) {
        let g = generate(config);
        for e in g.dataset.entities() {
            let groups = g.correlation_groups(e.id);
            let mut seen = vec![false; e.statements.len()];
            for group in &groups {
                for &idx in group {
                    prop_assert!(idx < e.statements.len());
                    prop_assert!(!seen[idx], "index in two groups");
                    seen[idx] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn countries_are_valid(n in 1usize..=25, seed in any::<u64>()) {
        let countries = gen_countries(CountryGenConfig {
            n_countries: n,
            seed,
            ..CountryGenConfig::default()
        });
        prop_assert_eq!(countries.len(), n);
        for c in &countries {
            prop_assert_eq!(c.prior.num_vars(), 5);
            prop_assert!((c.prior.total_mass() - 1.0).abs() < 1e-9);
            prop_assert_eq!(c.labels.len(), 5);
            prop_assert!(!c.interest.is_empty());
            // Gold satisfies the generator's exclusivity rules.
            prop_assert_ne!(c.gold.get(0), c.gold.get(1));
            prop_assert_ne!(c.gold.get(3), c.gold.get(4));
        }
    }
}
