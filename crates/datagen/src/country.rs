//! Correlated country-facts generator for query-based CrowdFusion.
//!
//! Section IV of the paper motivates the query-based extension with users
//! who only care about population and demographic facts, while *continent*
//! facts remain worth asking because they correlate with both ("Asia
//! countries tend to have large population"). This generator reproduces that
//! scenario: per country it emits
//!
//! * two mutually exclusive continent facts (Asia / Europe),
//! * a large-population fact softly implied by the Asia fact,
//! * two mutually exclusive majority-ethnic-group facts, correlated with
//!   the continent,
//!
//! as an explicit joint prior (via the factor-graph builder), a hidden gold
//! assignment and the facts-of-interest set `I` (population + ethnic group).

use crowdfusion_jointdist::{Assignment, Factor, FactorGraphBuilder, JointDist, VarSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for the country-facts generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryGenConfig {
    /// Number of countries to generate.
    pub n_countries: usize,
    /// Strength of the continent → population implication (penalty for
    /// violating it; 0 = hard, 1 = no correlation).
    pub implication_penalty: f64,
    /// Penalty for claiming two continents (or two ethnic groups) at once.
    pub exclusivity_penalty: f64,
    /// Noise added to the prior marginals around the gold truth; higher
    /// means a less informative machine prior.
    pub marginal_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CountryGenConfig {
    fn default() -> CountryGenConfig {
        CountryGenConfig {
            n_countries: 20,
            implication_penalty: 0.35,
            exclusivity_penalty: 0.05,
            marginal_noise: 0.35,
            seed: 7,
        }
    }
}

/// One country's facts: labels, a correlated joint prior, the hidden gold
/// assignment and the facts-of-interest subset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryFacts {
    /// Country name.
    pub name: String,
    /// Fact labels in variable order (5 facts).
    pub labels: Vec<String>,
    /// The correlated prior over the 5 facts.
    pub prior: JointDist,
    /// Hidden gold assignment (used by the crowd simulator).
    pub gold: Assignment,
    /// Facts of interest `I ⊆ F` (population + ethnic-group variables).
    pub interest: VarSet,
}

/// Variable indices within each country's fact vector.
pub mod vars {
    /// "Continent = Asia".
    pub const CONTINENT_ASIA: usize = 0;
    /// "Continent = Europe".
    pub const CONTINENT_EUROPE: usize = 1;
    /// "Population ≥ 50M".
    pub const LARGE_POPULATION: usize = 2;
    /// "Major ethnic group = Group A" (an Asia-typical group).
    pub const ETHNIC_A: usize = 3;
    /// "Major ethnic group = Group B" (a Europe-typical group).
    pub const ETHNIC_B: usize = 4;
}

const COUNTRY_STEMS: [&str; 20] = [
    "Aralia", "Borvia", "Cestan", "Dornland", "Elbia", "Fornost", "Garvia", "Hestia", "Ilmar",
    "Jorvik", "Kestral", "Luminia", "Morvath", "Nerida", "Ostrava", "Pelagia", "Quenda", "Rasteg",
    "Sorvia", "Tellan",
];

/// Generates the configured number of countries.
pub fn generate(config: CountryGenConfig) -> Vec<CountryFacts> {
    assert!(config.n_countries > 0, "n_countries must be positive");
    assert!(
        (0.0..=1.0).contains(&config.implication_penalty)
            && (0.0..=1.0).contains(&config.exclusivity_penalty)
            && (0.0..=0.5).contains(&config.marginal_noise),
        "invalid penalties/noise"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    (0..config.n_countries)
        .map(|i| generate_one(&config, &mut rng, i))
        .collect()
}

fn generate_one(config: &CountryGenConfig, rng: &mut StdRng, index: usize) -> CountryFacts {
    let stem = COUNTRY_STEMS[index % COUNTRY_STEMS.len()];
    let name = if index < COUNTRY_STEMS.len() {
        stem.to_string()
    } else {
        format!("{stem}-{}", index / COUNTRY_STEMS.len())
    };

    // Gold truth: the country is either Asian (large population & group A
    // likely) or European.
    let is_asia = rng.gen_bool(0.5);
    let large_pop = if is_asia {
        rng.gen_bool(0.8)
    } else {
        rng.gen_bool(0.3)
    };
    let ethnic_a = if is_asia {
        rng.gen_bool(0.85)
    } else {
        rng.gen_bool(0.15)
    };
    let mut gold = Assignment::ALL_FALSE;
    gold = gold.with(vars::CONTINENT_ASIA, is_asia);
    gold = gold.with(vars::CONTINENT_EUROPE, !is_asia);
    gold = gold.with(vars::LARGE_POPULATION, large_pop);
    gold = gold.with(vars::ETHNIC_A, ethnic_a);
    gold = gold.with(vars::ETHNIC_B, !ethnic_a);

    // Noisy machine-prior marginals around the gold truth.
    let noisy = |truth: bool, rng: &mut StdRng| -> f64 {
        let base: f64 = if truth { 0.75 } else { 0.25 };
        let jitter = rng.gen_range(-config.marginal_noise..=config.marginal_noise);
        (base + jitter).clamp(0.05, 0.95)
    };
    let marginals: Vec<f64> = (0..5).map(|v| noisy(gold.get(v), rng)).collect();

    let prior = FactorGraphBuilder::new(marginals)
        .factor(Factor::AtMostOne {
            vars: VarSet::from_vars([vars::CONTINENT_ASIA, vars::CONTINENT_EUROPE]),
            penalty: config.exclusivity_penalty,
        })
        .factor(Factor::AtMostOne {
            vars: VarSet::from_vars([vars::ETHNIC_A, vars::ETHNIC_B]),
            penalty: config.exclusivity_penalty,
        })
        .factor(Factor::Implies {
            premise: vars::CONTINENT_ASIA,
            conclusion: vars::LARGE_POPULATION,
            penalty: config.implication_penalty,
        })
        .factor(Factor::Implies {
            premise: vars::CONTINENT_ASIA,
            conclusion: vars::ETHNIC_A,
            penalty: config.implication_penalty,
        })
        .factor(Factor::Implies {
            premise: vars::CONTINENT_EUROPE,
            conclusion: vars::ETHNIC_B,
            penalty: config.implication_penalty,
        })
        .build()
        .expect("country prior is satisfiable");

    CountryFacts {
        labels: vec![
            format!("{name}, Continent, Asia"),
            format!("{name}, Continent, Europe"),
            format!("{name}, Population, >= 50M"),
            format!("{name}, Major Ethnic Group, A"),
            format!("{name}, Major Ethnic Group, B"),
        ],
        name,
        prior,
        gold,
        interest: VarSet::from_vars([vars::LARGE_POPULATION, vars::ETHNIC_A, vars::ETHNIC_B]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = generate(CountryGenConfig::default());
        let b = generate(CountryGenConfig::default());
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        for c in &a {
            assert_eq!(c.prior.num_vars(), 5);
            assert_eq!(c.labels.len(), 5);
            assert_eq!(c.interest.len(), 3);
        }
    }

    #[test]
    fn gold_respects_exclusivity() {
        for c in generate(CountryGenConfig::default()) {
            assert_ne!(
                c.gold.get(vars::CONTINENT_ASIA),
                c.gold.get(vars::CONTINENT_EUROPE)
            );
            assert_ne!(c.gold.get(vars::ETHNIC_A), c.gold.get(vars::ETHNIC_B));
        }
    }

    #[test]
    fn prior_correlates_continent_with_interest_facts() {
        // Mutual information between the continent facts and the facts of
        // interest must be positive — this is what makes continent worth
        // asking in query-based mode.
        let countries = generate(CountryGenConfig::default());
        let mut positive = 0;
        for c in &countries {
            let continent = VarSet::from_vars([vars::CONTINENT_ASIA, vars::CONTINENT_EUROPE]);
            let mi = c.prior.mutual_information(continent, c.interest).unwrap();
            if mi > 1e-3 {
                positive += 1;
            }
        }
        assert!(
            positive * 2 > countries.len(),
            "continent uninformative in {positive}/{} countries",
            countries.len()
        );
    }

    #[test]
    fn unique_names_even_beyond_stem_pool() {
        let countries = generate(CountryGenConfig {
            n_countries: 45,
            ..CountryGenConfig::default()
        });
        let names: std::collections::HashSet<_> =
            countries.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names.len(), 45);
    }

    #[test]
    #[should_panic(expected = "n_countries")]
    fn zero_countries_rejected() {
        generate(CountryGenConfig {
            n_countries: 0,
            ..CountryGenConfig::default()
        });
    }
}
