//! Synthetic dataset substrate for the CrowdFusion reproduction.
//!
//! The paper evaluates on the *Book* dataset (author lists scraped from
//! bookstore websites, lunadong.com fusion datasets) with a manually
//! labelled gold standard. That data is not redistributable, so this crate
//! generates synthetic datasets with the same *relevant structure* — the
//! substitution argument lives in DESIGN.md:
//!
//! * conflicting multi-truth author-list claims per book (order/format
//!   variants are both true, Section V-A);
//! * heterogeneous source reliability, including domain-specialist sources
//!   like the paper's eCampus.com example (55 % correct on textbooks, 0 % on
//!   non-textbooks, Section I);
//! * roughly half of raw web claims correct ("statistics of a small set of
//!   books suggest that only around 50 % of Web data facts is correct",
//!   Section V-A);
//! * the Section V-D confusion taxonomy (wrong order / additional info /
//!   misspelling) tagged on every statement so the crowd simulator can
//!   degrade worker accuracy per class.
//!
//! [`country`] additionally generates the correlated country-facts scenario
//! motivating query-based CrowdFusion (Section IV: continent ↔ population ↔
//! major ethnic group).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod book;
pub mod country;
pub mod export;
pub mod names;

pub use book::{BookGenConfig, GeneratedBooks};
pub use country::{CountryFacts, CountryGenConfig};
