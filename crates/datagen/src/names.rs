//! Deterministic name and title pools for the synthetic book generator.

use rand::Rng;

/// First names drawn for synthetic authors.
pub const FIRST_NAMES: [&str; 40] = [
    "Ada",
    "Alan",
    "Barbara",
    "Brian",
    "Carol",
    "Claude",
    "Dennis",
    "Donald",
    "Edsger",
    "Edgar",
    "Frances",
    "Grace",
    "Herbert",
    "Ivan",
    "James",
    "John",
    "Judea",
    "Ken",
    "Leslie",
    "Margaret",
    "Marvin",
    "Maurice",
    "Niklaus",
    "Peter",
    "Radia",
    "Richard",
    "Robert",
    "Ronald",
    "Shafi",
    "Silvio",
    "Stephen",
    "Tim",
    "Tony",
    "Vint",
    "Whitfield",
    "Adele",
    "Hal",
    "Lynn",
    "Manuel",
    "Sophie",
];

/// Last names drawn for synthetic authors.
pub const LAST_NAMES: [&str; 40] = [
    "Lovelace",
    "Turing",
    "Liskov",
    "Kernighan",
    "Shaw",
    "Shannon",
    "Ritchie",
    "Knuth",
    "Dijkstra",
    "Codd",
    "Allen",
    "Hopper",
    "Simon",
    "Sutherland",
    "Gosling",
    "McCarthy",
    "Pearl",
    "Thompson",
    "Lamport",
    "Hamilton",
    "Minsky",
    "Wilkes",
    "Wirth",
    "Naur",
    "Perlman",
    "Stearns",
    "Tarjan",
    "Rivest",
    "Goldwasser",
    "Micali",
    "Cook",
    "Berners-Lee",
    "Hoare",
    "Cerf",
    "Diffie",
    "Goldberg",
    "Abelson",
    "Conway",
    "Blum",
    "Germain",
];

/// Words used to assemble synthetic book titles.
pub const TITLE_WORDS: [&str; 24] = [
    "Introduction",
    "Advanced",
    "Practical",
    "Modern",
    "Foundations",
    "Principles",
    "Art",
    "Science",
    "Theory",
    "Systems",
    "Networks",
    "Databases",
    "Algorithms",
    "Programming",
    "Computation",
    "Logic",
    "Design",
    "Analysis",
    "Architecture",
    "Learning",
    "Security",
    "Compilers",
    "Graphics",
    "Crowdsourcing",
];

/// Organisations used for the "additional information" error class
/// (cf. the paper's `RUCKER, RUDY (SAN JOSE STATE UNIVERSITY, USA)`).
pub const ORGANISATIONS: [&str; 8] = [
    "SAN JOSE STATE UNIVERSITY, USA",
    "MIT PRESS",
    "OXFORD UNIVERSITY",
    "ETH ZURICH",
    "BELL LABS",
    "HKUST, HONG KONG",
    "CAMBRIDGE, UK",
    "STANFORD UNIVERSITY",
];

/// A full author name as (first, last).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthorName {
    /// Given name.
    pub first: &'static str,
    /// Family name.
    pub last: &'static str,
}

impl AuthorName {
    /// `First Last` rendering.
    pub fn natural(&self) -> String {
        format!("{} {}", self.first, self.last)
    }

    /// `Last, First` rendering (the alternative true format).
    pub fn inverted(&self) -> String {
        format!("{}, {}", self.last, self.first)
    }

    /// A rendering with a misspelled last name: one vowel substituted (or a
    /// trailing letter appended when no vowel is found), preserving case.
    pub fn misspelled(&self) -> String {
        let mut last: Vec<char> = self.last.chars().collect();
        let subst = |c: char| match c {
            'a' => 'e',
            'e' => 'a',
            'i' => 'y',
            'o' => 'u',
            'u' => 'o',
            other => other,
        };
        let mut changed = false;
        for ch in last.iter_mut().skip(1) {
            let s = subst(*ch);
            if s != *ch {
                *ch = s;
                changed = true;
                break;
            }
        }
        if !changed {
            last.push('h');
        }
        format!("{} {}", self.first, last.into_iter().collect::<String>())
    }
}

/// Draws `count` distinct author names.
pub fn draw_authors<R: Rng + ?Sized>(rng: &mut R, count: usize) -> Vec<AuthorName> {
    assert!(
        count <= FIRST_NAMES.len(),
        "at most {} distinct authors supported",
        FIRST_NAMES.len()
    );
    let mut picked = Vec::with_capacity(count);
    // analyze: allow(hash-iter) — membership-only collision guard; picks
    // are ordered by the seeded RNG draws, not by the set.
    let mut used = std::collections::HashSet::new();
    while picked.len() < count {
        let f = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let l = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        if used.insert((f, l)) {
            picked.push(AuthorName { first: f, last: l });
        }
    }
    picked
}

/// Builds a deterministic-but-varied book title.
pub fn book_title<R: Rng + ?Sized>(rng: &mut R, index: usize) -> String {
    let a = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
    let b = TITLE_WORDS[rng.gen_range(0..TITLE_WORDS.len())];
    format!("{a} {b} (Vol. {index})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn renderings_are_equivalent_under_canonicalisation() {
        let n = AuthorName {
            first: "Ada",
            last: "Lovelace",
        };
        assert!(crowdfusion_fusion::text::lists_equivalent(
            &n.natural(),
            &n.inverted()
        ));
        assert!(!crowdfusion_fusion::text::lists_equivalent(
            &n.natural(),
            &n.misspelled()
        ));
    }

    #[test]
    fn misspelling_always_changes_name() {
        for last in LAST_NAMES {
            let n = AuthorName { first: "X", last };
            assert_ne!(n.misspelled(), n.natural(), "misspelling no-op for {last}");
        }
    }

    #[test]
    fn draw_authors_distinct() {
        let mut rng = StdRng::seed_from_u64(1);
        let authors = draw_authors(&mut rng, 10);
        let set: std::collections::HashSet<_> = authors.iter().map(|a| (a.first, a.last)).collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn titles_vary_with_index() {
        let mut rng = StdRng::seed_from_u64(2);
        let t1 = book_title(&mut rng, 1);
        let t2 = book_title(&mut rng, 2);
        assert!(t1.contains("Vol. 1"));
        assert!(t2.contains("Vol. 2"));
    }
}
