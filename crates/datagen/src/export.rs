//! JSON import/export of generated datasets and experiment artefacts.

use crate::book::GeneratedBooks;
use crate::country::CountryFacts;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

/// Saves a generated book dataset as pretty-printed JSON.
pub fn save_books(books: &GeneratedBooks, path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    serde_json::to_writer_pretty(&mut writer, books)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    writer.flush()
}

/// Loads a generated book dataset from JSON.
pub fn load_books(path: &Path) -> std::io::Result<GeneratedBooks> {
    let file = File::open(path)?;
    serde_json::from_reader(BufReader::new(file))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Saves a set of country scenarios as pretty-printed JSON.
pub fn save_countries(countries: &[CountryFacts], path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    serde_json::to_writer_pretty(&mut writer, countries)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    writer.flush()
}

/// Loads country scenarios from JSON.
pub fn load_countries(path: &Path) -> std::io::Result<Vec<CountryFacts>> {
    let file = File::open(path)?;
    serde_json::from_reader(BufReader::new(file))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::book::{generate, BookGenConfig};
    use crate::country::{generate as gen_countries, CountryGenConfig};

    #[test]
    fn books_roundtrip() {
        let books = generate(BookGenConfig::quick());
        let dir = std::env::temp_dir().join("crowdfusion-datagen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("books.json");
        save_books(&books, &path).unwrap();
        let loaded = load_books(&path).unwrap();
        assert_eq!(loaded, books);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn countries_roundtrip() {
        let countries = gen_countries(CountryGenConfig {
            n_countries: 3,
            ..CountryGenConfig::default()
        });
        let dir = std::env::temp_dir().join("crowdfusion-datagen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("countries.json");
        save_countries(&countries, &path).unwrap();
        let loaded = load_countries(&path).unwrap();
        assert_eq!(loaded, countries);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_books(Path::new("/nonexistent/books.json")).is_err());
        assert!(load_countries(Path::new("/nonexistent/countries.json")).is_err());
    }
}
