//! JSON import/export of generated datasets and experiment artefacts,
//! including the `crowdfusion-serve` wire format.

use crate::book::GeneratedBooks;
use crate::country::CountryFacts;
use crowdfusion_core::session::EntitySpec;
use crowdfusion_fusion::{EntityId, FusionResult};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Saves a generated book dataset as pretty-printed JSON.
pub fn save_books(books: &GeneratedBooks, path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    serde_json::to_writer_pretty(&mut writer, books)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    writer.flush()
}

/// Loads a generated book dataset from JSON.
pub fn load_books(path: &Path) -> std::io::Result<GeneratedBooks> {
    let file = File::open(path)?;
    serde_json::from_reader(BufReader::new(file))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Saves a set of country scenarios as pretty-printed JSON.
pub fn save_countries(countries: &[CountryFacts], path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    serde_json::to_writer_pretty(&mut writer, countries)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    writer.flush()
}

/// Loads country scenarios from JSON.
pub fn load_countries(path: &Path) -> std::io::Result<Vec<CountryFacts>> {
    let file = File::open(path)?;
    serde_json::from_reader(BufReader::new(file))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Exports one book's claims in the `crowdfusion-serve` wire format: the
/// fusion method's per-statement marginals plus the book's correlation
/// groups (the joint-prior inputs), crowd prompts, confusion classes and
/// gold labels.
///
/// This is the single source of the spec the offline pipeline *and* the
/// service consume (`crowdfusion::pipeline::entity_case_for_book` routes
/// through it), so a served session and an offline run of the same book
/// start from bit-identical priors.
pub fn wire_entity(books: &GeneratedBooks, fusion: &FusionResult, entity: EntityId) -> EntitySpec {
    let name = books.dataset.entities()[entity.0 as usize].name.clone();
    let prompts = books
        .dataset
        .statements_of(entity)
        .iter()
        .map(|s| {
            format!(
                "Is \"{}\" the complete author list of \"{name}\"?",
                books.dataset.statement_text(*s)
            )
        })
        .collect();
    EntitySpec {
        marginals: fusion.entity_marginals(&books.dataset, entity),
        groups: books.correlation_groups(entity),
        prompts,
        classes: books.classes_for(entity),
        gold: books.gold_for(entity),
        name,
        method: Some(fusion.method().to_string()),
    }
}

/// Exports every book's claims in the wire format, in entity order.
pub fn wire_entities(books: &GeneratedBooks, fusion: &FusionResult) -> Vec<EntitySpec> {
    books
        .dataset
        .entities()
        .iter()
        .map(|e| wire_entity(books, fusion, e.id))
        .collect()
}

/// Saves wire-format entity specs as line-delimited JSON, one entity per
/// line. The daemon frames requests, not bare specs, so a saved file is
/// not piped to it verbatim: a client loads the specs and embeds them in
/// an `Open` request's `entities` array.
pub fn save_wire_entities(specs: &[EntitySpec], path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    for spec in specs {
        let line = serde_json::to_string(spec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
    }
    writer.flush()
}

/// Loads wire-format entity specs from line-delimited JSON (blank lines
/// are skipped).
pub fn load_wire_entities(path: &Path) -> std::io::Result<Vec<EntitySpec>> {
    let file = File::open(path)?;
    let mut specs = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let spec = serde_json::from_str(&line)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        specs.push(spec);
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::book::{generate, BookGenConfig};
    use crate::country::{generate as gen_countries, CountryGenConfig};

    #[test]
    fn books_roundtrip() {
        let books = generate(BookGenConfig::quick());
        let dir = std::env::temp_dir().join("crowdfusion-datagen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("books.json");
        save_books(&books, &path).unwrap();
        let loaded = load_books(&path).unwrap();
        assert_eq!(loaded, books);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn countries_roundtrip() {
        let countries = gen_countries(CountryGenConfig {
            n_countries: 3,
            ..CountryGenConfig::default()
        });
        let dir = std::env::temp_dir().join("crowdfusion-datagen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("countries.json");
        save_countries(&countries, &path).unwrap();
        let loaded = load_countries(&path).unwrap();
        assert_eq!(loaded, countries);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_books(Path::new("/nonexistent/books.json")).is_err());
        assert!(load_countries(Path::new("/nonexistent/countries.json")).is_err());
        assert!(load_wire_entities(Path::new("/nonexistent/wire.jsonl")).is_err());
    }

    #[test]
    fn wire_entities_roundtrip_and_materialise() {
        use crowdfusion_fusion::{FusionMethod, ModifiedCrh};
        let books = generate(BookGenConfig::quick());
        let fusion = ModifiedCrh::default().fuse(&books.dataset).unwrap();
        let specs = wire_entities(&books, &fusion);
        assert_eq!(specs.len(), books.dataset.entities().len());
        for (spec, entity) in specs.iter().zip(books.dataset.entities()) {
            assert_eq!(spec.marginals.len(), entity.statements.len());
            spec.validate().unwrap();
            // Specs materialise into valid cases (the service's `open`).
            let case = spec.clone().into_case().unwrap();
            assert_eq!(case.num_facts(), spec.marginals.len());
        }
        let dir = std::env::temp_dir().join("crowdfusion-datagen-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wire.jsonl");
        save_wire_entities(&specs, &path).unwrap();
        let loaded = load_wire_entities(&path).unwrap();
        assert_eq!(loaded, specs);
        // One line per entity: the framing the daemon itself speaks.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), specs.len());
        std::fs::remove_file(&path).ok();
    }
}
