//! Synthetic Book-dataset generator.
//!
//! Reproduces the structure of the paper's Book dataset (Section V-A): books
//! with conflicting author-list statements claimed by web sources of varying
//! reliability, a gold standard where order/format variants of the correct
//! list are all true, and the Section V-D confusion taxonomy tagged per
//! statement.

use crate::names::{book_title, draw_authors, AuthorName, LAST_NAMES, ORGANISATIONS};
use crowdfusion_crowd::TaskClass;
use crowdfusion_fusion::text::{canonical_list, lists_equivalent};
use crowdfusion_fusion::{Dataset, DatasetBuilder, EntityId, StatementId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic Book dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BookGenConfig {
    /// Number of books (the paper uses 100).
    pub n_books: usize,
    /// Number of general web sources.
    pub n_sources: usize,
    /// Number of additional *domain specialist* sources, modelled on the
    /// paper's eCampus.com example: decent on textbooks, hopeless otherwise.
    pub n_specialists: usize,
    /// Inclusive range of authors per book.
    pub authors_per_book: (usize, usize),
    /// Inclusive range of candidate statements per book (the book's fact
    /// count `n`). The paper's efficiency experiments use books with more
    /// than 20 facts; quality experiments use smaller ones.
    pub statements_per_book: (usize, usize),
    /// Fraction of books that are textbooks (the specialist domain).
    pub textbook_fraction: f64,
    /// Reliability range of general sources: per-claim probability of
    /// asserting a true variant. Centered near 0.5 to match the paper's
    /// "only around 50 % of Web data facts is correct".
    pub source_reliability: (f64, f64),
    /// Specialist reliability on textbooks (paper: 55 % for eCampus.com).
    pub specialist_textbook_reliability: f64,
    /// Specialist reliability on non-textbooks (paper: 0 %).
    pub specialist_other_reliability: f64,
    /// Probability that a source makes a claim about a given book.
    pub participation: f64,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
}

impl Default for BookGenConfig {
    fn default() -> BookGenConfig {
        BookGenConfig {
            n_books: 100,
            n_sources: 10,
            n_specialists: 2,
            authors_per_book: (1, 4),
            statements_per_book: (3, 8),
            textbook_fraction: 0.5,
            source_reliability: (0.35, 0.75),
            specialist_textbook_reliability: 0.55,
            specialist_other_reliability: 0.05,
            participation: 0.7,
            seed: 42,
        }
    }
}

impl BookGenConfig {
    /// A small configuration for fast tests and `--quick` harness runs.
    pub fn quick() -> BookGenConfig {
        BookGenConfig {
            n_books: 12,
            n_sources: 6,
            n_specialists: 1,
            statements_per_book: (3, 6),
            ..BookGenConfig::default()
        }
    }

    /// The large-entity scenario of the paper's efficiency experiments
    /// ("books with facts more than 20"): every book carries exactly
    /// `n_statements` candidate author lists, drawn from a wider author
    /// pool so the shared-author format variants form sizeable
    /// correlation groups. Beyond the engine's dense limit
    /// (`MAX_DENSE_FACTS` = 26) these books exercise the sparse prior
    /// and sparse answer-table paths end to end.
    pub fn large(n_statements: usize) -> BookGenConfig {
        BookGenConfig {
            n_books: 4,
            n_sources: 12,
            n_specialists: 2,
            authors_per_book: (3, 5),
            statements_per_book: (n_statements, n_statements),
            ..BookGenConfig::default()
        }
    }

    fn validate(&self) {
        assert!(self.n_books > 0, "n_books must be positive");
        assert!(
            self.n_sources + self.n_specialists > 0,
            "need at least one source"
        );
        assert!(
            self.authors_per_book.0 >= 1 && self.authors_per_book.0 <= self.authors_per_book.1,
            "invalid authors_per_book range"
        );
        assert!(
            self.statements_per_book.0 >= 2
                && self.statements_per_book.0 <= self.statements_per_book.1,
            "statements_per_book must span at least [2, hi]"
        );
        for p in [
            self.textbook_fraction,
            self.source_reliability.0,
            self.source_reliability.1,
            self.specialist_textbook_reliability,
            self.specialist_other_reliability,
            self.participation,
        ] {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        assert!(
            self.source_reliability.0 <= self.source_reliability.1,
            "invalid reliability range"
        );
    }
}

/// A generated dataset plus everything the experiments need to know about
/// it: gold labels, confusion classes and the generating configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedBooks {
    /// The claims dataset (books, statements, sources, claims).
    pub dataset: Dataset,
    /// Gold truth per statement id.
    pub gold: Vec<bool>,
    /// Confusion class per statement id (drives crowd difficulty).
    pub classes: Vec<TaskClass>,
    /// Whether each book is a textbook (specialist domain).
    pub textbook: Vec<bool>,
    /// The generating configuration.
    pub config: BookGenConfig,
}

/// One candidate statement before it is registered in the dataset.
struct DraftStatement {
    text: String,
    gold: bool,
    class: TaskClass,
}

/// Generates the candidate statements for one book.
fn draft_statements<R: Rng + ?Sized>(
    rng: &mut R,
    authors: &[AuthorName],
    n_statements: usize,
) -> Vec<DraftStatement> {
    let natural = authors
        .iter()
        .map(AuthorName::natural)
        .collect::<Vec<_>>()
        .join("; ");
    let inverted = authors
        .iter()
        .map(AuthorName::inverted)
        .collect::<Vec<_>>()
        .join("; ");

    let mut drafts: Vec<DraftStatement> = Vec::with_capacity(n_statements);
    // The canonical true statement always exists.
    drafts.push(DraftStatement {
        text: natural.clone(),
        gold: true,
        class: TaskClass::Clean,
    });

    // Optional additional true variants.
    let mut true_variants: Vec<DraftStatement> = Vec::new();
    true_variants.push(DraftStatement {
        text: inverted,
        gold: true,
        class: TaskClass::Clean,
    });
    if authors.len() >= 2 {
        let mut order: Vec<&AuthorName> = authors.iter().collect();
        while order.iter().zip(authors).all(|(a, b)| std::ptr::eq(*a, b)) {
            order.shuffle(rng);
        }
        let reordered = order
            .iter()
            .map(|a| a.inverted())
            .collect::<Vec<_>>()
            .join("; ");
        true_variants.push(DraftStatement {
            text: reordered,
            gold: true,
            class: TaskClass::WrongOrder,
        });
    }

    // False variants, in a rotation so every class appears.
    let mut false_variants: Vec<DraftStatement> = Vec::new();
    // Misspelling.
    {
        let idx = rng.gen_range(0..authors.len());
        let text = authors
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if i == idx {
                    a.misspelled()
                } else {
                    a.natural()
                }
            })
            .collect::<Vec<_>>()
            .join("; ");
        false_variants.push(DraftStatement {
            text,
            gold: false,
            class: TaskClass::Misspelling,
        });
    }
    // Additional organisation info.
    {
        let idx = rng.gen_range(0..authors.len());
        let org = ORGANISATIONS[rng.gen_range(0..ORGANISATIONS.len())];
        let text = authors
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if i == idx {
                    format!("{} ({org})", a.inverted())
                } else {
                    a.inverted()
                }
            })
            .collect::<Vec<_>>()
            .join("; ");
        false_variants.push(DraftStatement {
            text,
            gold: false,
            class: TaskClass::AdditionalInfo,
        });
    }
    // Wrong author: replace one author with a name outside the list.
    {
        let idx = rng.gen_range(0..authors.len());
        let replacement = loop {
            let cand = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
            if authors.iter().all(|a| a.last != cand) {
                break cand;
            }
        };
        let text = authors
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if i == idx {
                    format!("{} {}", a.first, replacement)
                } else {
                    a.natural()
                }
            })
            .collect::<Vec<_>>()
            .join("; ");
        false_variants.push(DraftStatement {
            text,
            gold: false,
            class: TaskClass::Clean,
        });
    }
    // Missing author (books with at least two authors).
    if authors.len() >= 2 {
        let drop = rng.gen_range(0..authors.len());
        let text = authors
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, a)| a.natural())
            .collect::<Vec<_>>()
            .join("; ");
        false_variants.push(DraftStatement {
            text,
            gold: false,
            class: TaskClass::Clean,
        });
    }
    // Extra author.
    {
        let extra = loop {
            let cand = draw_authors(rng, 1)[0];
            if authors
                .iter()
                .all(|a| (a.first, a.last) != (cand.first, cand.last))
            {
                break cand;
            }
        };
        let text = authors
            .iter()
            .map(AuthorName::natural)
            .chain(std::iter::once(extra.natural()))
            .collect::<Vec<_>>()
            .join("; ");
        false_variants.push(DraftStatement {
            text,
            gold: false,
            class: TaskClass::Clean,
        });
    }
    // More misspelling variants to pad large books, each misspelling a
    // different author or combining with reordering.
    while drafts.len() + true_variants.len() + false_variants.len() < n_statements {
        let idx = rng.gen_range(0..authors.len());
        let org = ORGANISATIONS[rng.gen_range(0..ORGANISATIONS.len())];
        let style = rng.gen_range(0..3);
        let (text, class) = match style {
            0 => (
                authors
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        if i == idx {
                            a.misspelled()
                        } else {
                            a.inverted()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("; "),
                TaskClass::Misspelling,
            ),
            1 => (
                authors
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        if i == idx {
                            format!("{} ({org})", a.natural())
                        } else {
                            a.natural()
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("; "),
                TaskClass::AdditionalInfo,
            ),
            _ => {
                let extra = draw_authors(rng, 1)[0];
                (
                    authors
                        .iter()
                        .map(AuthorName::inverted)
                        .chain(std::iter::once(extra.inverted()))
                        .collect::<Vec<_>>()
                        .join("; "),
                    TaskClass::Clean,
                )
            }
        };
        false_variants.push(DraftStatement {
            text,
            gold: false,
            class,
        });
    }

    // Interleave: canonical truth + a mix of variants up to n_statements,
    // deduplicating identical texts.
    let n_true_extra = rng.gen_range(0..=true_variants.len().min(n_statements - 1));
    drafts.extend(true_variants.into_iter().take(n_true_extra));
    for fv in false_variants {
        if drafts.len() >= n_statements {
            break;
        }
        drafts.push(fv);
    }
    drafts.truncate(n_statements);
    // Deduplicate texts (rare collisions between variants) and top back up
    // with fresh wrong-author variants until the requested count is met —
    // large books (the paper's "> 20 facts" case) need the exact size.
    // analyze: allow(hash-iter) — membership-only dedup guard; `retain`
    // keeps the drafts' own order.
    let mut seen = std::collections::HashSet::new();
    drafts.retain(|d| seen.insert(d.text.clone()));
    let mut attempts = 0;
    while drafts.len() < n_statements && attempts < 64 * n_statements {
        attempts += 1;
        let extra = draw_authors(rng, 1)[0];
        let drop = rng.gen_range(0..authors.len());
        let text = authors
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if i == drop {
                    extra.natural()
                } else {
                    a.natural()
                }
            })
            .collect::<Vec<_>>()
            .join("; ");
        // Guard against accidentally reproducing the true author set.
        if crowdfusion_fusion::text::lists_equivalent(&text, &natural) {
            continue;
        }
        if seen.insert(text.clone()) {
            drafts.push(DraftStatement {
                text,
                gold: false,
                class: TaskClass::Clean,
            });
        }
    }
    // Shuffle so the true statements are not always listed first.
    drafts.shuffle(rng);
    drafts
}

/// Generates a synthetic Book dataset.
pub fn generate(config: BookGenConfig) -> GeneratedBooks {
    config.validate();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = DatasetBuilder::new();

    let total_sources = config.n_sources + config.n_specialists;
    let mut reliabilities = Vec::with_capacity(total_sources);
    for i in 0..config.n_sources {
        let (lo, hi) = config.source_reliability;
        let r = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        builder.add_source(format!("source{i}.example.com"));
        reliabilities.push((r, r));
    }
    for i in 0..config.n_specialists {
        builder.add_source(format!("specialist{i}.example.com"));
        reliabilities.push((
            config.specialist_textbook_reliability,
            config.specialist_other_reliability,
        ));
    }

    let mut gold = Vec::new();
    let mut classes = Vec::new();
    let mut textbook = Vec::new();

    for b in 0..config.n_books {
        let entity = builder.add_entity(book_title(&mut rng, b));
        let is_textbook = rng.gen::<f64>() < config.textbook_fraction;
        textbook.push(is_textbook);
        let n_authors = rng.gen_range(config.authors_per_book.0..=config.authors_per_book.1);
        let authors = draw_authors(&mut rng, n_authors);
        let n_statements =
            rng.gen_range(config.statements_per_book.0..=config.statements_per_book.1);
        let drafts = draft_statements(&mut rng, &authors, n_statements);

        let mut true_ids: Vec<StatementId> = Vec::new();
        let mut false_ids: Vec<StatementId> = Vec::new();
        for d in &drafts {
            let id = builder
                .add_statement(entity, d.text.clone())
                .expect("entity exists");
            gold.push(d.gold);
            classes.push(d.class);
            if d.gold {
                true_ids.push(id);
            } else {
                false_ids.push(id);
            }
        }

        // Sources claim one statement each for this book.
        for (sid, &(r_text, r_other)) in reliabilities.iter().enumerate() {
            if rng.gen::<f64>() >= config.participation {
                continue;
            }
            let r = if is_textbook { r_text } else { r_other };
            let pick_true = rng.gen::<f64>() < r && !true_ids.is_empty();
            let pool = if pick_true || false_ids.is_empty() {
                &true_ids
            } else {
                &false_ids
            };
            let choice = pool[rng.gen_range(0..pool.len())];
            builder
                .add_claim(crowdfusion_fusion::SourceId(sid as u32), choice)
                .expect("valid claim");
        }
    }

    GeneratedBooks {
        dataset: builder.build(),
        gold,
        classes,
        textbook,
        config,
    }
}

impl GeneratedBooks {
    /// Gold labels of one book's statements, in statement order.
    pub fn gold_for(&self, entity: EntityId) -> Vec<bool> {
        self.dataset
            .statements_of(entity)
            .iter()
            .map(|s| self.gold[s.0 as usize])
            .collect()
    }

    /// Confusion classes of one book's statements, in statement order.
    pub fn classes_for(&self, entity: EntityId) -> Vec<TaskClass> {
        self.dataset
            .statements_of(entity)
            .iter()
            .map(|s| self.classes[s.0 as usize])
            .collect()
    }

    /// Groups one book's statements (as indices into its statement order)
    /// by author-set equivalence. Statements in the same group are format
    /// variants of each other (all true or all false together); different
    /// groups name different author sets and conflict.
    pub fn correlation_groups(&self, entity: EntityId) -> Vec<Vec<usize>> {
        let stmts = self.dataset.statements_of(entity);
        let mut groups: Vec<(Vec<std::collections::BTreeSet<String>>, Vec<usize>)> = Vec::new();
        for (idx, s) in stmts.iter().enumerate() {
            let canon = canonical_list(self.dataset.statement_text(*s));
            match groups.iter_mut().find(|(c, _)| *c == canon) {
                Some((_, members)) => members.push(idx),
                None => groups.push((canon, vec![idx])),
            }
        }
        groups.into_iter().map(|(_, members)| members).collect()
    }

    /// Fraction of *claims* that assert a gold-true statement — the paper's
    /// "around 50 % of Web data facts is correct" raw-data statistic.
    pub fn raw_claim_true_rate(&self) -> f64 {
        let claims = self.dataset.claims();
        if claims.is_empty() {
            return 0.0;
        }
        claims
            .iter()
            .filter(|c| self.gold[c.statement.0 as usize])
            .count() as f64
            / claims.len() as f64
    }

    /// Builds a new `GeneratedBooks` containing only the selected books
    /// (ids remapped contiguously). Used for the paper's Figure 2 subset
    /// ("a small subset of data with 40 books, which contains the least
    /// number of statements").
    pub fn select_books(&self, keep: &[EntityId]) -> GeneratedBooks {
        let mut builder = DatasetBuilder::new();
        for s in self.dataset.sources() {
            builder.add_source(s.name.clone());
        }
        let mut gold = Vec::new();
        let mut classes = Vec::new();
        let mut textbook = Vec::new();
        // analyze: allow(hash-iter) — keyed lookup only (old id → new id);
        // iteration never happens, so order cannot leak.
        let mut stmt_map = std::collections::HashMap::new();
        for &old_e in keep {
            let new_e = builder.add_entity(self.dataset.entities()[old_e.0 as usize].name.clone());
            textbook.push(self.textbook[old_e.0 as usize]);
            for &old_s in self.dataset.statements_of(old_e) {
                let new_s = builder
                    .add_statement(new_e, self.dataset.statement_text(old_s).to_string())
                    .expect("entity exists");
                stmt_map.insert(old_s, new_s);
                gold.push(self.gold[old_s.0 as usize]);
                classes.push(self.classes[old_s.0 as usize]);
            }
        }
        for c in self.dataset.claims() {
            if let Some(&new_s) = stmt_map.get(&c.statement) {
                builder.add_claim(c.source, new_s).expect("valid claim");
            }
        }
        GeneratedBooks {
            dataset: builder.build(),
            gold,
            classes,
            textbook,
            config: self.config.clone(),
        }
    }

    /// Rebuilds this dataset with attribute-typed claims, the shape the
    /// per-attribute resolvers consume: every existing author-list
    /// statement is typed `authors`, and each book gains conflicting
    /// `pages` (candidate page counts) and `published` (candidate
    /// publication dates) statements claimed by the same sources — the
    /// three attribute names `DataFusionStrategy::standard` routes.
    ///
    /// Attribute data is strictly opt-in: the plain [`generate`] output is
    /// byte-identical to what it was before attributes existed, and this
    /// rebuild is deterministic in `seed`.
    pub fn with_attributes(&self, seed: u64) -> GeneratedBooks {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = DatasetBuilder::new();
        for s in self.dataset.sources() {
            builder.add_source(s.name.clone());
        }
        let n_sources = self.dataset.sources().len();
        let mut gold = Vec::new();
        let mut classes = Vec::new();
        // analyze: allow(hash-iter) — keyed lookup only (old id → new id);
        // iteration never happens, so order cannot leak.
        let mut stmt_map = std::collections::HashMap::new();
        let mut typed_claims: Vec<(crowdfusion_fusion::SourceId, StatementId)> = Vec::new();
        for old_e in self.dataset.entities() {
            let new_e = builder.add_entity(old_e.name.clone());
            for &old_s in &old_e.statements {
                let new_s = builder
                    .add_attributed_statement(
                        new_e,
                        "authors",
                        self.dataset.statement_text(old_s).to_string(),
                    )
                    .expect("entity exists");
                stmt_map.insert(old_s, new_s);
                gold.push(self.gold[old_s.0 as usize]);
                classes.push(self.classes[old_s.0 as usize]);
            }
            // Conflicting page counts: the true count plus an off-by-a-few
            // variant and a gross outlier.
            let pages = rng.gen_range(80usize..600);
            let near = pages + rng.gen_range(1usize..10);
            let page_candidates = [(pages, true), (near, false), (pages * 3, false)];
            let mut typed: Vec<(StatementId, bool)> = Vec::new();
            for (value, truth) in page_candidates {
                let id = builder
                    .add_attributed_statement(new_e, "pages", format!("{value}"))
                    .expect("entity exists");
                gold.push(truth);
                classes.push(TaskClass::Clean);
                typed.push((id, truth));
            }
            // Conflicting publication dates: the true date against a stale
            // earlier edition's.
            let year = rng.gen_range(1985u32..2015);
            let month = rng.gen_range(1u32..=12);
            let day = rng.gen_range(1u32..=28);
            let stale_year = year - rng.gen_range(1u32..8);
            for (y, truth) in [(year, true), (stale_year, false)] {
                let id = builder
                    .add_attributed_statement(
                        new_e,
                        "published",
                        format!("{y:04}-{month:02}-{day:02}"),
                    )
                    .expect("entity exists");
                gold.push(truth);
                classes.push(TaskClass::Clean);
                typed.push((id, truth));
            }
            // Sources back the typed statements with the same rough
            // reliability story as the author claims: mostly right.
            let truths: Vec<StatementId> =
                typed.iter().filter(|(_, t)| *t).map(|(s, _)| *s).collect();
            let lies: Vec<StatementId> =
                typed.iter().filter(|(_, t)| !*t).map(|(s, _)| *s).collect();
            for sid in 0..n_sources {
                if rng.gen::<f64>() >= self.config.participation {
                    continue;
                }
                let pool = if rng.gen::<f64>() < 0.65 {
                    &truths
                } else {
                    &lies
                };
                let choice = pool[rng.gen_range(0..pool.len())];
                typed_claims.push((crowdfusion_fusion::SourceId(sid as u32), choice));
            }
        }
        for c in self.dataset.claims() {
            builder
                .add_claim(c.source, stmt_map[&c.statement])
                .expect("valid claim");
        }
        for (source, statement) in typed_claims {
            builder.add_claim(source, statement).expect("valid claim");
        }
        GeneratedBooks {
            dataset: builder.build(),
            gold,
            classes,
            textbook: self.textbook.clone(),
            config: self.config.clone(),
        }
    }

    /// The `count` books with the fewest statements (paper Figure 2 uses
    /// "40 books, which contains the least number of statements").
    pub fn smallest_books(&self, count: usize) -> Vec<EntityId> {
        let mut ids: Vec<EntityId> = self.dataset.entities().iter().map(|e| e.id).collect();
        ids.sort_by_key(|e| (self.dataset.statements_of(*e).len(), e.0));
        ids.truncate(count);
        ids
    }

    /// Sanity check: every author-list gold label matches author-set
    /// equivalence with the book's canonical true statement. Returns the
    /// number of checked statements (used by tests). Statements typed with
    /// a non-author attribute (see [`GeneratedBooks::with_attributes`])
    /// carry value gold, not list-equivalence gold, and are skipped.
    pub fn verify_gold_consistency(&self) -> usize {
        let is_author =
            |s: StatementId| matches!(self.dataset.statement_attribute(s), None | Some("authors"));
        let mut checked = 0;
        for entity in self.dataset.entities() {
            let stmts = entity.statements.as_slice();
            // The canonical truth is the gold-true statement with the
            // maximal author-set (all true variants share one author set).
            let Some(&truth) = stmts
                .iter()
                .find(|&&s| is_author(s) && self.gold[s.0 as usize])
            else {
                continue;
            };
            let truth_text = self.dataset.statement_text(truth).to_string();
            for &s in stmts {
                if !is_author(s) {
                    continue;
                }
                let equal = lists_equivalent(&truth_text, self.dataset.statement_text(s));
                assert_eq!(
                    equal,
                    self.gold[s.0 as usize],
                    "gold inconsistency for statement {:?} ({})",
                    s,
                    self.dataset.statement_text(s)
                );
                checked += 1;
            }
        }
        checked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(BookGenConfig::quick());
        let b = generate(BookGenConfig::quick());
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_output() {
        let a = generate(BookGenConfig::quick());
        let b = generate(BookGenConfig {
            seed: 43,
            ..BookGenConfig::quick()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn every_book_has_a_true_statement() {
        let g = generate(BookGenConfig::quick());
        for e in g.dataset.entities() {
            assert!(
                e.statements.iter().any(|s| g.gold[s.0 as usize]),
                "book {} has no true statement",
                e.name
            );
        }
    }

    #[test]
    fn gold_labels_agree_with_text_equivalence() {
        let g = generate(BookGenConfig::quick());
        let checked = g.verify_gold_consistency();
        assert!(checked > 0);
    }

    #[test]
    fn raw_claim_true_rate_near_half() {
        let g = generate(BookGenConfig::default());
        let rate = g.raw_claim_true_rate();
        // Paper: "only around 50% of Web data facts is correct".
        assert!(
            (0.35..=0.65).contains(&rate),
            "raw claim true rate {rate} too far from 0.5"
        );
    }

    #[test]
    fn statement_counts_respect_config() {
        let cfg = BookGenConfig::quick();
        let g = generate(cfg.clone());
        for e in g.dataset.entities() {
            assert!(e.statements.len() <= cfg.statements_per_book.1);
            assert!(!e.statements.is_empty());
        }
        assert_eq!(g.dataset.entities().len(), cfg.n_books);
        assert_eq!(g.dataset.sources().len(), cfg.n_sources + cfg.n_specialists);
        assert_eq!(g.gold.len(), g.dataset.statements().len());
        assert_eq!(g.classes.len(), g.dataset.statements().len());
    }

    #[test]
    fn confusion_classes_present() {
        let g = generate(BookGenConfig::default());
        let count = |class: TaskClass| g.classes.iter().filter(|&&c| c == class).count();
        assert!(count(TaskClass::Clean) > 0);
        assert!(count(TaskClass::Misspelling) > 0);
        assert!(count(TaskClass::AdditionalInfo) > 0);
        assert!(count(TaskClass::WrongOrder) > 0);
    }

    #[test]
    fn wrong_order_statements_are_true_misspellings_false() {
        let g = generate(BookGenConfig::default());
        for (i, class) in g.classes.iter().enumerate() {
            match class {
                TaskClass::WrongOrder => assert!(g.gold[i], "wrong-order must be true"),
                TaskClass::Misspelling | TaskClass::AdditionalInfo => {
                    assert!(!g.gold[i], "{class:?} must be false")
                }
                TaskClass::Clean => {}
            }
        }
    }

    #[test]
    fn large_books_hit_the_exact_statement_count() {
        // The n = 32–40 correlated-fact scenario behind the sparse
        // answer-table workloads: exact sizes, deterministic, and with
        // genuine shared-author correlation groups (the true variants
        // always share one group).
        for n in [32usize, 40] {
            let cfg = BookGenConfig {
                n_books: 2,
                seed: 7,
                ..BookGenConfig::large(n)
            };
            let g = generate(cfg);
            assert_eq!(g.dataset.entities().len(), 2);
            for e in g.dataset.entities() {
                assert_eq!(
                    e.statements.len(),
                    n,
                    "book {} missed the target size",
                    e.name
                );
                let groups = g.correlation_groups(e.id);
                assert!(
                    groups.len() >= 2,
                    "book {} has no conflicting author sets",
                    e.name
                );
                // At least one multi-member group: the shared-author
                // format variants that drive the correlated prior must
                // actually be present, not just singleton conflicts.
                assert!(
                    groups.iter().any(|grp| grp.len() >= 2),
                    "book {} has only singleton correlation groups",
                    e.name
                );
            }
            g.verify_gold_consistency();
        }
    }

    #[test]
    fn correlation_groups_partition_statements() {
        let g = generate(BookGenConfig::quick());
        for e in g.dataset.entities() {
            let groups = g.correlation_groups(e.id);
            let mut seen = std::collections::HashSet::new();
            for group in &groups {
                for &idx in group {
                    assert!(idx < e.statements.len());
                    assert!(seen.insert(idx), "index {idx} in two groups");
                }
            }
            assert_eq!(seen.len(), e.statements.len());
            // All gold-true statements are equivalent, hence in one group.
            let gold = g.gold_for(e.id);
            let true_group: Vec<usize> = (0..gold.len()).filter(|&i| gold[i]).collect();
            if true_group.len() > 1 {
                let holder = groups
                    .iter()
                    .find(|grp| grp.contains(&true_group[0]))
                    .unwrap();
                for idx in &true_group {
                    assert!(holder.contains(idx), "true variants split across groups");
                }
            }
        }
    }

    #[test]
    fn select_books_remaps_consistently() {
        let g = generate(BookGenConfig::quick());
        let keep = g.smallest_books(4);
        assert_eq!(keep.len(), 4);
        let sub = g.select_books(&keep);
        assert_eq!(sub.dataset.entities().len(), 4);
        assert_eq!(sub.gold.len(), sub.dataset.statements().len());
        sub.verify_gold_consistency();
        // Books sorted by size: first selected book is the smallest.
        let sizes: Vec<usize> = keep
            .iter()
            .map(|e| g.dataset.statements_of(*e).len())
            .collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sizes, sorted);
    }

    #[test]
    fn with_attributes_types_every_statement_and_stays_deterministic() {
        let g = generate(BookGenConfig::quick());
        let a = g.with_attributes(9);
        assert_eq!(a, g.with_attributes(9), "attribute rebuild must be pure");
        assert_ne!(a, g.with_attributes(10));
        // Every statement is typed; every book carries all three routed
        // attributes, and array lengths stay parallel.
        assert_eq!(a.gold.len(), a.dataset.statements().len());
        assert_eq!(a.classes.len(), a.dataset.statements().len());
        for e in a.dataset.entities() {
            let mut attrs = std::collections::BTreeSet::new();
            for &s in &e.statements {
                attrs.insert(a.dataset.statement_attribute(s).expect("statement typed"));
            }
            assert_eq!(
                attrs.into_iter().collect::<Vec<_>>(),
                vec!["authors", "pages", "published"]
            );
            // Exactly one gold-true page count and one gold-true date.
            for attr in ["pages", "published"] {
                let truths = e
                    .statements
                    .iter()
                    .filter(|&&s| {
                        a.dataset.statement_attribute(s) == Some(attr) && a.gold[s.0 as usize]
                    })
                    .count();
                assert_eq!(truths, 1, "{attr} of {} has {truths} truths", e.name);
            }
        }
        // The author statements carried over in order with their labels.
        a.verify_gold_consistency();
        // Typed data is what the composite consumes end to end.
        use crowdfusion_fusion::FusionMethod;
        let r = crowdfusion_fusion::DataFusionStrategy::standard()
            .fuse(&a.dataset)
            .unwrap();
        assert_eq!(r.probs().len(), a.dataset.statements().len());
    }

    #[test]
    fn specialists_are_unreliable_outside_their_domain() {
        // With many books the specialist's textbook/non-textbook claim
        // accuracies should straddle the configured split.
        let cfg = BookGenConfig {
            n_books: 300,
            participation: 1.0,
            ..BookGenConfig::default()
        };
        let g = generate(cfg.clone());
        let specialist = crowdfusion_fusion::SourceId(cfg.n_sources as u32);
        let mut text_ok = 0usize;
        let mut text_all = 0usize;
        let mut other_ok = 0usize;
        let mut other_all = 0usize;
        for c in g.dataset.claims() {
            if c.source != specialist {
                continue;
            }
            let e = g.dataset.statement_entity(c.statement);
            let correct = g.gold[c.statement.0 as usize];
            if g.textbook[e.0 as usize] {
                text_all += 1;
                text_ok += correct as usize;
            } else {
                other_all += 1;
                other_ok += correct as usize;
            }
        }
        assert!(text_all > 0 && other_all > 0);
        let text_rate = text_ok as f64 / text_all as f64;
        let other_rate = other_ok as f64 / other_all as f64;
        assert!(
            text_rate > other_rate + 0.2,
            "specialist rates: textbook {text_rate} vs other {other_rate}"
        );
    }
}
