//! Long-lived refinement sessions: the resumable state machine behind
//! `crowdfusion-serve`.
//!
//! The offline experiment runners ([`crate::system::Experiment`]) drive the
//! select–collect–update cycle in a closed loop: every round's answers come
//! back in one synchronous `publish` round trip. A *service* cannot assume
//! that — crowd answers stream in **incrementally and out of order**:
//! partial batches, late answers for rounds that already closed, duplicate
//! deliveries. [`SessionState`] therefore splits the PR 4
//! `EntityState::prepare`/`absorb` cycle into a resumable state machine:
//!
//! * [`SessionState::select`] runs the *select* phase (the shared
//!   [`crate::round`] `prepare_round` path, so selections are bit-identical
//!   to the offline drivers) and leaves the round **open**;
//! * [`SessionState::absorb`] ingests any subset of the open round's
//!   answers in any order, rejecting duplicates and stale ids; once the
//!   last answer lands, the round closes with one
//!   [`posterior_in_place`] merge over the judgments *in selection order* —
//!   which is why any arrival order yields a bit-identical posterior;
//! * [`SessionState::snapshot`]/[`SessionState::from_snapshot`] serialise
//!   the whole machine — posterior, budget ledger, selector RNG state, the
//!   open round's partial answers — so a daemon can restart mid-round
//!   without losing a single judgment.
//!
//! [`SessionRegistry`] manages many concurrent sessions over one worker
//! [`Pool`] (priors are built on the pool at `open` time) and derives each
//! session's RNG streams from a master seed exactly like
//! [`crate::system::Experiment::run_sharded`] derives its per-entity
//! streams — so a registry opened with the entities of an offline
//! experiment, in order, and fed the seeded crowd's answers reproduces the
//! offline trace bit for bit (see `crates/service/tests`).

use crate::answers::posterior_in_place;
use crate::error::CoreError;
use crate::metrics::ConfusionCounts;
use crate::pool::Pool;
use crate::prior::default_grouped_prior;
use crate::round::{prepare_round, EntityCase, RoundConfig, RoundPoint};
use crate::selection::TaskSelector;
use crate::system::{assemble_trace, EntitySeries, ExperimentTrace, RoundQuality};
use crowdfusion_crowd::TaskClass;
use crowdfusion_jointdist::{Assignment, JointDist};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An entity as it crosses the wire into the service: per-fact fusion
/// marginals plus correlation groups (the inputs of
/// [`default_grouped_prior`]), crowd-facing metadata, and the hidden gold
/// truth that drives the (simulated) crowd and the F1 bookkeeping.
///
/// The offline pipeline builds [`EntityCase`]s through exactly this type
/// (`crowdfusion::pipeline` → `datagen::export::wire_entities` →
/// [`EntitySpec::into_case`]), so a served entity and an offline entity
/// with the same spec carry bit-identical priors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntitySpec {
    /// Display name (book title, country name, …).
    pub name: String,
    /// Per-fact machine-fusion marginals `P(f_i = true)`.
    pub marginals: Vec<f64>,
    /// Correlation groups of format-variant statements (see
    /// [`crate::prior::grouped_prior`]).
    pub groups: Vec<Vec<usize>>,
    /// Per-fact crowd prompts; empty means generic defaults.
    pub prompts: Vec<String>,
    /// Per-fact confusion classes; empty means all clean.
    pub classes: Vec<TaskClass>,
    /// Per-fact gold labels.
    pub gold: Vec<bool>,
    /// Name of the fusion method that produced `marginals`, when the
    /// producer recorded one. Carried as provenance through snapshots and
    /// journal replay; `None` (how specs serialized before this field
    /// existed deserialize) means the daemon's default method.
    pub method: Option<String>,
}

impl EntitySpec {
    /// A minimal spec with generic prompts and clean classes.
    pub fn simple(name: impl Into<String>, marginals: Vec<f64>, gold: Vec<bool>) -> EntitySpec {
        EntitySpec {
            name: name.into(),
            marginals,
            groups: Vec::new(),
            prompts: Vec::new(),
            classes: Vec::new(),
            gold,
            method: None,
        }
    }

    /// Validates internal consistency (parallel array lengths).
    pub fn validate(&self) -> Result<(), CoreError> {
        let n = self.marginals.len();
        let ok = |len: usize| len == n || len == 0;
        if self.gold.len() != n || !ok(self.prompts.len()) || !ok(self.classes.len()) {
            return Err(CoreError::AnswerLengthMismatch {
                tasks: n,
                answers: self.gold.len().min(self.prompts.len()),
            });
        }
        for group in &self.groups {
            for &idx in group {
                if idx >= n {
                    return Err(CoreError::TaskOutOfRange { index: idx, n });
                }
            }
        }
        Ok(())
    }

    /// Materialises the spec into an [`EntityCase`]: the prior is built
    /// with [`default_grouped_prior`] (dense up to the fact limit, sparse
    /// importance sampling beyond), gold labels are packed into an
    /// [`Assignment`], and missing prompts/classes get the
    /// [`EntityCase::simple`] defaults.
    pub fn into_case(self) -> Result<EntityCase, CoreError> {
        self.validate()?;
        let n = self.marginals.len();
        let prior = default_grouped_prior(&self.marginals, &self.groups)?;
        let mut gold = Assignment::ALL_FALSE;
        for (i, &truth) in self.gold.iter().enumerate() {
            gold = gold.with(i, truth);
        }
        let name = self.name;
        let prompts = if self.prompts.is_empty() {
            (0..n)
                .map(|i| format!("Is fact {i} of \"{name}\" true?"))
                .collect()
        } else {
            self.prompts
        };
        let classes = if self.classes.is_empty() {
            vec![TaskClass::Clean; n]
        } else {
            self.classes
        };
        Ok(EntityCase {
            name,
            prior,
            gold,
            prompts,
            classes,
        })
    }
}

/// One published (crowd-facing) task of an open round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedTask {
    /// Globally unique task id (the absorb key).
    pub id: u64,
    /// The fact index this task asks about.
    pub fact: usize,
    /// The crowd prompt.
    pub prompt: String,
    /// The task's confusion class.
    pub class: TaskClass,
}

/// A round that has been selected and published but not yet fully
/// answered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedRound {
    /// The 1-based round number this round will close as.
    pub round: usize,
    /// The published tasks, in selection order.
    pub tasks: Vec<PublishedTask>,
}

/// The outcome of [`SessionState::select`].
#[derive(Debug, Clone, PartialEq)]
pub enum SelectOutcome {
    /// A round is open (freshly selected, or re-fetched while answers are
    /// still outstanding).
    Round(PublishedRound),
    /// The budget is exhausted or the selector stopped (`K* = 0`); no
    /// further rounds will open.
    Exhausted,
}

/// The open round's ingestion state: selected facts, published ids and the
/// answers received so far (slot `j` belongs to the `j`-th selected task).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenRound {
    tasks: Vec<usize>,
    ids: Vec<u64>,
    received: Vec<Option<bool>>,
}

impl OpenRound {
    /// Number of still-unanswered tasks.
    pub fn pending(&self) -> usize {
        self.received.iter().filter(|r| r.is_none()).count()
    }

    fn validate(&self, n: usize) -> Result<(), CoreError> {
        if self.tasks.len() != self.ids.len() || self.tasks.len() != self.received.len() {
            return Err(CoreError::AnswerLengthMismatch {
                tasks: self.tasks.len(),
                answers: self.ids.len().min(self.received.len()),
            });
        }
        if let Some(&bad) = self.tasks.iter().find(|&&f| f >= n) {
            return Err(CoreError::TaskOutOfRange { index: bad, n });
        }
        Ok(())
    }
}

/// The result of one [`SessionState::absorb`] call.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbsorbReport {
    /// Answers applied to the open round.
    pub accepted: usize,
    /// Answers rejected as duplicates (already answered, repeated within
    /// the batch, or late arrivals for a round that already closed).
    pub duplicates: usize,
    /// Open-round answers still outstanding after this call.
    pub pending: usize,
    /// The closed round's record, when this call completed the round.
    pub closed: Option<RoundPoint>,
}

/// A serialisable snapshot of a [`SessionState`] — everything needed to
/// resume the session after a daemon restart, including the selector RNG
/// state and the open round's partial answers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// The entity under refinement.
    pub case: EntityCase,
    /// Round configuration.
    pub config: RoundConfig,
    /// Current posterior.
    pub dist: JointDist,
    /// Remaining budget in judgments.
    pub remaining: usize,
    /// Rounds closed so far.
    pub round: usize,
    /// Judgments spent so far.
    pub spent: usize,
    /// Raw selector RNG state ([`StdRng::state`]).
    pub rng_state: [u64; 4],
    /// Next task id to publish.
    pub task_seq: u64,
    /// First task id this session ever published (stale-answer floor).
    pub first_task_id: u64,
    /// The open round, if one is mid-flight.
    pub open: Option<OpenRound>,
    /// Per-round quality series (trace assembly input).
    pub series: EntitySeries,
    /// Full per-round records (tasks + answers).
    pub points: Vec<RoundPoint>,
    /// Whether the session has permanently stopped selecting.
    pub exhausted: bool,
}

/// The entity's confusion counts at the current posterior.
fn counts_against_gold(dist: &JointDist, gold: Assignment) -> ConfusionCounts {
    let mut counts = ConfusionCounts::default();
    counts.add_marginals(&dist.marginals(), gold);
    counts
}

/// One long-lived refinement session: an owned entity, its posterior, the
/// budget ledger and the resumable round state machine.
#[derive(Debug, Clone)]
pub struct SessionState {
    case: EntityCase,
    config: RoundConfig,
    dist: JointDist,
    remaining: usize,
    round: usize,
    spent: usize,
    rng: StdRng,
    task_seq: u64,
    first_task_id: u64,
    open: Option<OpenRound>,
    series: EntitySeries,
    points: Vec<RoundPoint>,
    exhausted: bool,
}

impl SessionState {
    /// Opens a session: `selector_seed` seeds the selector RNG stream and
    /// `task_seq_base` is the first task id — pass the same values the
    /// offline sharded runner derives for the entity (stream seed from the
    /// master RNG, ids from the block `(index << 32)..`) and the session
    /// will select bit-identical rounds.
    pub fn new(
        case: EntityCase,
        config: RoundConfig,
        selector_seed: u64,
        task_seq_base: u64,
    ) -> Result<SessionState, CoreError> {
        case.validate()?;
        let dist = case.prior.clone();
        let series = EntitySeries {
            prior_utility: dist.utility(),
            prior_counts: counts_against_gold(&dist, case.gold),
            rounds: Vec::new(),
        };
        Ok(SessionState {
            case,
            config,
            dist,
            remaining: config.budget,
            round: 0,
            spent: 0,
            rng: StdRng::seed_from_u64(selector_seed),
            task_seq: task_seq_base,
            first_task_id: task_seq_base,
            open: None,
            series,
            points: Vec::new(),
            exhausted: false,
        })
    }

    /// The *select* phase: opens the next round under the session budget,
    /// or re-fetches the currently open round (so a client that lost the
    /// response can ask again without burning budget or RNG state).
    pub fn select(&mut self, selector: &dyn TaskSelector) -> Result<SelectOutcome, CoreError> {
        self.select_capped(selector, None)
    }

    /// [`select`](Self::select) with an external task cap: the round's
    /// size is bounded by `min(k, remaining, cap)`. The global budget
    /// scheduler uses this to stop a round from overspending the shared
    /// ledger. A zero cap is a caller error (`EmptyTaskSet`) rather than
    /// session exhaustion — the session itself may still have budget, the
    /// *scheduler* ran out, and marking the session exhausted would
    /// corrupt its budget identity. Re-fetching an open round ignores the
    /// cap (the round's judgments are already charged).
    pub fn select_capped(
        &mut self,
        selector: &dyn TaskSelector,
        cap: Option<usize>,
    ) -> Result<SelectOutcome, CoreError> {
        if let Some(open) = &self.open {
            let tasks = open
                .tasks
                .iter()
                .zip(&open.ids)
                .map(|(&fact, &id)| PublishedTask {
                    id,
                    fact,
                    prompt: self.case.prompts[fact].clone(),
                    class: self.case.classes[fact],
                })
                .collect();
            return Ok(SelectOutcome::Round(PublishedRound {
                round: self.round + 1,
                tasks,
            }));
        }
        if self.exhausted {
            return Ok(SelectOutcome::Exhausted);
        }
        let limit = match cap {
            Some(0) => return Err(CoreError::EmptyTaskSet),
            Some(cap) => self.remaining.min(cap),
            None => self.remaining,
        };
        let rng: &mut dyn RngCore = &mut self.rng;
        let Some(pending) = prepare_round(
            &self.case,
            self.config,
            &self.dist,
            limit,
            selector,
            rng,
            &mut self.task_seq,
        )?
        else {
            self.exhausted = true;
            self.remaining = 0;
            return Ok(SelectOutcome::Exhausted);
        };
        let tasks: Vec<PublishedTask> = pending
            .tasks
            .iter()
            .zip(&pending.crowd_tasks)
            .map(|(&fact, task)| PublishedTask {
                id: task.id.0,
                fact,
                prompt: task.prompt.clone(),
                class: task.class,
            })
            .collect();
        self.open = Some(OpenRound {
            ids: tasks.iter().map(|t| t.id).collect(),
            tasks: pending.tasks,
            received: vec![None; tasks.len()],
        });
        Ok(SelectOutcome::Round(PublishedRound {
            round: self.round + 1,
            tasks,
        }))
    }

    /// The *update* phase, resumable: ingests `(task id, judgment)` pairs
    /// in any order and any batching. Duplicates (slots already answered,
    /// repeats within the batch) and late answers for closed rounds are
    /// counted and dropped — first answer wins; ids this session never
    /// published are a hard error and leave the state untouched. When the
    /// open round's last answer lands the round closes: the judgments are
    /// merged **in selection order** through the same
    /// [`posterior_in_place`] path the offline drivers use, so the
    /// posterior is bit-identical for every arrival order.
    pub fn absorb(&mut self, answers: &[(u64, bool)]) -> Result<AbsorbReport, CoreError> {
        if self.open.is_none() && self.round == 0 {
            return Err(CoreError::NoOpenRound);
        }
        // Validate every id before mutating anything: an unknown id fails
        // the whole batch with no answer applied.
        for &(id, _) in answers {
            if id < self.first_task_id || id >= self.task_seq {
                return Err(CoreError::UnknownAnswerTask { task: id });
            }
        }
        let mut accepted = 0usize;
        let mut duplicates = 0usize;
        if let Some(open) = self.open.as_mut() {
            for &(id, value) in answers {
                match open.ids.iter().position(|&i| i == id) {
                    Some(j) if open.received[j].is_none() => {
                        open.received[j] = Some(value);
                        accepted += 1;
                    }
                    // Already answered, or a late answer for a closed
                    // round: dropped, first answer wins.
                    _ => duplicates += 1,
                }
            }
        } else {
            duplicates = answers.len();
        }
        let pending = self.open.as_ref().map_or(0, OpenRound::pending);
        let closed = if self.open.is_some() && pending == 0 {
            let open = self.open.take().expect("open round checked above");
            let judgments: Vec<bool> = open
                .received
                .iter()
                .map(|r| r.expect("round complete"))
                .collect();
            posterior_in_place(
                &mut self.dist,
                &open.tasks,
                &judgments,
                self.config.pc_assumed,
            )?;
            self.remaining -= open.tasks.len();
            self.spent += open.tasks.len();
            self.round += 1;
            let point = RoundPoint {
                round: self.round,
                cost: self.spent,
                utility: self.dist.utility(),
                tasks: open.tasks,
                answers: judgments,
            };
            self.series.rounds.push(RoundQuality {
                cost_delta: point.tasks.len() as u64,
                utility: point.utility,
                counts: counts_against_gold(&self.dist, self.case.gold),
            });
            self.points.push(point.clone());
            Some(point)
        } else {
            None
        };
        Ok(AbsorbReport {
            accepted,
            duplicates,
            pending,
            closed,
        })
    }

    /// Serialises the full session state.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            case: self.case.clone(),
            config: self.config,
            dist: self.dist.clone(),
            remaining: self.remaining,
            round: self.round,
            spent: self.spent,
            rng_state: self.rng.state(),
            task_seq: self.task_seq,
            first_task_id: self.first_task_id,
            open: self.open.clone(),
            series: self.series.clone(),
            points: self.points.clone(),
            exhausted: self.exhausted,
        }
    }

    /// Rebuilds a session from a snapshot; the restored machine continues
    /// the exact RNG stream and open round of the snapshotted one.
    ///
    /// Snapshots cross a trust boundary (`Restore` takes a file path), so
    /// the budget invariants are re-validated: a corrupt or hand-edited
    /// snapshot must not restore into a state whose round close would
    /// underflow the budget arithmetic.
    pub fn from_snapshot(snap: SessionSnapshot) -> Result<SessionState, CoreError> {
        snap.case.validate()?;
        if let Some(open) = &snap.open {
            open.validate(snap.case.num_facts())?;
        }
        let invalid = |reason: String| Err(CoreError::InvalidSnapshot(reason));
        if snap.spent.checked_add(snap.remaining) != Some(snap.config.budget)
            && !(snap.exhausted && snap.remaining == 0 && snap.spent <= snap.config.budget)
        {
            return invalid(format!(
                "spent {} + remaining {} does not match budget {}",
                snap.spent, snap.remaining, snap.config.budget
            ));
        }
        if let Some(open) = &snap.open {
            if open.tasks.len() > snap.remaining {
                return invalid(format!(
                    "open round asks {} tasks but only {} budget remains",
                    open.tasks.len(),
                    snap.remaining
                ));
            }
            // Every published id must be answerable: outside the issued
            // range, `absorb` would reject it forever and the round could
            // never close (a silent livelock instead of a loud error).
            for &id in &open.ids {
                if id < snap.first_task_id || id >= snap.task_seq {
                    return invalid(format!(
                        "open round id {id} outside the issued range {}..{}",
                        snap.first_task_id, snap.task_seq
                    ));
                }
            }
        }
        if snap.first_task_id > snap.task_seq {
            return invalid(format!(
                "task id floor {} above next task id {}",
                snap.first_task_id, snap.task_seq
            ));
        }
        Ok(SessionState {
            rng: StdRng::from_state(snap.rng_state),
            case: snap.case,
            config: snap.config,
            dist: snap.dist,
            remaining: snap.remaining,
            round: snap.round,
            spent: snap.spent,
            task_seq: snap.task_seq,
            first_task_id: snap.first_task_id,
            open: snap.open,
            series: snap.series,
            points: snap.points,
            exhausted: snap.exhausted,
        })
    }

    /// Entity name.
    pub fn name(&self) -> &str {
        &self.case.name
    }

    /// Number of facts under refinement.
    pub fn num_facts(&self) -> usize {
        self.case.num_facts()
    }

    /// Current posterior utility `Q(F)`.
    pub fn utility(&self) -> f64 {
        self.dist.utility()
    }

    /// Current posterior entropy in bits.
    pub fn entropy(&self) -> f64 {
        self.dist.entropy()
    }

    /// Rounds closed so far.
    pub fn rounds(&self) -> usize {
        self.round
    }

    /// Judgments spent so far.
    pub fn spent(&self) -> usize {
        self.spent
    }

    /// Judgments left in the budget.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Answers outstanding on the open round (0 when no round is open).
    pub fn pending_answers(&self) -> usize {
        self.open.as_ref().map_or(0, OpenRound::pending)
    }

    /// Tasks published on the open round (0 when no round is open) — the
    /// judgments a global budget ledger has charged for it.
    pub fn open_round_tasks(&self) -> usize {
        self.open.as_ref().map_or(0, |o| o.tasks.len())
    }

    /// The crowd accuracy this session plans and updates with.
    pub fn pc_assumed(&self) -> f64 {
        self.config.pc_assumed
    }

    /// Whether a round is currently open.
    pub fn has_open_round(&self) -> bool {
        self.open.is_some()
    }

    /// Whether the session stopped selecting for good.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// The current posterior.
    pub fn posterior(&self) -> &JointDist {
        &self.dist
    }

    /// Per-round records (tasks, answers, utility) in round order.
    pub fn points(&self) -> &[RoundPoint] {
        &self.points
    }

    /// The per-round quality series (trace assembly input).
    pub fn series(&self) -> &EntitySeries {
        &self.series
    }
}

/// Summary of a freshly opened session, echoed to the client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenedSession {
    /// The registry-assigned session id.
    pub session: u64,
    /// Entity name.
    pub name: String,
    /// Number of facts.
    pub facts: usize,
    /// The crowd answer-stream seed paired with this session. A simulated
    /// crowd replaying this seed (see `crowdfusion_crowd::AnswerReplay`)
    /// answers exactly like the offline sharded runner's per-entity
    /// stream.
    pub answer_seed: u64,
    /// Prior utility.
    pub utility: f64,
    /// Prior entropy in bits.
    pub entropy: f64,
}

/// Aggregate registry metrics (the service's `metrics` verb).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegistryMetrics {
    /// Live sessions.
    pub sessions: u64,
    /// Sessions with an open (partially answered) round.
    pub open_rounds: u64,
    /// Total rounds closed across sessions.
    pub rounds: u64,
    /// Total judgments absorbed across sessions.
    pub judgments: u64,
    /// Total budget remaining across sessions.
    pub remaining: u64,
    /// Summed posterior utility.
    pub utility: f64,
}

/// A serialisable snapshot of the whole registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Master RNG state (future opens continue the same seed schedule).
    pub master_state: [u64; 4],
    /// Next session index.
    pub next_index: u64,
    /// Default round configuration.
    pub defaults: RoundConfig,
    /// Numbered session snapshots.
    pub sessions: Vec<NumberedSnapshot>,
}

/// One session's snapshot together with its registry id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumberedSnapshot {
    /// Registry session id.
    pub session: u64,
    /// The session's state.
    pub snapshot: SessionSnapshot,
}

/// A registry of concurrent refinement sessions sharing one worker pool.
///
/// Stream derivation mirrors [`crate::system::Experiment::run_sharded`]:
/// each opened session draws `(answer_seed, selector_seed)` from the
/// master RNG in open order and publishes task ids from the disjoint block
/// `(session_index << 32)..`. A fresh registry seeded like an offline run
/// and opened with the run's entities in order therefore reproduces the
/// offline experiment exactly.
pub struct SessionRegistry {
    pool: Pool,
    master: StdRng,
    defaults: RoundConfig,
    sessions: BTreeMap<u64, SessionState>,
    next_index: u64,
}

impl SessionRegistry {
    /// Creates a registry with the given master seed, per-session default
    /// config and worker pool.
    pub fn new(seed: u64, defaults: RoundConfig, pool: Pool) -> SessionRegistry {
        SessionRegistry {
            pool,
            master: StdRng::seed_from_u64(seed),
            defaults,
            sessions: BTreeMap::new(),
            next_index: 0,
        }
    }

    /// The registry's worker pool.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The default round configuration.
    pub fn defaults(&self) -> RoundConfig {
        self.defaults
    }

    /// Opens one session per spec: priors are built **in parallel on the
    /// pool**, then sessions are registered in spec order with seeds drawn
    /// from the master RNG. Atomic: a spec that fails to build fails the
    /// whole call with no session opened and no seed drawn.
    pub fn open_batch(
        &mut self,
        specs: Vec<EntitySpec>,
        config: Option<RoundConfig>,
    ) -> Result<Vec<OpenedSession>, CoreError> {
        for spec in &specs {
            spec.validate()?;
        }
        let config = config.unwrap_or(self.defaults);
        let cases: Result<Vec<EntityCase>, CoreError> = self.pool.map_reduce(
            specs.len(),
            |i| specs[i].clone().into_case(),
            Ok(Vec::with_capacity(specs.len())),
            |acc: Result<Vec<EntityCase>, CoreError>, case| {
                let mut acc = acc?;
                acc.push(case?);
                Ok(acc)
            },
        );
        let cases = cases?;
        let mut opened = Vec::with_capacity(cases.len());
        for case in cases {
            let answer_seed = self.master.next_u64();
            let selector_seed = self.master.next_u64();
            let id = self.next_index;
            self.next_index += 1;
            let state = SessionState::new(case, config, selector_seed, id << 32)?;
            opened.push(OpenedSession {
                session: id,
                name: state.name().to_string(),
                facts: state.num_facts(),
                answer_seed,
                utility: state.utility(),
                entropy: state.entropy(),
            });
            self.sessions.insert(id, state);
        }
        Ok(opened)
    }

    /// Looks a session up.
    pub fn get(&self, session: u64) -> Result<&SessionState, CoreError> {
        self.sessions
            .get(&session)
            .ok_or(CoreError::UnknownSession { session })
    }

    /// Mutable session lookup.
    pub fn get_mut(&mut self, session: u64) -> Result<&mut SessionState, CoreError> {
        self.sessions
            .get_mut(&session)
            .ok_or(CoreError::UnknownSession { session })
    }

    /// Runs the *select* phase on one session.
    pub fn select(
        &mut self,
        session: u64,
        selector: &dyn TaskSelector,
    ) -> Result<SelectOutcome, CoreError> {
        self.get_mut(session)?.select(selector)
    }

    /// Runs the *select* phase on one session under an external task cap
    /// (see [`SessionState::select_capped`]).
    pub fn select_capped(
        &mut self,
        session: u64,
        selector: &dyn TaskSelector,
        cap: Option<usize>,
    ) -> Result<SelectOutcome, CoreError> {
        self.get_mut(session)?.select_capped(selector, cap)
    }

    /// Ingests answers into one session.
    pub fn absorb(
        &mut self,
        session: u64,
        answers: &[(u64, bool)],
    ) -> Result<AbsorbReport, CoreError> {
        self.get_mut(session)?.absorb(answers)
    }

    /// Removes a session from the registry (TTL eviction / administrative
    /// drop), returning its final state for any closing bookkeeping. The
    /// master RNG is untouched: seeds already drawn stay drawn, so
    /// sessions opened after an eviction continue the same seed schedule
    /// as if the evicted session were still live.
    pub fn evict(&mut self, session: u64) -> Result<SessionState, CoreError> {
        self.sessions
            .remove(&session)
            .ok_or(CoreError::UnknownSession { session })
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Session ids in ascending order.
    pub fn ids(&self) -> Vec<u64> {
        self.sessions.keys().copied().collect()
    }

    /// Assembles the registry-wide quality-vs-cost trace over all sessions
    /// in id order — the same [`assemble_trace`] the offline runners use,
    /// so a registry that mirrors an offline experiment yields its exact
    /// [`ExperimentTrace`].
    pub fn trace(&self, selector: String) -> ExperimentTrace {
        let series: Vec<EntitySeries> =
            self.sessions.values().map(|s| s.series().clone()).collect();
        assemble_trace(&series, selector)
    }

    /// Aggregate metrics over all sessions.
    pub fn metrics(&self) -> RegistryMetrics {
        let mut m = RegistryMetrics {
            sessions: self.sessions.len() as u64,
            open_rounds: 0,
            rounds: 0,
            judgments: 0,
            remaining: 0,
            utility: 0.0,
        };
        for s in self.sessions.values() {
            m.open_rounds += u64::from(s.has_open_round());
            m.rounds += s.rounds() as u64;
            m.judgments += s.spent() as u64;
            m.remaining += s.remaining() as u64;
            m.utility += s.utility();
        }
        m
    }

    /// Serialises every session plus the master RNG state.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            master_state: self.master.state(),
            next_index: self.next_index,
            defaults: self.defaults,
            sessions: self
                .sessions
                .iter()
                .map(|(&session, state)| NumberedSnapshot {
                    session,
                    snapshot: state.snapshot(),
                })
                .collect(),
        }
    }

    /// Rebuilds a registry from a snapshot on the given pool.
    pub fn from_snapshot(snap: RegistrySnapshot, pool: Pool) -> Result<SessionRegistry, CoreError> {
        let mut sessions = BTreeMap::new();
        for numbered in snap.sessions {
            sessions.insert(
                numbered.session,
                SessionState::from_snapshot(numbered.snapshot)?,
            );
        }
        Ok(SessionRegistry {
            pool,
            master: StdRng::from_state(snap.master_state),
            defaults: snap.defaults,
            sessions,
            next_index: snap.next_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{GreedySelector, RandomSelector};
    use crowdfusion_jointdist::presets::paper_running_example;

    fn example_spec() -> EntitySpec {
        // The running example's marginals with no correlation groups: the
        // independent prior is what `default_grouped_prior` builds from an
        // empty group list.
        EntitySpec::simple(
            "hk",
            vec![0.5, 0.6, 0.7, 0.3],
            vec![true, true, true, false],
        )
    }

    fn session(k: usize, budget: usize) -> SessionState {
        let case = EntityCase::simple(
            "hk",
            paper_running_example(),
            crowdfusion_jointdist::Assignment(0b0111),
        );
        let config = RoundConfig::new(k, budget, 0.8).unwrap();
        SessionState::new(case, config, 7, 0).unwrap()
    }

    fn round_of(state: &mut SessionState) -> PublishedRound {
        match state.select(&GreedySelector::fast()).unwrap() {
            SelectOutcome::Round(r) => r,
            SelectOutcome::Exhausted => panic!("expected an open round"),
        }
    }

    #[test]
    fn spec_validation_and_defaults() {
        let mut bad = example_spec();
        bad.gold.pop();
        assert!(bad.validate().is_err());
        let mut bad = example_spec();
        bad.groups = vec![vec![0, 9]];
        assert!(bad.validate().is_err());
        let case = example_spec().into_case().unwrap();
        assert_eq!(case.num_facts(), 4);
        case.validate().unwrap();
        assert!(case.prompts[2].contains("fact 2"));
    }

    #[test]
    fn select_is_idempotent_until_answers_arrive() {
        let mut s = session(2, 8);
        let first = round_of(&mut s);
        assert_eq!(first.tasks.len(), 2);
        assert_eq!(first.round, 1);
        // Re-polling returns the identical round without advancing RNG or
        // budget.
        let again = round_of(&mut s);
        assert_eq!(first, again);
        assert_eq!(s.pending_answers(), 2);
        assert_eq!(s.spent(), 0);
    }

    #[test]
    fn out_of_order_partial_and_duplicate_absorption() {
        let mut s = session(3, 9);
        let round = round_of(&mut s);
        let ids: Vec<u64> = round.tasks.iter().map(|t| t.id).collect();
        // Last answer first: partial batch.
        let r = s.absorb(&[(ids[2], true)]).unwrap();
        assert_eq!((r.accepted, r.duplicates, r.pending), (1, 0, 2));
        assert!(r.closed.is_none());
        // Duplicate of the already-received answer plus a fresh one.
        let r = s.absorb(&[(ids[2], false), (ids[0], true)]).unwrap();
        assert_eq!((r.accepted, r.duplicates, r.pending), (1, 1, 1));
        // Final answer closes the round.
        let r = s.absorb(&[(ids[1], false)]).unwrap();
        assert_eq!(r.pending, 0);
        let point = r.closed.unwrap();
        assert_eq!(point.round, 1);
        assert_eq!(point.cost, 3);
        // First answer won: the duplicate's conflicting value was dropped.
        assert!(point.answers[2]);
        assert_eq!(s.rounds(), 1);
        assert_eq!(s.remaining(), 6);
        // A late answer for the closed round is a counted duplicate.
        let r = s.absorb(&[(ids[0], false)]).unwrap();
        assert_eq!((r.accepted, r.duplicates), (0, 1));
    }

    #[test]
    fn unknown_ids_fail_without_mutation() {
        let mut s = session(2, 8);
        assert_eq!(s.absorb(&[(0, true)]).unwrap_err(), CoreError::NoOpenRound);
        let round = round_of(&mut s);
        let ids: Vec<u64> = round.tasks.iter().map(|t| t.id).collect();
        // A batch with one unknown id applies nothing.
        assert!(matches!(
            s.absorb(&[(ids[0], true), (99, false)]),
            Err(CoreError::UnknownAnswerTask { task: 99 })
        ));
        assert_eq!(s.pending_answers(), 2);
    }

    #[test]
    fn any_arrival_order_matches_in_order_absorption() {
        let build = |order: &[usize]| {
            let mut s = session(3, 9);
            while let SelectOutcome::Round(round) = s.select(&GreedySelector::fast()).unwrap() {
                // Deterministic fake crowd: judgment = parity of the id.
                let answers: Vec<(u64, bool)> =
                    round.tasks.iter().map(|t| (t.id, t.id % 2 == 0)).collect();
                for &j in order {
                    if j < answers.len() {
                        s.absorb(&answers[j..j + 1]).unwrap();
                    }
                }
                // Feed any still-pending answers (orders shorter than the
                // round) and duplicate the whole batch for good measure.
                s.absorb(&answers).unwrap();
            }
            s
        };
        let reference = build(&[0, 1, 2]);
        for order in [&[2usize, 1, 0][..], &[1, 2, 0], &[2, 0], &[]] {
            let other = build(order);
            assert_eq!(reference.posterior(), other.posterior(), "order {order:?}");
            assert_eq!(reference.points(), other.points());
        }
    }

    #[test]
    fn snapshot_restore_mid_round_continues_identically() {
        let mut s = session(2, 8);
        let round = round_of(&mut s);
        let ids: Vec<u64> = round.tasks.iter().map(|t| t.id).collect();
        s.absorb(&[(ids[1], true)]).unwrap();
        // Snapshot with one answer outstanding; roundtrip through JSON.
        let json = serde_json::to_string(&s.snapshot()).unwrap();
        let snap: SessionSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = SessionState::from_snapshot(snap).unwrap();
        assert_eq!(restored.pending_answers(), 1);
        // Drive both to completion with the same answers.
        let finish = |state: &mut SessionState| {
            state.absorb(&[(ids[0], false)]).unwrap();
            while let SelectOutcome::Round(round) = state.select(&GreedySelector::fast()).unwrap() {
                let answers: Vec<(u64, bool)> =
                    round.tasks.iter().map(|t| (t.id, t.id % 2 == 1)).collect();
                state.absorb(&answers).unwrap();
            }
        };
        finish(&mut s);
        finish(&mut restored);
        assert_eq!(s.posterior(), restored.posterior());
        assert_eq!(s.points(), restored.points());
        assert_eq!(s.spent(), 8);
    }

    #[test]
    fn corrupt_snapshots_are_rejected_not_restored() {
        let mut s = session(2, 8);
        let round = round_of(&mut s);
        let good = s.snapshot();
        // Budget identity broken: remaining inflated.
        let mut snap = good.clone();
        snap.remaining = 9;
        assert!(matches!(
            SessionState::from_snapshot(snap),
            Err(CoreError::InvalidSnapshot(_))
        ));
        // Open round wider than the remaining budget: closing it would
        // underflow `remaining -= tasks.len()`.
        let mut snap = good.clone();
        snap.remaining = round.tasks.len() - 1;
        snap.spent = snap.config.budget - snap.remaining;
        assert!(matches!(
            SessionState::from_snapshot(snap),
            Err(CoreError::InvalidSnapshot(_))
        ));
        // Task-id bookkeeping inverted.
        let mut snap = good.clone();
        snap.first_task_id = snap.task_seq + 1;
        assert!(matches!(
            SessionState::from_snapshot(snap),
            Err(CoreError::InvalidSnapshot(_))
        ));
        // An open-round id outside the issued range could never be
        // answered: the round would be wedged open forever.
        let mut snap = good.clone();
        if let Some(open) = snap.open.as_mut() {
            open.ids[0] = snap.task_seq + 5;
        }
        assert!(matches!(
            SessionState::from_snapshot(snap),
            Err(CoreError::InvalidSnapshot(_))
        ));
        // The untouched snapshot still restores.
        assert!(SessionState::from_snapshot(good).is_ok());
    }

    #[test]
    fn registry_opens_on_the_pool_and_tracks_metrics() {
        let config = RoundConfig::new(2, 6, 0.8).unwrap();
        let mut reg = SessionRegistry::new(3, config, Pool::new(2));
        let opened = reg
            .open_batch(vec![example_spec(), example_spec()], None)
            .unwrap();
        assert_eq!(opened.len(), 2);
        assert_eq!(opened[0].session, 0);
        assert_eq!(opened[1].session, 1);
        assert_ne!(opened[0].answer_seed, opened[1].answer_seed);
        assert_eq!(reg.len(), 2);
        assert!(matches!(
            reg.get(7),
            Err(CoreError::UnknownSession { session: 7 })
        ));
        // Drive session 0 one round.
        let SelectOutcome::Round(round) = reg.select(0, &RandomSelector).unwrap() else {
            panic!("round expected");
        };
        let answers: Vec<(u64, bool)> = round.tasks.iter().map(|t| (t.id, true)).collect();
        reg.absorb(0, &answers).unwrap();
        let m = reg.metrics();
        assert_eq!(m.sessions, 2);
        assert_eq!(m.rounds, 1);
        assert_eq!(m.judgments, 2);
        assert_eq!(m.open_rounds, 0);
        // Trace covers both sessions: prior point plus one round.
        let trace = reg.trace("random".into());
        assert_eq!(trace.points.len(), 2);
        assert_eq!(trace.points[0].cost, 0);
        assert_eq!(trace.last().cost, 2);
    }

    #[test]
    fn registry_snapshot_roundtrips_and_continues_the_seed_schedule() {
        let config = RoundConfig::new(2, 6, 0.8).unwrap();
        let mut reg = SessionRegistry::new(5, config, Pool::serial());
        reg.open_batch(vec![example_spec()], None).unwrap();
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let parsed: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = SessionRegistry::from_snapshot(parsed, Pool::serial()).unwrap();
        // Opening one more session draws the same seeds in both registries.
        let a = reg.open_batch(vec![example_spec()], None).unwrap();
        let b = restored.open_batch(vec![example_spec()], None).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0].session, 1);
    }

    #[test]
    fn evict_removes_the_session_but_not_its_drawn_seeds() {
        let config = RoundConfig::new(2, 6, 0.8).unwrap();
        let mut reg = SessionRegistry::new(5, config, Pool::serial());
        reg.open_batch(vec![example_spec(), example_spec()], None)
            .unwrap();
        let evicted = reg.evict(0).unwrap();
        assert_eq!(evicted.name(), "hk");
        assert_eq!(reg.len(), 1);
        assert!(matches!(
            reg.evict(0),
            Err(CoreError::UnknownSession { session: 0 })
        ));
        // Seeds drawn for the evicted session stay drawn: the next open in
        // an evicting registry matches the next open in a non-evicting one.
        let mut shadow = SessionRegistry::new(5, config, Pool::serial());
        shadow
            .open_batch(vec![example_spec(), example_spec()], None)
            .unwrap();
        let a = reg.open_batch(vec![example_spec()], None).unwrap();
        let b = shadow.open_batch(vec![example_spec()], None).unwrap();
        assert_eq!(a, b);
        assert_eq!(a[0].session, 2);
    }

    #[test]
    fn open_batch_is_atomic_on_bad_specs() {
        let config = RoundConfig::new(2, 6, 0.8).unwrap();
        let mut reg = SessionRegistry::new(5, config, Pool::serial());
        let mut bad = example_spec();
        bad.gold.pop();
        assert!(reg.open_batch(vec![example_spec(), bad], None).is_err());
        assert!(reg.is_empty());
        // The failed open drew no seeds: the next open matches a fresh
        // registry's first.
        let a = reg.open_batch(vec![example_spec()], None).unwrap();
        let mut fresh = SessionRegistry::new(5, config, Pool::serial());
        let b = fresh.open_batch(vec![example_spec()], None).unwrap();
        assert_eq!(a, b);
    }
}
