//! Multi-entity experiment orchestration.
//!
//! The paper treats each book independently with its own budget
//! (Section V-A) and reports quality *curves* over the total number of
//! crowd judgments across all books (Figures 2–4). [`Experiment`] therefore
//! interleaves rounds across entities — one global round asks every
//! entity's batch — and records a [`QualityPoint`] (summed utility +
//! micro-F1 against gold) after each global round.
//!
//! [`Experiment::run_sharded`] takes the global round literally: per round,
//! selection and posterior updates shard across entities on the worker
//! pool while **all** entities' task sets travel in a single
//! [`RoundBatch`]/[`CrowdPlatform::publish_batch`] round trip, answered
//! from per-entity [`AnswerStreams`]. The per-entity protocol
//! ([`Experiment::run_sharded_per_entity`]) is retained as the
//! bit-identical reference.

use crate::error::CoreError;
use crate::metrics::{ConfusionCounts, QualityPoint};
use crate::pool::Pool;
use crate::round::{EntityCase, EntityState, PendingRound, RoundConfig};
use crate::selection::TaskSelector;
use crowdfusion_crowd::{AnswerModel, AnswerStreams, CostLedger, CrowdPlatform, RoundBatch};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// A multi-entity CrowdFusion experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    cases: Vec<EntityCase>,
    config: RoundConfig,
}

/// One entity's complete quality series: its prior quality and per-round
/// quality deltas. This is the unit [`assemble_trace`] aggregates into the
/// global quality-vs-cost curve; both sharded offline protocols and the
/// service's session registry ([`crate::session::SessionRegistry`]) produce
/// it, so identical per-entity rounds yield identical experiment traces no
/// matter which driver ran them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct EntitySeries {
    /// Utility of the prior before any crowdsourcing.
    pub prior_utility: f64,
    /// Confusion counts of the prior against gold.
    pub prior_counts: ConfusionCounts,
    /// Per-round quality deltas, in round order.
    pub rounds: Vec<RoundQuality>,
}

/// One round of one entity in a quality series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundQuality {
    /// Judgments spent this round.
    pub cost_delta: u64,
    /// Utility after merging this round's answers.
    pub utility: f64,
    /// Confusion counts at this round's posterior.
    pub counts: ConfusionCounts,
}

/// The entity's confusion counts at its current posterior.
fn counts_of(state: &EntityState<'_>, case: &EntityCase) -> ConfusionCounts {
    let mut counts = ConfusionCounts::default();
    counts.add_marginals(&state.dist.marginals(), case.gold);
    counts
}

/// The quality-vs-cost series produced by a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTrace {
    /// Selector used.
    pub selector: String,
    /// Quality after each global round; `points[0]` is the prior (cost 0).
    pub points: Vec<QualityPoint>,
}

impl ExperimentTrace {
    /// The final quality point.
    pub fn last(&self) -> &QualityPoint {
        self.points
            .last()
            .expect("trace always has the prior point")
    }
}

impl Experiment {
    /// Creates an experiment over the given entities.
    pub fn new(cases: Vec<EntityCase>, config: RoundConfig) -> Result<Experiment, CoreError> {
        for case in &cases {
            case.validate()?;
        }
        Ok(Experiment { cases, config })
    }

    /// The entities under study.
    pub fn cases(&self) -> &[EntityCase] {
        &self.cases
    }

    /// The round configuration.
    pub fn config(&self) -> RoundConfig {
        self.config
    }

    /// Runs the experiment with the given selector, crowd platform and
    /// selector RNG, producing the quality-vs-cost series.
    pub fn run<M: AnswerModel>(
        &self,
        selector: &dyn TaskSelector,
        platform: &mut CrowdPlatform<M>,
        rng: &mut dyn RngCore,
    ) -> Result<ExperimentTrace, CoreError> {
        let mut states: Vec<EntityState<'_>> = self
            .cases
            .iter()
            .map(|case| EntityState::new(case, self.config))
            .collect();
        let mut task_seq = 0u64;
        let mut points = vec![self.measure(&states, 0)];
        let mut total_cost = 0usize;
        loop {
            let mut progressed = false;
            for state in &mut states {
                if let Some(point) = state.step(selector, platform, rng, &mut task_seq)? {
                    total_cost += point.tasks.len();
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
            points.push(self.measure(&states, total_cost as u64));
        }
        Ok(ExperimentTrace {
            selector: selector.name(),
            points,
        })
    }

    /// The per-entity seed draws shared by both sharded protocols: drawn
    /// up front in entity order, so the schedule never touches the master
    /// RNG afterwards and `(platform_seed, selector_seed)` for entity `i`
    /// is a pure function of the master RNG's state on entry.
    fn entity_seeds(&self, rng: &mut dyn RngCore) -> Vec<(u64, u64)> {
        (0..self.cases.len())
            .map(|_| (rng.next_u64(), rng.next_u64()))
            .collect()
    }

    /// Runs the experiment with **batched crowd round trips**, sharded
    /// across entities on `pool`.
    ///
    /// This is the paper's round structure taken literally: one global
    /// round asks every entity's batch at once. Each global round is a
    /// three-phase cycle:
    ///
    /// 1. **select** (parallel): every live entity picks its round's task
    ///    set with its own selector RNG stream;
    /// 2. **collect** (one round trip): the task sets are assembled into a
    ///    [`RoundBatch`] in entity order and published with a single
    ///    [`CrowdPlatform::publish_batch`] call — `ledger.batches` counts
    ///    exactly one per global round — whose answers come back demuxed
    ///    per entity, drawn from per-entity [`AnswerStreams`];
    /// 3. **update** (parallel): every entity merges its judgments into
    ///    its posterior.
    ///
    /// Every random stream (selector and crowd) is a pure function of the
    /// entity index and the master RNG's state on entry — identical to the
    /// streams [`Experiment::run_sharded_per_entity`] derives — so the
    /// returned trace is **bit-identical to the per-entity protocol and
    /// identical for any thread count** (the property tests in
    /// `tests/batched_rounds.rs` pin both equalities down). It differs
    /// numerically from [`Experiment::run`], which interleaves one shared
    /// RNG across entities. The trace has the same global-round structure:
    /// point `r` aggregates every entity's state after `min(r, rounds_i)`
    /// rounds.
    pub fn run_sharded<M: AnswerModel>(
        &self,
        selector: &dyn TaskSelector,
        platform: &mut CrowdPlatform<M>,
        rng: &mut dyn RngCore,
        pool: &Pool,
    ) -> Result<ExperimentTrace, CoreError> {
        /// Per-entity driver state carried across global rounds.
        struct Driver<'a> {
            state: EntityState<'a>,
            rng: StdRng,
            task_seq: u64,
            /// Selected but not yet answered round (phase 1 → 3 handoff).
            pending: Option<PendingRound>,
            /// Demuxed judgments for `pending` (phase 2 → 3 handoff).
            judgments: Option<Vec<bool>>,
            series: EntitySeries,
            done: bool,
            /// First error raised on a pool worker; surfaced after the
            /// phase joins (entity order keeps the choice deterministic).
            error: Option<CoreError>,
        }

        let seeds = self.entity_seeds(rng);
        let mut streams = AnswerStreams::from_seeds(seeds.iter().map(|&(p, _)| p));
        let mut drivers: Vec<Driver<'_>> = self
            .cases
            .iter()
            .zip(&seeds)
            .enumerate()
            .map(|(i, (case, &(_, selector_seed)))| {
                let state = EntityState::new(case, self.config);
                let series = EntitySeries {
                    prior_utility: state.dist.utility(),
                    prior_counts: counts_of(&state, case),
                    rounds: Vec::new(),
                };
                Driver {
                    state,
                    rng: StdRng::seed_from_u64(selector_seed),
                    task_seq: (i as u64) << 32,
                    pending: None,
                    judgments: None,
                    series,
                    done: false,
                    error: None,
                }
            })
            .collect();
        let chunk = pool.chunk_size(drivers.len());

        loop {
            // Phase 1 — select: every live entity prepares its round on
            // the pool (each driver is touched by exactly one worker).
            pool.for_each_chunk(&mut drivers, chunk, |_, chunk| {
                for d in chunk.iter_mut().filter(|d| !d.done) {
                    match d.state.prepare(selector, &mut d.rng, &mut d.task_seq) {
                        Ok(Some(pending)) => d.pending = Some(pending),
                        Ok(None) => d.done = true,
                        Err(e) => {
                            d.done = true;
                            d.error = Some(e);
                        }
                    }
                }
            });
            if let Some(e) = drivers.iter_mut().find_map(|d| d.error.take()) {
                return Err(e);
            }

            // Phase 2 — collect: one global round trip for every pending
            // task set, in entity order; demux the answers back.
            let mut batch = RoundBatch::new();
            for (i, d) in drivers.iter_mut().enumerate() {
                if let Some(pending) = d.pending.as_mut() {
                    batch.push_group(
                        i,
                        std::mem::take(&mut pending.crowd_tasks),
                        std::mem::take(&mut pending.truths),
                    );
                }
            }
            if batch.is_empty() {
                break; // every entity exhausted its budget (or selector)
            }
            let demuxed = platform.publish_batch(&batch, &mut streams)?;
            let mut demuxed = demuxed.into_iter();
            for d in drivers.iter_mut().filter(|d| d.pending.is_some()) {
                let answers = demuxed.next().expect("one answer group per pending entity");
                d.judgments = Some(answers.iter().map(|a| a.value).collect());
            }

            // Phase 3 — update: merge judgments into posteriors on the
            // pool and close each entity's round bookkeeping.
            pool.for_each_chunk(&mut drivers, chunk, |_, chunk| {
                for d in chunk.iter_mut() {
                    let (Some(pending), Some(judgments)) = (d.pending.take(), d.judgments.take())
                    else {
                        continue;
                    };
                    match d.state.absorb(pending, judgments) {
                        Ok(point) => d.series.rounds.push(RoundQuality {
                            cost_delta: point.tasks.len() as u64,
                            utility: point.utility,
                            counts: counts_of(&d.state, d.state.case),
                        }),
                        Err(e) => {
                            d.done = true;
                            d.error = Some(e);
                        }
                    }
                }
            });
            if let Some(e) = drivers.iter_mut().find_map(|d| d.error.take()) {
                return Err(e);
            }
        }

        let series: Vec<EntitySeries> = drivers.into_iter().map(|d| d.series).collect();
        Ok(assemble_trace(&series, selector.name()))
    }

    /// Runs the experiment sharded across entities on `pool`, with
    /// **per-entity crowd round trips** — the pre-batching protocol, kept
    /// as the reference implementation the batched path is property-tested
    /// against (`tests/batched_rounds.rs`).
    ///
    /// Each entity's select–collect–update rounds are independent of every
    /// other entity's, so entity `i` runs to budget exhaustion on its own
    /// worker with: a crowd-platform fork seeded from the master RNG
    /// ([`CrowdPlatform::fork_seeded`]), a selector RNG stream likewise
    /// derived up front, and task ids from the disjoint block
    /// `(i << 32)..`. Because every random stream is a pure function of
    /// the entity index and the master RNG's state on entry, the returned
    /// trace is **identical for any thread count** and identical to
    /// [`Experiment::run_sharded`]. The two protocols differ only in the
    /// ledger: the forks pay one `batches` tick per entity per round
    /// (folded back into `platform`'s ledger), the batched path exactly
    /// one per global round.
    pub fn run_sharded_per_entity<M: AnswerModel + Clone + Sync>(
        &self,
        selector: &dyn TaskSelector,
        platform: &mut CrowdPlatform<M>,
        rng: &mut dyn RngCore,
        pool: &Pool,
    ) -> Result<ExperimentTrace, CoreError> {
        let seeds = self.entity_seeds(rng);
        let template: &CrowdPlatform<M> = platform;
        let config = self.config;
        let shards: Result<Vec<(EntitySeries, CostLedger)>, CoreError> = pool.map_reduce(
            self.cases.len(),
            |i| -> Result<(EntitySeries, CostLedger), CoreError> {
                let case = &self.cases[i];
                let (platform_seed, selector_seed) = seeds[i];
                let mut platform = template.fork_seeded(platform_seed);
                let mut rng = StdRng::seed_from_u64(selector_seed);
                let mut task_seq = (i as u64) << 32;
                let mut state = EntityState::new(case, config);
                let mut series = EntitySeries {
                    prior_utility: state.dist.utility(),
                    prior_counts: counts_of(&state, case),
                    rounds: Vec::new(),
                };
                while let Some(point) =
                    state.step(selector, &mut platform, &mut rng, &mut task_seq)?
                {
                    series.rounds.push(RoundQuality {
                        cost_delta: point.tasks.len() as u64,
                        utility: point.utility,
                        counts: counts_of(&state, case),
                    });
                }
                Ok((series, platform.ledger()))
            },
            Ok(Vec::with_capacity(self.cases.len())),
            |acc: Result<Vec<(EntitySeries, CostLedger)>, CoreError>, shard| {
                let mut acc = acc?;
                acc.push(shard?);
                Ok(acc)
            },
        );
        let shards = shards?;
        for (_, ledger) in &shards {
            platform.merge_ledger(*ledger);
        }
        let series: Vec<EntitySeries> = shards.into_iter().map(|(s, _)| s).collect();
        Ok(assemble_trace(&series, selector.name()))
    }

    /// Computes the summed utility and micro-averaged metrics over all
    /// entities' current posteriors.
    fn measure(&self, states: &[EntityState<'_>], cost: u64) -> QualityPoint {
        let mut utility = 0.0;
        let mut counts = ConfusionCounts::default();
        for state in states {
            utility += state.dist.utility();
            counts.add_marginals(&state.dist.marginals(), state.case.gold);
        }
        QualityPoint {
            cost,
            utility,
            f1: counts.f1(),
            precision: counts.precision(),
            recall: counts.recall(),
        }
    }
}

/// Reassembles per-entity quality series into the global quality-vs-cost
/// curve: point `r` aggregates each entity after `min(r, its round count)`
/// rounds. Shared by both sharded offline protocols and the service's
/// session registry — identical series therefore yield identical traces,
/// which is how the service's determinism contract against
/// [`Experiment::run_sharded`] is checked end to end.
pub fn assemble_trace(series: &[EntitySeries], selector: String) -> ExperimentTrace {
    let max_rounds = series.iter().map(|s| s.rounds.len()).max().unwrap_or(0);
    let mut points = Vec::with_capacity(max_rounds + 1);
    let mut cost = 0u64;
    for r in 0..=max_rounds {
        let mut utility = 0.0;
        let mut counts = ConfusionCounts::default();
        for entity in series {
            if r >= 1 && r <= entity.rounds.len() {
                cost += entity.rounds[r - 1].cost_delta;
            }
            match r.min(entity.rounds.len()) {
                0 => {
                    utility += entity.prior_utility;
                    counts.merge(entity.prior_counts);
                }
                reached => {
                    let round = &entity.rounds[reached - 1];
                    utility += round.utility;
                    counts.merge(round.counts);
                }
            }
        }
        points.push(QualityPoint {
            cost,
            utility,
            f1: counts.f1(),
            precision: counts.precision(),
            recall: counts.recall(),
        });
    }
    ExperimentTrace { selector, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{GreedySelector, RandomSelector};
    use crowdfusion_crowd::{UniformAccuracy, WorkerPool};
    use crowdfusion_jointdist::presets::paper_running_example;
    use crowdfusion_jointdist::{Assignment, JointDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn platform(pc: f64, seed: u64) -> CrowdPlatform<UniformAccuracy> {
        CrowdPlatform::new(
            WorkerPool::uniform(8, pc).unwrap(),
            UniformAccuracy::new(pc),
            seed,
        )
    }

    fn cases() -> Vec<EntityCase> {
        vec![
            EntityCase::simple("hk", paper_running_example(), Assignment(0b0111)),
            EntityCase::simple("coin", JointDist::uniform(3).unwrap(), Assignment(0b101)),
        ]
    }

    #[test]
    fn trace_starts_at_prior_and_spends_full_budget() {
        let config = RoundConfig::new(2, 8, 0.8).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut p = platform(0.8, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let trace = exp.run(&GreedySelector::fast(), &mut p, &mut rng).unwrap();
        assert_eq!(trace.points[0].cost, 0);
        // 2 entities × budget 8 = 16 judgments, 2 per entity per round.
        assert_eq!(trace.last().cost, 16);
        assert_eq!(trace.points.len(), 5); // prior + 4 rounds
        assert_eq!(p.ledger().judgments, 16);
    }

    #[test]
    fn informative_crowd_beats_prior_quality() {
        let config = RoundConfig::new(2, 30, 0.9).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut p = platform(0.9, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let trace = exp.run(&GreedySelector::fast(), &mut p, &mut rng).unwrap();
        let first = &trace.points[0];
        let last = trace.last();
        assert!(last.utility > first.utility + 1.0);
        assert!(last.f1 >= first.f1);
        assert!(last.f1 > 0.9, "final F1 {}", last.f1);
    }

    #[test]
    fn greedy_beats_random_in_utility_at_equal_cost() {
        // The paper's headline comparison. Averaged over many seeds: an
        // individual run can go either way (the paper itself observes the
        // quality "is not absolute monotonic w.r.t the number of crowd
        // sourced answers received").
        let config = RoundConfig::new(1, 12, 0.8).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut greedy_sum = 0.0;
        let mut random_sum = 0.0;
        for seed in 0..24 {
            let mut p = platform(0.8, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            greedy_sum += exp
                .run(&GreedySelector::fast(), &mut p, &mut rng)
                .unwrap()
                .last()
                .utility;
            let mut p = platform(0.8, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            random_sum += exp
                .run(&RandomSelector, &mut p, &mut rng)
                .unwrap()
                .last()
                .utility;
        }
        assert!(
            greedy_sum > random_sum,
            "greedy {greedy_sum} vs random {random_sum}"
        );
    }

    #[test]
    fn sharded_run_is_thread_count_invariant() {
        let config = RoundConfig::new(2, 8, 0.8).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let reference = {
            let mut p = platform(0.8, 3);
            let mut rng = StdRng::seed_from_u64(4);
            exp.run_sharded(&GreedySelector::fast(), &mut p, &mut rng, &Pool::serial())
                .unwrap()
        };
        for threads in [2usize, 4, 7] {
            let mut p = platform(0.8, 3);
            let mut rng = StdRng::seed_from_u64(4);
            let trace = exp
                .run_sharded(
                    &GreedySelector::engine(threads),
                    &mut p,
                    &mut rng,
                    &Pool::new(threads),
                )
                .unwrap();
            assert_eq!(trace.points, reference.points, "threads = {threads}");
            assert_eq!(p.ledger().judgments, 16);
        }
    }

    #[test]
    fn sharded_run_has_serial_trace_structure() {
        // Same budget accounting and round structure as `run`; the batched
        // protocol pays exactly one platform round trip per global round.
        let config = RoundConfig::new(2, 8, 0.8).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut p = platform(0.8, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let trace = exp
            .run_sharded(&GreedySelector::fast(), &mut p, &mut rng, &Pool::new(2))
            .unwrap();
        assert_eq!(trace.points[0].cost, 0);
        assert_eq!(trace.last().cost, 16);
        assert_eq!(trace.points.len(), 5); // prior + 4 rounds
        assert_eq!(p.ledger().judgments, 16);
        assert_eq!(p.ledger().batches, 4); // one publish_batch per global round
        for w in trace.points.windows(2) {
            assert!(w[1].cost > w[0].cost);
        }
    }

    #[test]
    fn per_entity_protocol_matches_batched_trace_but_pays_per_entity_batches() {
        let config = RoundConfig::new(2, 8, 0.8).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let batched = {
            let mut p = platform(0.8, 3);
            let mut rng = StdRng::seed_from_u64(4);
            let trace = exp
                .run_sharded(&GreedySelector::fast(), &mut p, &mut rng, &Pool::new(2))
                .unwrap();
            (trace, p.ledger())
        };
        let per_entity = {
            let mut p = platform(0.8, 3);
            let mut rng = StdRng::seed_from_u64(4);
            let trace = exp
                .run_sharded_per_entity(&GreedySelector::fast(), &mut p, &mut rng, &Pool::new(2))
                .unwrap();
            (trace, p.ledger())
        };
        // Identical quality-vs-cost series and judgment spend...
        assert_eq!(batched.0.points, per_entity.0.points);
        assert_eq!(batched.1.judgments, per_entity.1.judgments);
        // ...but the batched protocol collapses 2 entities × 4 rounds of
        // round trips into 4 global round trips.
        assert_eq!(per_entity.1.batches, 8);
        assert_eq!(batched.1.batches, 4);
    }

    #[test]
    fn sharded_run_improves_quality_like_serial() {
        let config = RoundConfig::new(2, 30, 0.9).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut p = platform(0.9, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let trace = exp
            .run_sharded(&GreedySelector::fast(), &mut p, &mut rng, &Pool::new(4))
            .unwrap();
        let first = &trace.points[0];
        let last = trace.last();
        assert!(last.utility > first.utility + 1.0);
        assert!(last.f1 > 0.9, "final F1 {}", last.f1);
    }

    #[test]
    fn sharded_run_with_no_entities_yields_prior_point() {
        let config = RoundConfig::new(2, 8, 0.8).unwrap();
        let exp = Experiment::new(Vec::new(), config).unwrap();
        let mut p = platform(0.8, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let trace = exp
            .run_sharded(&RandomSelector, &mut p, &mut rng, &Pool::new(2))
            .unwrap();
        assert_eq!(trace.points.len(), 1);
        assert_eq!(trace.points[0].cost, 0);
    }

    #[test]
    fn rejects_inconsistent_cases() {
        let mut bad = cases();
        bad[0].classes.pop();
        let config = RoundConfig::new(2, 4, 0.8).unwrap();
        assert!(Experiment::new(bad, config).is_err());
    }

    #[test]
    fn costs_are_strictly_increasing() {
        let config = RoundConfig::new(3, 9, 0.7).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut p = platform(0.7, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let trace = exp.run(&RandomSelector, &mut p, &mut rng).unwrap();
        for w in trace.points.windows(2) {
            assert!(w[1].cost > w[0].cost);
        }
    }
}
