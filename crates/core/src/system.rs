//! Multi-entity experiment orchestration.
//!
//! The paper treats each book independently with its own budget
//! (Section V-A) and reports quality *curves* over the total number of
//! crowd judgments across all books (Figures 2–4). [`Experiment`] therefore
//! interleaves rounds across entities — one global round asks every
//! entity's batch — and records a [`QualityPoint`] (summed utility +
//! micro-F1 against gold) after each global round.

use crate::error::CoreError;
use crate::metrics::{ConfusionCounts, QualityPoint};
use crate::pool::Pool;
use crate::round::{EntityCase, EntityState, RoundConfig};
use crate::selection::TaskSelector;
use crowdfusion_crowd::{AnswerModel, CostLedger, CrowdPlatform};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// A multi-entity CrowdFusion experiment.
#[derive(Debug, Clone)]
pub struct Experiment {
    cases: Vec<EntityCase>,
    config: RoundConfig,
}

/// One entity's complete sharded run: its prior quality, per-round quality
/// deltas, and the spend of its platform fork.
struct EntityShard {
    prior_utility: f64,
    prior_counts: ConfusionCounts,
    rounds: Vec<ShardRound>,
    ledger: CostLedger,
}

/// One round of one entity in a sharded run.
struct ShardRound {
    cost_delta: u64,
    utility: f64,
    counts: ConfusionCounts,
}

/// The entity's confusion counts at its current posterior.
fn counts_of(state: &EntityState<'_>, case: &EntityCase) -> ConfusionCounts {
    let mut counts = ConfusionCounts::default();
    counts.add_marginals(&state.dist.marginals(), case.gold);
    counts
}

/// The quality-vs-cost series produced by a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentTrace {
    /// Selector used.
    pub selector: String,
    /// Quality after each global round; `points[0]` is the prior (cost 0).
    pub points: Vec<QualityPoint>,
}

impl ExperimentTrace {
    /// The final quality point.
    pub fn last(&self) -> &QualityPoint {
        self.points
            .last()
            .expect("trace always has the prior point")
    }
}

impl Experiment {
    /// Creates an experiment over the given entities.
    pub fn new(cases: Vec<EntityCase>, config: RoundConfig) -> Result<Experiment, CoreError> {
        for case in &cases {
            case.validate()?;
        }
        Ok(Experiment { cases, config })
    }

    /// The entities under study.
    pub fn cases(&self) -> &[EntityCase] {
        &self.cases
    }

    /// The round configuration.
    pub fn config(&self) -> RoundConfig {
        self.config
    }

    /// Runs the experiment with the given selector, crowd platform and
    /// selector RNG, producing the quality-vs-cost series.
    pub fn run<M: AnswerModel>(
        &self,
        selector: &dyn TaskSelector,
        platform: &mut CrowdPlatform<M>,
        rng: &mut dyn RngCore,
    ) -> Result<ExperimentTrace, CoreError> {
        let mut states: Vec<EntityState<'_>> = self
            .cases
            .iter()
            .map(|case| EntityState::new(case, self.config))
            .collect();
        let mut task_seq = 0u64;
        let mut points = vec![self.measure(&states, 0)];
        let mut total_cost = 0usize;
        loop {
            let mut progressed = false;
            for state in &mut states {
                if let Some(point) = state.step(selector, platform, rng, &mut task_seq)? {
                    total_cost += point.tasks.len();
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
            points.push(self.measure(&states, total_cost as u64));
        }
        Ok(ExperimentTrace {
            selector: selector.name(),
            points,
        })
    }

    /// Runs the experiment sharded across entities on `pool`.
    ///
    /// Each entity's select–collect–update rounds are independent of every
    /// other entity's, so entity `i` runs to budget exhaustion on its own
    /// worker with: a crowd-platform fork seeded from the master RNG
    /// ([`CrowdPlatform::fork_seeded`]), a selector RNG stream likewise
    /// derived up front, and task ids from the disjoint block
    /// `(i << 32)..`. Because every random stream is a pure function of
    /// the entity index and the master RNG's state on entry, the returned
    /// trace is **identical for any thread count** (the property tests pin
    /// this down), though it differs numerically from [`Experiment::run`],
    /// which interleaves one shared RNG across entities.
    ///
    /// The trace has the same global-round structure as [`Experiment::run`]:
    /// point `r` aggregates every entity's state after `min(r, rounds_i)`
    /// rounds. The forks' spend is folded back into `platform`'s ledger.
    pub fn run_sharded<M: AnswerModel + Clone + Sync>(
        &self,
        selector: &dyn TaskSelector,
        platform: &mut CrowdPlatform<M>,
        rng: &mut dyn RngCore,
        pool: &Pool,
    ) -> Result<ExperimentTrace, CoreError> {
        // Seeds drawn up front in entity order: the sharded schedule never
        // touches the master RNG afterwards.
        let seeds: Vec<(u64, u64)> = (0..self.cases.len())
            .map(|_| (rng.next_u64(), rng.next_u64()))
            .collect();
        let template: &CrowdPlatform<M> = platform;
        let config = self.config;
        let shards: Result<Vec<EntityShard>, CoreError> = pool.map_reduce(
            self.cases.len(),
            |i| -> Result<EntityShard, CoreError> {
                let case = &self.cases[i];
                let (platform_seed, selector_seed) = seeds[i];
                let mut platform = template.fork_seeded(platform_seed);
                let mut rng = StdRng::seed_from_u64(selector_seed);
                let mut task_seq = (i as u64) << 32;
                let mut state = EntityState::new(case, config);
                let mut shard = EntityShard {
                    prior_utility: state.dist.utility(),
                    prior_counts: counts_of(&state, case),
                    rounds: Vec::new(),
                    ledger: CostLedger::default(),
                };
                while let Some(point) =
                    state.step(selector, &mut platform, &mut rng, &mut task_seq)?
                {
                    shard.rounds.push(ShardRound {
                        cost_delta: point.tasks.len() as u64,
                        utility: point.utility,
                        counts: counts_of(&state, case),
                    });
                }
                shard.ledger = platform.ledger();
                Ok(shard)
            },
            Ok(Vec::with_capacity(self.cases.len())),
            |acc: Result<Vec<EntityShard>, CoreError>, shard| {
                let mut acc = acc?;
                acc.push(shard?);
                Ok(acc)
            },
        );
        let shards = shards?;
        for shard in &shards {
            platform.merge_ledger(shard.ledger);
        }

        // Reassemble the global quality-vs-cost series: point r aggregates
        // each entity after min(r, its round count) rounds.
        let max_rounds = shards.iter().map(|s| s.rounds.len()).max().unwrap_or(0);
        let mut points = Vec::with_capacity(max_rounds + 1);
        let mut cost = 0u64;
        for r in 0..=max_rounds {
            let mut utility = 0.0;
            let mut counts = ConfusionCounts::default();
            for shard in &shards {
                if r >= 1 && r <= shard.rounds.len() {
                    cost += shard.rounds[r - 1].cost_delta;
                }
                match r.min(shard.rounds.len()) {
                    0 => {
                        utility += shard.prior_utility;
                        counts.merge(shard.prior_counts);
                    }
                    reached => {
                        let round = &shard.rounds[reached - 1];
                        utility += round.utility;
                        counts.merge(round.counts);
                    }
                }
            }
            points.push(QualityPoint {
                cost,
                utility,
                f1: counts.f1(),
                precision: counts.precision(),
                recall: counts.recall(),
            });
        }
        Ok(ExperimentTrace {
            selector: selector.name(),
            points,
        })
    }

    /// Computes the summed utility and micro-averaged metrics over all
    /// entities' current posteriors.
    fn measure(&self, states: &[EntityState<'_>], cost: u64) -> QualityPoint {
        let mut utility = 0.0;
        let mut counts = ConfusionCounts::default();
        for state in states {
            utility += state.dist.utility();
            counts.add_marginals(&state.dist.marginals(), state.case.gold);
        }
        QualityPoint {
            cost,
            utility,
            f1: counts.f1(),
            precision: counts.precision(),
            recall: counts.recall(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{GreedySelector, RandomSelector};
    use crowdfusion_crowd::{UniformAccuracy, WorkerPool};
    use crowdfusion_jointdist::presets::paper_running_example;
    use crowdfusion_jointdist::{Assignment, JointDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn platform(pc: f64, seed: u64) -> CrowdPlatform<UniformAccuracy> {
        CrowdPlatform::new(
            WorkerPool::uniform(8, pc).unwrap(),
            UniformAccuracy::new(pc),
            seed,
        )
    }

    fn cases() -> Vec<EntityCase> {
        vec![
            EntityCase::simple("hk", paper_running_example(), Assignment(0b0111)),
            EntityCase::simple("coin", JointDist::uniform(3).unwrap(), Assignment(0b101)),
        ]
    }

    #[test]
    fn trace_starts_at_prior_and_spends_full_budget() {
        let config = RoundConfig::new(2, 8, 0.8).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut p = platform(0.8, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let trace = exp.run(&GreedySelector::fast(), &mut p, &mut rng).unwrap();
        assert_eq!(trace.points[0].cost, 0);
        // 2 entities × budget 8 = 16 judgments, 2 per entity per round.
        assert_eq!(trace.last().cost, 16);
        assert_eq!(trace.points.len(), 5); // prior + 4 rounds
        assert_eq!(p.ledger().judgments, 16);
    }

    #[test]
    fn informative_crowd_beats_prior_quality() {
        let config = RoundConfig::new(2, 30, 0.9).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut p = platform(0.9, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let trace = exp.run(&GreedySelector::fast(), &mut p, &mut rng).unwrap();
        let first = &trace.points[0];
        let last = trace.last();
        assert!(last.utility > first.utility + 1.0);
        assert!(last.f1 >= first.f1);
        assert!(last.f1 > 0.9, "final F1 {}", last.f1);
    }

    #[test]
    fn greedy_beats_random_in_utility_at_equal_cost() {
        // The paper's headline comparison. Averaged over many seeds: an
        // individual run can go either way (the paper itself observes the
        // quality "is not absolute monotonic w.r.t the number of crowd
        // sourced answers received").
        let config = RoundConfig::new(1, 12, 0.8).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut greedy_sum = 0.0;
        let mut random_sum = 0.0;
        for seed in 0..24 {
            let mut p = platform(0.8, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            greedy_sum += exp
                .run(&GreedySelector::fast(), &mut p, &mut rng)
                .unwrap()
                .last()
                .utility;
            let mut p = platform(0.8, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            random_sum += exp
                .run(&RandomSelector, &mut p, &mut rng)
                .unwrap()
                .last()
                .utility;
        }
        assert!(
            greedy_sum > random_sum,
            "greedy {greedy_sum} vs random {random_sum}"
        );
    }

    #[test]
    fn sharded_run_is_thread_count_invariant() {
        let config = RoundConfig::new(2, 8, 0.8).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let reference = {
            let mut p = platform(0.8, 3);
            let mut rng = StdRng::seed_from_u64(4);
            exp.run_sharded(&GreedySelector::fast(), &mut p, &mut rng, &Pool::serial())
                .unwrap()
        };
        for threads in [2usize, 4, 7] {
            let mut p = platform(0.8, 3);
            let mut rng = StdRng::seed_from_u64(4);
            let trace = exp
                .run_sharded(
                    &GreedySelector::engine(threads),
                    &mut p,
                    &mut rng,
                    &Pool::new(threads),
                )
                .unwrap();
            assert_eq!(trace.points, reference.points, "threads = {threads}");
            assert_eq!(p.ledger().judgments, 16);
        }
    }

    #[test]
    fn sharded_run_has_serial_trace_structure() {
        // Same budget accounting and round structure as `run`, and the
        // forks' spend lands in the master ledger.
        let config = RoundConfig::new(2, 8, 0.8).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut p = platform(0.8, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let trace = exp
            .run_sharded(&GreedySelector::fast(), &mut p, &mut rng, &Pool::new(2))
            .unwrap();
        assert_eq!(trace.points[0].cost, 0);
        assert_eq!(trace.last().cost, 16);
        assert_eq!(trace.points.len(), 5); // prior + 4 rounds
        assert_eq!(p.ledger().judgments, 16);
        assert_eq!(p.ledger().batches, 8); // 2 entities × 4 rounds
        for w in trace.points.windows(2) {
            assert!(w[1].cost > w[0].cost);
        }
    }

    #[test]
    fn sharded_run_improves_quality_like_serial() {
        let config = RoundConfig::new(2, 30, 0.9).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut p = platform(0.9, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let trace = exp
            .run_sharded(&GreedySelector::fast(), &mut p, &mut rng, &Pool::new(4))
            .unwrap();
        let first = &trace.points[0];
        let last = trace.last();
        assert!(last.utility > first.utility + 1.0);
        assert!(last.f1 > 0.9, "final F1 {}", last.f1);
    }

    #[test]
    fn sharded_run_with_no_entities_yields_prior_point() {
        let config = RoundConfig::new(2, 8, 0.8).unwrap();
        let exp = Experiment::new(Vec::new(), config).unwrap();
        let mut p = platform(0.8, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let trace = exp
            .run_sharded(&RandomSelector, &mut p, &mut rng, &Pool::new(2))
            .unwrap();
        assert_eq!(trace.points.len(), 1);
        assert_eq!(trace.points[0].cost, 0);
    }

    #[test]
    fn rejects_inconsistent_cases() {
        let mut bad = cases();
        bad[0].classes.pop();
        let config = RoundConfig::new(2, 4, 0.8).unwrap();
        assert!(Experiment::new(bad, config).is_err());
    }

    #[test]
    fn costs_are_strictly_increasing() {
        let config = RoundConfig::new(3, 9, 0.7).unwrap();
        let exp = Experiment::new(cases(), config).unwrap();
        let mut p = platform(0.7, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let trace = exp.run(&RandomSelector, &mut p, &mut rng).unwrap();
        for w in trace.points.windows(2) {
            assert!(w[1].cost > w[0].cost);
        }
    }
}
