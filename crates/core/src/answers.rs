//! The crowd-answer distribution (Equation 2) and Bayesian merge
//! (Equation 3).
//!
//! For a task set `T` and crowd accuracy `Pc`, the probability of receiving
//! a specific answer set is
//!
//! ```text
//! P(Ans_T) = Σ_j P(o_j) · Pc^#Same · (1 − Pc)^#Diff          (Equation 2)
//! ```
//!
//! where `#Same`/`#Diff` count agreements/disagreements between the output's
//! judgments and the answers on the selected facts. Two evaluators compute
//! the full vector over all `2^|T|` answer patterns:
//!
//! * [`AnswerEvaluator::Naive`] — the paper's direct evaluation
//!   (`O(2^|T| · |O| · |T|)`), used by the Table V "Approx." and "OPT"
//!   configurations;
//! * [`AnswerEvaluator::Butterfly`] — our engineering improvement: scatter
//!   the output distribution onto the `2^|T|` pattern lattice, then apply a
//!   per-bit binary-symmetric-channel butterfly (`O(|O| + |T|·2^|T|)`),
//!   analogous to a Walsh–Hadamard transform. Cross-validated against the
//!   naive evaluator by unit and property tests.
//!
//! After answers arrive, the posterior over outputs is (Equation 3)
//!
//! ```text
//! P(o_i | Ans) = P(o_i) · Pc^#Same (1 − Pc)^#Diff / P(Ans).
//! ```

use crate::error::CoreError;
use crate::{validate_pc, MAX_DENSE_FACTS};
use crowdfusion_jointdist::{entropy_of_probs, Assignment, JointDist, VarSet};
use serde::{Deserialize, Serialize};

/// Which algorithm computes answer distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AnswerEvaluator {
    /// The paper's direct evaluation of Equation 2.
    Naive,
    /// The binary-symmetric-channel butterfly transform (ours; default).
    #[default]
    Butterfly,
}

/// Validates a task set against the distribution and the dense limit.
fn validate_tasks(dist: &JointDist, tasks: VarSet) -> Result<(), CoreError> {
    let n = dist.num_vars();
    if let Some(bad) = tasks.difference(VarSet::all(n)).iter().next() {
        return Err(CoreError::TaskOutOfRange { index: bad, n });
    }
    if tasks.len() > MAX_DENSE_FACTS {
        return Err(CoreError::TooManyFacts {
            requested: tasks.len(),
            limit: MAX_DENSE_FACTS,
        });
    }
    Ok(())
}

/// Computes the answer distribution for `tasks` with the requested
/// evaluator. The result is a dense vector of length `2^|tasks|`; entry `a`
/// is the probability of the answer pattern whose bit `j` is the judgment of
/// the `j`-th smallest member of `tasks`. An empty task set yields `[1.0]`.
pub fn answer_distribution(
    dist: &JointDist,
    tasks: VarSet,
    pc: f64,
    evaluator: AnswerEvaluator,
) -> Result<Vec<f64>, CoreError> {
    validate_pc(pc)?;
    validate_tasks(dist, tasks)?;
    match evaluator {
        AnswerEvaluator::Naive => Ok(answer_distribution_naive(dist, tasks, pc)),
        AnswerEvaluator::Butterfly => Ok(answer_distribution_butterfly(dist, tasks, pc)),
    }
}

/// The paper's brute-force Equation 2: for every answer pattern, scan the
/// whole output support counting `#Same` / `#Diff`.
fn answer_distribution_naive(dist: &JointDist, tasks: VarSet, pc: f64) -> Vec<f64> {
    let t = tasks.len();
    let patterns = 1usize << t;
    let mut out = vec![0.0f64; patterns];
    // Precompute pc^s (1-pc)^d for s + d = t.
    let weights: Vec<f64> = (0..=t)
        .map(|d| pc.powi((t - d) as i32) * (1.0 - pc).powi(d as i32))
        .collect();
    for (answer, slot) in out.iter_mut().enumerate() {
        let mut total = 0.0;
        for (o, p) in dist.iter() {
            let restricted = o.extract(tasks);
            let diff = (restricted ^ answer as u64).count_ones() as usize;
            total += p * weights[diff];
        }
        *slot = total;
    }
    out
}

/// Butterfly evaluation: scatter `P(o)` restricted to `tasks` onto the
/// pattern lattice, then per bit apply the binary symmetric channel
/// `[[pc, 1−pc], [1−pc, pc]]`.
fn answer_distribution_butterfly(dist: &JointDist, tasks: VarSet, pc: f64) -> Vec<f64> {
    let t = tasks.len();
    let patterns = 1usize << t;
    let mut w = vec![0.0f64; patterns];
    for (o, p) in dist.iter() {
        w[o.extract(tasks) as usize] += p;
    }
    bsc_transform_in_place(&mut w, t, pc);
    w
}

/// Applies the per-bit binary-symmetric-channel transform to a dense vector
/// over `t`-bit patterns, in place.
pub(crate) fn bsc_transform_in_place(w: &mut [f64], t: usize, pc: f64) {
    debug_assert_eq!(w.len(), 1usize << t);
    if pc == 1.0 {
        return; // identity channel
    }
    let q = 1.0 - pc;
    for bit in 0..t {
        let stride = 1usize << bit;
        let block = stride << 1;
        let mut base = 0;
        while base < w.len() {
            for i in base..base + stride {
                let lo = w[i];
                let hi = w[i + stride];
                w[i] = pc * lo + q * hi;
                w[i + stride] = q * lo + pc * hi;
            }
            base += block;
        }
    }
}

/// Entropy `H(T)` of the answer distribution for `tasks`, in bits — the
/// paper's optimisation objective (Equation 4).
pub fn answer_entropy(
    dist: &JointDist,
    tasks: VarSet,
    pc: f64,
    evaluator: AnswerEvaluator,
) -> Result<f64, CoreError> {
    Ok(entropy_of_probs(answer_distribution(
        dist, tasks, pc, evaluator,
    )?))
}

/// The full answer joint distribution over *all* `n` facts — the paper's
/// preprocessing artefact (Table IV). Dense vector of length `2^n` indexed
/// by answer pattern (bit `i` = judgment of fact `i`).
pub fn full_answer_distribution(
    dist: &JointDist,
    pc: f64,
    evaluator: AnswerEvaluator,
) -> Result<Vec<f64>, CoreError> {
    answer_distribution(dist, VarSet::all(dist.num_vars()), pc, evaluator)
}

/// Bayesian merge of crowd answers (Equation 3): multiplies each output's
/// probability by `Pc^#Same (1 − Pc)^#Diff` and renormalises.
///
/// `tasks` and `answers` are parallel: `answers[j]` is the crowd judgment of
/// fact `tasks[j]`. Duplicate task indices within one batch are rejected.
pub fn posterior(
    dist: &JointDist,
    tasks: &[usize],
    answers: &[bool],
    pc: f64,
) -> Result<JointDist, CoreError> {
    let mut updated = dist.clone();
    posterior_in_place(&mut updated, tasks, answers, pc)?;
    Ok(updated)
}

/// [`posterior`] without the clone: updates `dist` through the in-place
/// reweight fast path ([`JointDist::reweight_in_place`]), which reuses the
/// sorted support vector instead of re-merging every entry through a
/// `BTreeMap`. This is the round driver's per-round merge.
///
/// Validation happens before any mutation, so argument errors leave `dist`
/// untouched. A [`CoreError::Joint`]-wrapped zero-mass error (all
/// likelihoods underflowed — unreachable for `Pc ∈ [0.5, 1]` on a
/// normalised prior) may leave `dist` unnormalised; callers must treat the
/// distribution as poisoned on error, as the round drivers do by aborting
/// the run.
pub fn posterior_in_place(
    dist: &mut JointDist,
    tasks: &[usize],
    answers: &[bool],
    pc: f64,
) -> Result<(), CoreError> {
    validate_pc(pc)?;
    if tasks.len() != answers.len() {
        return Err(CoreError::AnswerLengthMismatch {
            tasks: tasks.len(),
            answers: answers.len(),
        });
    }
    if tasks.is_empty() {
        return Ok(());
    }
    let mut seen = VarSet::EMPTY;
    let mut answer_bits = Assignment::ALL_FALSE;
    for (&task, &ans) in tasks.iter().zip(answers) {
        if task >= dist.num_vars() {
            return Err(CoreError::TaskOutOfRange {
                index: task,
                n: dist.num_vars(),
            });
        }
        if seen.contains(task) {
            return Err(CoreError::DuplicateTask(task));
        }
        seen = seen.insert(task);
        answer_bits = answer_bits.with(task, ans);
    }
    if pc == 0.5 {
        // Pure-noise answers carry no information; skip the reweight, which
        // would multiply every output by the same constant.
        return Ok(());
    }
    let q = 1.0 - pc;
    let t = tasks.len() as u32;
    dist.reweight_in_place(|o| {
        let diff = o.hamming_on(answer_bits, seen);
        pc.powi((t - diff) as i32) * q.powi(diff as i32)
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdfusion_jointdist::presets::paper_running_example;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 5e-4 // paper reports 3 decimals
    }

    /// Table IV of the paper: the answer joint distribution for the running
    /// example with Pc = 0.8, rows a1..a16 in (f1, f2, f3, f4) order with f4
    /// varying fastest.
    const TABLE_IV: [f64; 16] = [
        0.049, 0.050, 0.063, 0.055, 0.071, 0.049, 0.087, 0.077, 0.047, 0.051, 0.052, 0.056, 0.065,
        0.071, 0.073, 0.085,
    ];

    fn table_iv_index(row: usize) -> usize {
        // Row bit 3 -> f1 (var 0) ... bit 0 -> f4 (var 3); our pattern index
        // has bit v = fact v.
        let mut idx = 0usize;
        for v in 0..4 {
            if (row >> (3 - v)) & 1 == 1 {
                idx |= 1 << v;
            }
        }
        idx
    }

    #[test]
    fn full_answer_distribution_matches_table_iv() {
        let d = paper_running_example();
        for ev in [AnswerEvaluator::Naive, AnswerEvaluator::Butterfly] {
            let ans = full_answer_distribution(&d, 0.8, ev).unwrap();
            assert_eq!(ans.len(), 16);
            for (row, &expected) in TABLE_IV.iter().enumerate() {
                let got = ans[table_iv_index(row)];
                assert!(
                    close(got, expected),
                    "{ev:?} a{} = {got:.4}, paper says {expected}",
                    row + 1
                );
            }
            let total: f64 = ans.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn evaluators_agree_on_running_example() {
        let d = paper_running_example();
        for bits in 1u64..16 {
            let tasks = VarSet(bits);
            let a = answer_distribution(&d, tasks, 0.8, AnswerEvaluator::Naive).unwrap();
            let b = answer_distribution(&d, tasks, 0.8, AnswerEvaluator::Butterfly).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12, "mismatch for tasks {tasks}");
            }
        }
    }

    #[test]
    fn empty_task_set_is_trivial() {
        let d = paper_running_example();
        let a = answer_distribution(&d, VarSet::EMPTY, 0.8, AnswerEvaluator::Butterfly).unwrap();
        assert_eq!(a.len(), 1);
        assert!((a[0] - 1.0).abs() < 1e-9);
        let h = answer_entropy(&d, VarSet::EMPTY, 0.8, AnswerEvaluator::Naive).unwrap();
        assert!(h.abs() < 1e-9);
    }

    #[test]
    fn single_task_entropy_is_one_bit_for_f1() {
        // Paper Section III-D: H({Ans_{f1}}) = 1 (P(f1) = 0.5 stays 0.5
        // through the symmetric channel).
        let d = paper_running_example();
        let h = answer_entropy(&d, VarSet::single(0), 0.8, AnswerEvaluator::Naive).unwrap();
        assert!((h - 1.0).abs() < 1e-9);
    }

    // NOTE on Table III row labels: the paper's Table III is internally
    // inconsistent with Tables I/II. Under the Table I/II fact order (which
    // our presets reproduce exactly, including all four marginals and the
    // Section III-A worked numbers), the Table III values are recovered by
    // relabelling f1 ↔ f4 and f2 ↔ f3 in its first column. The affected
    // rows swap pairwise ({f1,f2} ↔ {f3,f4}, {f1,f3} ↔ {f2,f4}); {f1,f4}
    // and {f2,f3} are invariant — in particular the paper's conclusions
    // (best task set {f1,f4} at Pc = 0.8) are unaffected. The tests below
    // encode the permuted (self-consistent) labelling.

    #[test]
    fn table_iii_task_entropies() {
        // Paper Table III: H(T) for all 2-subsets at Pc = 0.8, with the
        // label permutation documented above.
        let d = paper_running_example();
        let cases = [
            (VarSet::from_vars([0, 1]), 1.982), // paper row {f3, f4}
            (VarSet::from_vars([0, 2]), 1.993), // paper row {f2, f4}
            (VarSet::from_vars([0, 3]), 1.997), // paper row {f1, f4}
            (VarSet::from_vars([1, 2]), 1.975), // paper row {f2, f3}
            (VarSet::from_vars([1, 3]), 1.982), // paper row {f1, f3}
            (VarSet::from_vars([2, 3]), 1.993), // paper row {f1, f2}
        ];
        for (tasks, expected) in cases {
            let h = answer_entropy(&d, tasks, 0.8, AnswerEvaluator::Butterfly).unwrap();
            assert!(
                (h - expected).abs() < 5e-4,
                "H({tasks}) = {h:.4}, paper says {expected}"
            );
        }
    }

    #[test]
    fn table_iii_fact_entropies() {
        // Paper Table III column H({f_i | f_i ∈ T}) — the entropy of the
        // facts themselves (equivalently the Pc = 1 answer channel) — with
        // the label permutation documented above.
        let d = paper_running_example();
        let cases = [
            (VarSet::from_vars([0, 1]), 1.948), // paper row {f3, f4}
            (VarSet::from_vars([0, 2]), 1.977), // paper row {f2, f4}
            (VarSet::from_vars([0, 3]), 1.976), // paper row {f1, f4}
            (VarSet::from_vars([1, 2]), 1.929), // paper row {f2, f3}
            (VarSet::from_vars([1, 3]), 1.949), // paper row {f1, f3}
            (VarSet::from_vars([2, 3]), 1.981), // paper row {f1, f2}
        ];
        for (tasks, expected) in cases {
            let h = answer_entropy(&d, tasks, 1.0, AnswerEvaluator::Naive).unwrap();
            assert!(
                (h - expected).abs() < 5e-4,
                "H(facts {tasks}) = {h:.4}, paper says {expected}"
            );
        }
    }

    #[test]
    fn posterior_matches_paper_worked_example() {
        // Ask f1, receive "true", Pc = 0.8 (paper Section III-A):
        // P(o1 | e) = 0.012, P(o9 | e) = 0.064.
        let d = paper_running_example();
        let post = posterior(&d, &[0], &[true], 0.8).unwrap();
        assert!(close(post.prob(Assignment(0b0000)), 0.012));
        assert!(close(post.prob(Assignment(0b0001)), 0.064));
        assert!((post.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn posterior_in_place_matches_posterior_exactly() {
        let d = paper_running_example();
        for (tasks, answers, pc) in [
            (vec![0usize], vec![true], 0.8),
            (vec![1, 3], vec![false, true], 0.9),
            (vec![0, 1, 2, 3], vec![true, true, false, true], 0.55),
            (vec![2], vec![false], 1.0),
            (vec![0, 2], vec![true, false], 0.5),
            (vec![], vec![], 0.8),
        ] {
            let merged = posterior(&d, &tasks, &answers, pc).unwrap();
            let mut fast = d.clone();
            posterior_in_place(&mut fast, &tasks, &answers, pc).unwrap();
            assert_eq!(merged, fast, "tasks {tasks:?} pc {pc}");
        }
    }

    #[test]
    fn posterior_in_place_validation_leaves_dist_untouched() {
        let d = paper_running_example();
        let mut m = d.clone();
        assert!(posterior_in_place(&mut m, &[9], &[true], 0.8).is_err());
        assert!(posterior_in_place(&mut m, &[0], &[true, false], 0.8).is_err());
        assert!(posterior_in_place(&mut m, &[1, 1], &[true, true], 0.8).is_err());
        assert!(posterior_in_place(&mut m, &[0], &[true], 0.2).is_err());
        assert_eq!(m, d);
    }

    #[test]
    fn posterior_with_noise_pc_is_identity() {
        let d = paper_running_example();
        let post = posterior(&d, &[0, 2], &[true, false], 0.5).unwrap();
        assert_eq!(post, d);
    }

    #[test]
    fn posterior_with_perfect_crowd_conditions() {
        let d = paper_running_example();
        let post = posterior(&d, &[0], &[true], 1.0).unwrap();
        let cond = d.condition(0, true).unwrap();
        for (a, p) in cond.iter() {
            assert!((post.prob(a) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn posterior_validation() {
        let d = paper_running_example();
        assert!(matches!(
            posterior(&d, &[0], &[true, false], 0.8),
            Err(CoreError::AnswerLengthMismatch { .. })
        ));
        assert!(matches!(
            posterior(&d, &[9], &[true], 0.8),
            Err(CoreError::TaskOutOfRange { .. })
        ));
        assert!(matches!(
            posterior(&d, &[1, 1], &[true, true], 0.8),
            Err(CoreError::DuplicateTask(1))
        ));
        assert!(matches!(
            posterior(&d, &[0], &[true], 0.3),
            Err(CoreError::InvalidAccuracy(_))
        ));
        let same = posterior(&d, &[], &[], 0.8).unwrap();
        assert_eq!(same, d);
    }

    #[test]
    fn answer_distribution_validation() {
        let d = paper_running_example();
        assert!(matches!(
            answer_distribution(&d, VarSet::from_vars([5]), 0.8, AnswerEvaluator::Naive),
            Err(CoreError::TaskOutOfRange { .. })
        ));
        assert!(matches!(
            answer_distribution(&d, VarSet::single(0), 1.2, AnswerEvaluator::Naive),
            Err(CoreError::InvalidAccuracy(_))
        ));
    }

    #[test]
    fn repeated_posteriors_converge_to_truth() {
        // Asking the same fact many times with informative answers should
        // drive its marginal toward certainty.
        let d = paper_running_example();
        let mut cur = d;
        for _ in 0..40 {
            cur = posterior(&cur, &[3], &[true], 0.8).unwrap();
        }
        assert!(cur.marginal(3).unwrap() > 0.999);
    }

    #[test]
    fn bsc_transform_preserves_mass_and_is_identity_at_pc1() {
        let mut w = vec![0.1, 0.2, 0.3, 0.4];
        bsc_transform_in_place(&mut w, 2, 1.0);
        assert_eq!(w, vec![0.1, 0.2, 0.3, 0.4]);
        bsc_transform_in_place(&mut w, 2, 0.7);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Pc = 0.5 collapses everything to uniform.
        let mut w = vec![1.0, 0.0, 0.0, 0.0];
        bsc_transform_in_place(&mut w, 2, 0.5);
        for x in w {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }
}
