//! The crowd-answer distribution (Equation 2) and Bayesian merge
//! (Equation 3).
//!
//! For a task set `T` and crowd accuracy `Pc`, the probability of receiving
//! a specific answer set is
//!
//! ```text
//! P(Ans_T) = Σ_j P(o_j) · Pc^#Same · (1 − Pc)^#Diff          (Equation 2)
//! ```
//!
//! where `#Same`/`#Diff` count agreements/disagreements between the output's
//! judgments and the answers on the selected facts. Two evaluators compute
//! the full vector over all `2^|T|` answer patterns:
//!
//! * [`AnswerEvaluator::Naive`] — the paper's direct evaluation
//!   (`O(2^|T| · |O| · |T|)`), used by the Table V "Approx." and "OPT"
//!   configurations;
//! * [`AnswerEvaluator::Butterfly`] — our engineering improvement: scatter
//!   the output distribution onto the `2^|T|` pattern lattice, then apply a
//!   per-bit binary-symmetric-channel butterfly (`O(|O| + |T|·2^|T|)`),
//!   analogous to a Walsh–Hadamard transform. Cross-validated against the
//!   naive evaluator by unit and property tests.
//!
//! After answers arrive, the posterior over outputs is (Equation 3)
//!
//! ```text
//! P(o_i | Ans) = P(o_i) · Pc^#Same (1 − Pc)^#Diff / P(Ans).
//! ```

use crate::error::CoreError;
use crate::{validate_pc, MAX_DENSE_FACTS};
use crowdfusion_jointdist::{entropy_of_probs, Assignment, JointDist, VarSet};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Which algorithm computes answer distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AnswerEvaluator {
    /// The paper's direct evaluation of Equation 2.
    Naive,
    /// The binary-symmetric-channel butterfly transform (ours; default).
    #[default]
    Butterfly,
}

/// Which representation backs the preprocessed answer table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TableBackend {
    /// Dense for `n ≤` [`MAX_DENSE_FACTS`], sparse beyond — the default.
    #[default]
    Auto,
    /// Force the dense `2^n` table (errors beyond the dense limit).
    Dense,
    /// Force the sparse support-backed table at any `n`.
    Sparse,
}

/// The preprocessed answer joint distribution (the paper's Table IV
/// artefact) in dense or sparse form.
///
/// The dense variant is the paper's literal table: `probs[pattern]` is
/// `P(Ans = pattern)` with the crowd channel already applied, `2^n`
/// entries. The sparse variant lifts the dense `2^n` ceiling: it stores a
/// sorted `(pattern, probability)` support together with the *residual*
/// channel accuracy `pc` to apply at evaluation time. Because the
/// per-fact binary symmetric channel commutes with marginalisation, the
/// answer distribution of any task set `T` is recovered exactly from the
/// sparse form by scattering the support onto the `2^|T|` lattice and
/// applying the `|T|`-stage channel butterfly — `O(|O| + |T|·2^|T|)`
/// instead of `O(2^n)`.
///
/// Two sparse constructions exist: [`AnswerTable::sparse`] is **exact**
/// (the support is the output distribution itself, residual channel
/// `pc`), and [`AnswerTable::sampled`] is a Monte-Carlo histogram of
/// noisy answers (residual channel 1 — the noise is baked into the
/// samples) built on [`JointDist::noisy_sparse`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerTable {
    /// Dense channel-applied probabilities over all `2^n` patterns.
    Dense {
        /// Number of facts.
        n: usize,
        /// `probs[pattern]` = P(Ans = pattern); length `2^n`.
        probs: Vec<f64>,
    },
    /// Sorted sparse `(pattern, probability)` support plus the residual
    /// channel accuracy to apply at evaluation time.
    Sparse {
        /// Number of facts.
        n: usize,
        /// Residual per-fact channel accuracy (1 = channel already
        /// applied to the support).
        pc: f64,
        /// Sorted (judgment pattern, probability) pairs.
        entries: Vec<(u64, f64)>,
    },
}

impl AnswerTable {
    /// The dense table (paper Table IV): [`full_answer_distribution`]
    /// wrapped in the enum. Errors beyond [`MAX_DENSE_FACTS`].
    pub fn dense(
        dist: &JointDist,
        pc: f64,
        evaluator: AnswerEvaluator,
    ) -> Result<AnswerTable, CoreError> {
        Ok(AnswerTable::Dense {
            n: dist.num_vars(),
            probs: full_answer_distribution(dist, pc, evaluator)?,
        })
    }

    /// The **exact** sparse table: the output distribution's own sorted
    /// support with the channel `pc` kept residual. Works at any `n` the
    /// substrate supports (up to 64 facts).
    pub fn sparse(dist: &JointDist, pc: f64) -> Result<AnswerTable, CoreError> {
        validate_pc(pc)?;
        Ok(AnswerTable::Sparse {
            n: dist.num_vars(),
            pc,
            entries: dist.iter().map(|(a, p)| (a.0, p)).collect(),
        })
    }

    /// A Monte-Carlo sparse table: `draws` noisy answer sets sampled
    /// through the channel ([`JointDist::noisy_sparse`]); the residual
    /// channel is the identity because the noise is baked into the
    /// histogram. Approximation error is `O(1/√draws)`.
    pub fn sampled(
        dist: &JointDist,
        pc: f64,
        draws: usize,
        rng: &mut dyn RngCore,
    ) -> Result<AnswerTable, CoreError> {
        validate_pc(pc)?;
        let noisy = dist.noisy_sparse(pc, draws, rng)?;
        Ok(AnswerTable::Sparse {
            n: dist.num_vars(),
            pc: 1.0,
            entries: noisy.iter().map(|(a, p)| (a.0, p)).collect(),
        })
    }

    /// Thins a sparse table's support to at most `budget` entries — the
    /// answer-side growth control sharing one algorithm
    /// ([`crowdfusion_jointdist::thin_support`]) with
    /// [`crowdfusion_jointdist::JointDist::thin_to`]. The `budget`
    /// highest-probability patterns are kept (ties toward the smaller
    /// pattern) and the trimmed mass is reinstated by renormalising the
    /// kept support, so the table's total mass is preserved exactly; the
    /// residual channel `pc` then spreads that reinstated mass across the
    /// answer lattice at evaluation time. Dense tables are returned
    /// unchanged — they are exact by construction and bounded by the
    /// dense fact limit, so there is nothing to control.
    pub fn thin_to(self, budget: usize) -> Result<AnswerTable, CoreError> {
        match self {
            AnswerTable::Dense { .. } => Ok(self),
            AnswerTable::Sparse { n, pc, entries } => {
                let entries = crowdfusion_jointdist::thin_support(&entries, budget).ok_or(
                    CoreError::Joint(crowdfusion_jointdist::JointError::EmptySupport),
                )?;
                Ok(AnswerTable::Sparse { n, pc, entries })
            }
        }
    }

    /// Number of facts the table covers.
    pub fn num_facts(&self) -> usize {
        match *self {
            AnswerTable::Dense { n, .. } | AnswerTable::Sparse { n, .. } => n,
        }
    }

    /// Number of stored entries (`2^n` dense, support size sparse).
    pub fn len(&self) -> usize {
        match self {
            AnswerTable::Dense { probs, .. } => probs.len(),
            AnswerTable::Sparse { entries, .. } => entries.len(),
        }
    }

    /// Whether the table stores no entries (never true for valid tables).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The answer distribution of `tasks` as a dense `2^|tasks|` vector —
    /// entry `a` is the probability of the answer pattern whose bit `j`
    /// is the judgment of the `j`-th smallest member of `tasks`. Exact
    /// for both backends (up to the sparse table's own construction
    /// error); `|tasks|` is bounded by [`MAX_DENSE_FACTS`].
    pub fn distribution(&self, tasks: VarSet) -> Result<Vec<f64>, CoreError> {
        let n = self.num_facts();
        if let Some(bad) = tasks.difference(VarSet::all(n)).iter().next() {
            return Err(CoreError::TaskOutOfRange { index: bad, n });
        }
        let t = tasks.len();
        if t > MAX_DENSE_FACTS {
            return Err(CoreError::TooManyFacts {
                requested: t,
                limit: MAX_DENSE_FACTS,
            });
        }
        let mut out = vec![0.0f64; 1usize << t];
        match self {
            AnswerTable::Dense { probs, .. } => {
                // The channel is already applied; marginalise the dense
                // joint onto the task bits.
                for (pattern, &p) in probs.iter().enumerate() {
                    out[Assignment(pattern as u64).extract(tasks) as usize] += p;
                }
            }
            AnswerTable::Sparse { pc, entries, .. } => {
                for &(pattern, p) in entries {
                    out[Assignment(pattern).extract(tasks) as usize] += p;
                }
                bsc_transform_in_place(&mut out, t, *pc);
            }
        }
        Ok(out)
    }

    /// Entropy `H(T)` in bits of [`AnswerTable::distribution`].
    pub fn entropy(&self, tasks: VarSet) -> Result<f64, CoreError> {
        Ok(entropy_of_probs(self.distribution(tasks)?))
    }
}

/// Validates a task set against the distribution and the dense limit.
fn validate_tasks(dist: &JointDist, tasks: VarSet) -> Result<(), CoreError> {
    let n = dist.num_vars();
    if let Some(bad) = tasks.difference(VarSet::all(n)).iter().next() {
        return Err(CoreError::TaskOutOfRange { index: bad, n });
    }
    if tasks.len() > MAX_DENSE_FACTS {
        return Err(CoreError::TooManyFacts {
            requested: tasks.len(),
            limit: MAX_DENSE_FACTS,
        });
    }
    Ok(())
}

/// Computes the answer distribution for `tasks` with the requested
/// evaluator. The result is a dense vector of length `2^|tasks|`; entry `a`
/// is the probability of the answer pattern whose bit `j` is the judgment of
/// the `j`-th smallest member of `tasks`. An empty task set yields `[1.0]`.
pub fn answer_distribution(
    dist: &JointDist,
    tasks: VarSet,
    pc: f64,
    evaluator: AnswerEvaluator,
) -> Result<Vec<f64>, CoreError> {
    validate_pc(pc)?;
    validate_tasks(dist, tasks)?;
    match evaluator {
        AnswerEvaluator::Naive => Ok(answer_distribution_naive(dist, tasks, pc)),
        AnswerEvaluator::Butterfly => Ok(answer_distribution_butterfly(dist, tasks, pc)),
    }
}

/// The paper's brute-force Equation 2: for every answer pattern, scan the
/// whole output support counting `#Same` / `#Diff`.
fn answer_distribution_naive(dist: &JointDist, tasks: VarSet, pc: f64) -> Vec<f64> {
    let t = tasks.len();
    let patterns = 1usize << t;
    let mut out = vec![0.0f64; patterns];
    // Precompute pc^s (1-pc)^d for s + d = t.
    let weights: Vec<f64> = (0..=t)
        .map(|d| pc.powi((t - d) as i32) * (1.0 - pc).powi(d as i32))
        .collect();
    for (answer, slot) in out.iter_mut().enumerate() {
        let mut total = 0.0;
        for (o, p) in dist.iter() {
            let restricted = o.extract(tasks);
            let diff = (restricted ^ answer as u64).count_ones() as usize;
            total += p * weights[diff];
        }
        *slot = total;
    }
    out
}

/// Butterfly evaluation: scatter `P(o)` restricted to `tasks` onto the
/// pattern lattice, then per bit apply the binary symmetric channel
/// `[[pc, 1−pc], [1−pc, pc]]`.
fn answer_distribution_butterfly(dist: &JointDist, tasks: VarSet, pc: f64) -> Vec<f64> {
    let t = tasks.len();
    let patterns = 1usize << t;
    let mut w = vec![0.0f64; patterns];
    for (o, p) in dist.iter() {
        w[o.extract(tasks) as usize] += p;
    }
    bsc_transform_in_place(&mut w, t, pc);
    w
}

/// Applies the per-bit binary-symmetric-channel transform to a dense vector
/// over `t`-bit patterns, in place.
pub(crate) fn bsc_transform_in_place(w: &mut [f64], t: usize, pc: f64) {
    debug_assert_eq!(w.len(), 1usize << t);
    if pc == 1.0 {
        return; // identity channel
    }
    let q = 1.0 - pc;
    for bit in 0..t {
        let stride = 1usize << bit;
        let block = stride << 1;
        let mut base = 0;
        while base < w.len() {
            for i in base..base + stride {
                let lo = w[i];
                let hi = w[i + stride];
                w[i] = pc * lo + q * hi;
                w[i + stride] = q * lo + pc * hi;
            }
            base += block;
        }
    }
}

/// Entropy `H(T)` of the answer distribution for `tasks`, in bits — the
/// paper's optimisation objective (Equation 4).
pub fn answer_entropy(
    dist: &JointDist,
    tasks: VarSet,
    pc: f64,
    evaluator: AnswerEvaluator,
) -> Result<f64, CoreError> {
    Ok(entropy_of_probs(answer_distribution(
        dist, tasks, pc, evaluator,
    )?))
}

/// The full answer joint distribution over *all* `n` facts — the paper's
/// preprocessing artefact (Table IV). Dense vector of length `2^n` indexed
/// by answer pattern (bit `i` = judgment of fact `i`).
pub fn full_answer_distribution(
    dist: &JointDist,
    pc: f64,
    evaluator: AnswerEvaluator,
) -> Result<Vec<f64>, CoreError> {
    answer_distribution(dist, VarSet::all(dist.num_vars()), pc, evaluator)
}

/// Bayesian merge of crowd answers (Equation 3): multiplies each output's
/// probability by `Pc^#Same (1 − Pc)^#Diff` and renormalises.
///
/// `tasks` and `answers` are parallel: `answers[j]` is the crowd judgment of
/// fact `tasks[j]`. Duplicate task indices within one batch are rejected.
pub fn posterior(
    dist: &JointDist,
    tasks: &[usize],
    answers: &[bool],
    pc: f64,
) -> Result<JointDist, CoreError> {
    let mut updated = dist.clone();
    posterior_in_place(&mut updated, tasks, answers, pc)?;
    Ok(updated)
}

/// [`posterior`] without the clone: updates `dist` through the in-place
/// reweight fast path ([`JointDist::reweight_in_place`]), which reuses the
/// sorted support vector instead of re-merging every entry through a
/// `BTreeMap`. This is the round driver's per-round merge.
///
/// Validation happens before any mutation, so argument errors leave `dist`
/// untouched. A [`CoreError::Joint`]-wrapped zero-mass error (all
/// likelihoods underflowed — unreachable for `Pc ∈ [0.5, 1]` on a
/// normalised prior) may leave `dist` unnormalised; callers must treat the
/// distribution as poisoned on error, as the round drivers do by aborting
/// the run.
pub fn posterior_in_place(
    dist: &mut JointDist,
    tasks: &[usize],
    answers: &[bool],
    pc: f64,
) -> Result<(), CoreError> {
    validate_pc(pc)?;
    if tasks.len() != answers.len() {
        return Err(CoreError::AnswerLengthMismatch {
            tasks: tasks.len(),
            answers: answers.len(),
        });
    }
    if tasks.is_empty() {
        return Ok(());
    }
    let mut seen = VarSet::EMPTY;
    let mut answer_bits = Assignment::ALL_FALSE;
    for (&task, &ans) in tasks.iter().zip(answers) {
        if task >= dist.num_vars() {
            return Err(CoreError::TaskOutOfRange {
                index: task,
                n: dist.num_vars(),
            });
        }
        if seen.contains(task) {
            return Err(CoreError::DuplicateTask(task));
        }
        seen = seen.insert(task);
        answer_bits = answer_bits.with(task, ans);
    }
    if pc == 0.5 {
        // Pure-noise answers carry no information; skip the reweight, which
        // would multiply every output by the same constant.
        return Ok(());
    }
    let q = 1.0 - pc;
    let t = tasks.len() as u32;
    dist.reweight_in_place(|o| {
        let diff = o.hamming_on(answer_bits, seen);
        pc.powi((t - diff) as i32) * q.powi(diff as i32)
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdfusion_jointdist::presets::paper_running_example;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 5e-4 // paper reports 3 decimals
    }

    /// Table IV of the paper: the answer joint distribution for the running
    /// example with Pc = 0.8, rows a1..a16 in (f1, f2, f3, f4) order with f4
    /// varying fastest.
    const TABLE_IV: [f64; 16] = [
        0.049, 0.050, 0.063, 0.055, 0.071, 0.049, 0.087, 0.077, 0.047, 0.051, 0.052, 0.056, 0.065,
        0.071, 0.073, 0.085,
    ];

    fn table_iv_index(row: usize) -> usize {
        // Row bit 3 -> f1 (var 0) ... bit 0 -> f4 (var 3); our pattern index
        // has bit v = fact v.
        let mut idx = 0usize;
        for v in 0..4 {
            if (row >> (3 - v)) & 1 == 1 {
                idx |= 1 << v;
            }
        }
        idx
    }

    #[test]
    fn full_answer_distribution_matches_table_iv() {
        let d = paper_running_example();
        for ev in [AnswerEvaluator::Naive, AnswerEvaluator::Butterfly] {
            let ans = full_answer_distribution(&d, 0.8, ev).unwrap();
            assert_eq!(ans.len(), 16);
            for (row, &expected) in TABLE_IV.iter().enumerate() {
                let got = ans[table_iv_index(row)];
                assert!(
                    close(got, expected),
                    "{ev:?} a{} = {got:.4}, paper says {expected}",
                    row + 1
                );
            }
            let total: f64 = ans.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn evaluators_agree_on_running_example() {
        let d = paper_running_example();
        for bits in 1u64..16 {
            let tasks = VarSet(bits);
            let a = answer_distribution(&d, tasks, 0.8, AnswerEvaluator::Naive).unwrap();
            let b = answer_distribution(&d, tasks, 0.8, AnswerEvaluator::Butterfly).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12, "mismatch for tasks {tasks}");
            }
        }
    }

    #[test]
    fn empty_task_set_is_trivial() {
        let d = paper_running_example();
        let a = answer_distribution(&d, VarSet::EMPTY, 0.8, AnswerEvaluator::Butterfly).unwrap();
        assert_eq!(a.len(), 1);
        assert!((a[0] - 1.0).abs() < 1e-9);
        let h = answer_entropy(&d, VarSet::EMPTY, 0.8, AnswerEvaluator::Naive).unwrap();
        assert!(h.abs() < 1e-9);
    }

    #[test]
    fn single_task_entropy_is_one_bit_for_f1() {
        // Paper Section III-D: H({Ans_{f1}}) = 1 (P(f1) = 0.5 stays 0.5
        // through the symmetric channel).
        let d = paper_running_example();
        let h = answer_entropy(&d, VarSet::single(0), 0.8, AnswerEvaluator::Naive).unwrap();
        assert!((h - 1.0).abs() < 1e-9);
    }

    // NOTE on Table III row labels: the paper's Table III is internally
    // inconsistent with Tables I/II. Under the Table I/II fact order (which
    // our presets reproduce exactly, including all four marginals and the
    // Section III-A worked numbers), the Table III values are recovered by
    // relabelling f1 ↔ f4 and f2 ↔ f3 in its first column. The affected
    // rows swap pairwise ({f1,f2} ↔ {f3,f4}, {f1,f3} ↔ {f2,f4}); {f1,f4}
    // and {f2,f3} are invariant — in particular the paper's conclusions
    // (best task set {f1,f4} at Pc = 0.8) are unaffected. The tests below
    // encode the permuted (self-consistent) labelling.

    #[test]
    fn table_iii_task_entropies() {
        // Paper Table III: H(T) for all 2-subsets at Pc = 0.8, with the
        // label permutation documented above.
        let d = paper_running_example();
        let cases = [
            (VarSet::from_vars([0, 1]), 1.982), // paper row {f3, f4}
            (VarSet::from_vars([0, 2]), 1.993), // paper row {f2, f4}
            (VarSet::from_vars([0, 3]), 1.997), // paper row {f1, f4}
            (VarSet::from_vars([1, 2]), 1.975), // paper row {f2, f3}
            (VarSet::from_vars([1, 3]), 1.982), // paper row {f1, f3}
            (VarSet::from_vars([2, 3]), 1.993), // paper row {f1, f2}
        ];
        for (tasks, expected) in cases {
            let h = answer_entropy(&d, tasks, 0.8, AnswerEvaluator::Butterfly).unwrap();
            assert!(
                (h - expected).abs() < 5e-4,
                "H({tasks}) = {h:.4}, paper says {expected}"
            );
        }
    }

    #[test]
    fn table_iii_fact_entropies() {
        // Paper Table III column H({f_i | f_i ∈ T}) — the entropy of the
        // facts themselves (equivalently the Pc = 1 answer channel) — with
        // the label permutation documented above.
        let d = paper_running_example();
        let cases = [
            (VarSet::from_vars([0, 1]), 1.948), // paper row {f3, f4}
            (VarSet::from_vars([0, 2]), 1.977), // paper row {f2, f4}
            (VarSet::from_vars([0, 3]), 1.976), // paper row {f1, f4}
            (VarSet::from_vars([1, 2]), 1.929), // paper row {f2, f3}
            (VarSet::from_vars([1, 3]), 1.949), // paper row {f1, f3}
            (VarSet::from_vars([2, 3]), 1.981), // paper row {f1, f2}
        ];
        for (tasks, expected) in cases {
            let h = answer_entropy(&d, tasks, 1.0, AnswerEvaluator::Naive).unwrap();
            assert!(
                (h - expected).abs() < 5e-4,
                "H(facts {tasks}) = {h:.4}, paper says {expected}"
            );
        }
    }

    #[test]
    fn posterior_matches_paper_worked_example() {
        // Ask f1, receive "true", Pc = 0.8 (paper Section III-A):
        // P(o1 | e) = 0.012, P(o9 | e) = 0.064.
        let d = paper_running_example();
        let post = posterior(&d, &[0], &[true], 0.8).unwrap();
        assert!(close(post.prob(Assignment(0b0000)), 0.012));
        assert!(close(post.prob(Assignment(0b0001)), 0.064));
        assert!((post.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn posterior_in_place_matches_posterior_exactly() {
        let d = paper_running_example();
        for (tasks, answers, pc) in [
            (vec![0usize], vec![true], 0.8),
            (vec![1, 3], vec![false, true], 0.9),
            (vec![0, 1, 2, 3], vec![true, true, false, true], 0.55),
            (vec![2], vec![false], 1.0),
            (vec![0, 2], vec![true, false], 0.5),
            (vec![], vec![], 0.8),
        ] {
            let merged = posterior(&d, &tasks, &answers, pc).unwrap();
            let mut fast = d.clone();
            posterior_in_place(&mut fast, &tasks, &answers, pc).unwrap();
            assert_eq!(merged, fast, "tasks {tasks:?} pc {pc}");
        }
    }

    #[test]
    fn posterior_in_place_validation_leaves_dist_untouched() {
        let d = paper_running_example();
        let mut m = d.clone();
        assert!(posterior_in_place(&mut m, &[9], &[true], 0.8).is_err());
        assert!(posterior_in_place(&mut m, &[0], &[true, false], 0.8).is_err());
        assert!(posterior_in_place(&mut m, &[1, 1], &[true, true], 0.8).is_err());
        assert!(posterior_in_place(&mut m, &[0], &[true], 0.2).is_err());
        assert_eq!(m, d);
    }

    #[test]
    fn posterior_with_noise_pc_is_identity() {
        let d = paper_running_example();
        let post = posterior(&d, &[0, 2], &[true, false], 0.5).unwrap();
        assert_eq!(post, d);
    }

    #[test]
    fn posterior_with_perfect_crowd_conditions() {
        let d = paper_running_example();
        let post = posterior(&d, &[0], &[true], 1.0).unwrap();
        let cond = d.condition(0, true).unwrap();
        for (a, p) in cond.iter() {
            assert!((post.prob(a) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn posterior_validation() {
        let d = paper_running_example();
        assert!(matches!(
            posterior(&d, &[0], &[true, false], 0.8),
            Err(CoreError::AnswerLengthMismatch { .. })
        ));
        assert!(matches!(
            posterior(&d, &[9], &[true], 0.8),
            Err(CoreError::TaskOutOfRange { .. })
        ));
        assert!(matches!(
            posterior(&d, &[1, 1], &[true, true], 0.8),
            Err(CoreError::DuplicateTask(1))
        ));
        assert!(matches!(
            posterior(&d, &[0], &[true], 0.3),
            Err(CoreError::InvalidAccuracy(_))
        ));
        let same = posterior(&d, &[], &[], 0.8).unwrap();
        assert_eq!(same, d);
    }

    #[test]
    fn answer_distribution_validation() {
        let d = paper_running_example();
        assert!(matches!(
            answer_distribution(&d, VarSet::from_vars([5]), 0.8, AnswerEvaluator::Naive),
            Err(CoreError::TaskOutOfRange { .. })
        ));
        assert!(matches!(
            answer_distribution(&d, VarSet::single(0), 1.2, AnswerEvaluator::Naive),
            Err(CoreError::InvalidAccuracy(_))
        ));
    }

    #[test]
    fn repeated_posteriors_converge_to_truth() {
        // Asking the same fact many times with informative answers should
        // drive its marginal toward certainty.
        let d = paper_running_example();
        let mut cur = d;
        for _ in 0..40 {
            cur = posterior(&cur, &[3], &[true], 0.8).unwrap();
        }
        assert!(cur.marginal(3).unwrap() > 0.999);
    }

    #[test]
    fn answer_table_backends_agree_on_running_example() {
        let d = paper_running_example();
        let dense = AnswerTable::dense(&d, 0.8, AnswerEvaluator::Butterfly).unwrap();
        let sparse = AnswerTable::sparse(&d, 0.8).unwrap();
        assert_eq!(dense.num_facts(), 4);
        assert_eq!(dense.len(), 16);
        assert_eq!(sparse.num_facts(), 4);
        assert!(!sparse.is_empty());
        for bits in 0u64..16 {
            let tasks = VarSet(bits);
            let a = dense.distribution(tasks).unwrap();
            let b = sparse.distribution(tasks).unwrap();
            let c = if tasks == VarSet::EMPTY {
                vec![1.0]
            } else {
                answer_distribution(&d, tasks, 0.8, AnswerEvaluator::Butterfly).unwrap()
            };
            for ((x, y), z) in a.iter().zip(&b).zip(&c) {
                assert!((x - y).abs() < 1e-12, "dense vs sparse at {tasks}");
                assert!((y - z).abs() < 1e-12, "sparse vs evaluator at {tasks}");
            }
            assert!((dense.entropy(tasks).unwrap() - sparse.entropy(tasks).unwrap()).abs() < 1e-12);
        }
    }

    #[test]
    fn answer_table_sampled_converges() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let d = paper_running_example();
        let mut rng = StdRng::seed_from_u64(9);
        let sampled = AnswerTable::sampled(&d, 0.8, 150_000, &mut rng).unwrap();
        let exact = AnswerTable::sparse(&d, 0.8).unwrap();
        for bits in 1u64..16 {
            let tasks = VarSet(bits);
            let a = sampled.distribution(tasks).unwrap();
            let b = exact.distribution(tasks).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 0.01, "sampled vs exact at {tasks}");
            }
        }
        assert!(matches!(
            AnswerTable::sampled(&d, 0.8, 0, &mut rng),
            Err(CoreError::Joint(_))
        ));
        assert!(matches!(
            AnswerTable::sampled(&d, 0.2, 100, &mut rng),
            Err(CoreError::InvalidAccuracy(_))
        ));
    }

    #[test]
    fn answer_table_validation() {
        let d = paper_running_example();
        assert!(matches!(
            AnswerTable::sparse(&d, 1.2),
            Err(CoreError::InvalidAccuracy(_))
        ));
        let t = AnswerTable::sparse(&d, 0.8).unwrap();
        assert!(matches!(
            t.distribution(VarSet::from_vars([9])),
            Err(CoreError::TaskOutOfRange { .. })
        ));
    }

    #[test]
    fn dense_boundary_accepts_max_dense_facts() {
        // n == MAX_DENSE_FACTS is the last size the dense paths accept.
        // Pc = 1 keeps the check cheap (the channel is the identity, so
        // the dense table is just the scattered support).
        use crate::MAX_DENSE_FACTS;
        let truth = Assignment(0b1011);
        let d = JointDist::certain(MAX_DENSE_FACTS, truth).unwrap();
        let table = full_answer_distribution(&d, 1.0, AnswerEvaluator::Butterfly).unwrap();
        assert_eq!(table.len(), 1usize << MAX_DENSE_FACTS);
        assert_eq!(table[truth.0 as usize], 1.0);
        let tasks = VarSet::all(MAX_DENSE_FACTS);
        assert!(answer_distribution(&d, tasks, 1.0, AnswerEvaluator::Butterfly).is_ok());
    }

    #[test]
    fn dense_boundary_rejects_one_past_the_limit_where_sparse_takes_over() {
        // n == MAX_DENSE_FACTS + 1 must fail in every *dense* entry point
        // (the validation fires before any allocation) while the sparse
        // table accepts the same distribution.
        use crate::MAX_DENSE_FACTS;
        let n = MAX_DENSE_FACTS + 1;
        let d = JointDist::certain(n, Assignment(0b111)).unwrap();
        assert!(matches!(
            full_answer_distribution(&d, 0.8, AnswerEvaluator::Naive),
            Err(CoreError::TooManyFacts { requested, limit })
                if requested == n && limit == MAX_DENSE_FACTS
        ));
        assert!(matches!(
            full_answer_distribution(&d, 0.8, AnswerEvaluator::Butterfly),
            Err(CoreError::TooManyFacts { .. })
        ));
        assert!(matches!(
            answer_distribution(&d, VarSet::all(n), 0.8, AnswerEvaluator::Butterfly),
            Err(CoreError::TooManyFacts { .. })
        ));
        assert!(matches!(
            AnswerTable::dense(&d, 0.8, AnswerEvaluator::Butterfly),
            Err(CoreError::TooManyFacts { .. })
        ));
        // Small task sets on the oversized entity remain legal: the limit
        // is about task-set width, not entity width.
        let small = VarSet::from_vars([0, n - 1]);
        let a = answer_distribution(&d, small, 0.8, AnswerEvaluator::Butterfly).unwrap();
        assert_eq!(a.len(), 4);
        // And the sparse table covers the full entity exactly.
        let sparse = AnswerTable::sparse(&d, 0.8).unwrap();
        assert_eq!(sparse.num_facts(), n);
        let b = sparse.distribution(small).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn thin_to_preserves_mass_and_agrees_within_budget() {
        let d = paper_running_example();
        let sparse = AnswerTable::sparse(&d, 0.8).unwrap();
        let support = sparse.len();
        // Within budget: bit-identical, distributions agree exactly.
        let same = sparse.clone().thin_to(support).unwrap();
        assert_eq!(same, sparse);
        let full = VarSet::all(4);
        let a = sparse.distribution(full).unwrap();
        let b = same.distribution(full).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < crowdfusion_jointdist::PROB_EPSILON);
        }
        // Thinned: support shrinks to the budget, total mass is pinned.
        let thin = sparse.clone().thin_to(support / 2).unwrap();
        assert_eq!(thin.len(), support / 2);
        let mass: f64 = thin.distribution(full).unwrap().iter().sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
        // Deterministic: same input, same thinned table.
        assert_eq!(thin, sparse.clone().thin_to(support / 2).unwrap());
        // Zero budget is rejected; dense tables pass through unchanged.
        assert!(sparse.thin_to(0).is_err());
        let dense = AnswerTable::dense(&d, 0.8, AnswerEvaluator::Butterfly).unwrap();
        let same_dense = dense.clone().thin_to(1).unwrap();
        assert_eq!(same_dense, dense);
    }

    #[test]
    fn bsc_transform_preserves_mass_and_is_identity_at_pc1() {
        let mut w = vec![0.1, 0.2, 0.3, 0.4];
        bsc_transform_in_place(&mut w, 2, 1.0);
        assert_eq!(w, vec![0.1, 0.2, 0.3, 0.4]);
        bsc_transform_in_place(&mut w, 2, 0.7);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Pc = 0.5 collapses everything to uniform.
        let mut w = vec![1.0, 0.0, 0.0, 0.0];
        bsc_transform_in_place(&mut w, 2, 0.5);
        for x in w {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }
}
