//! Cross-session crowd-budget scheduling.
//!
//! [`crate::allocation::run_global`] implements the paper's Section V-D
//! suggestion — spend a single budget where the expected utility gain per
//! judgment is greatest — but only as an *offline* loop over a fixed slice
//! of entities. The serving daemon needs the same policy online: sessions
//! open and close concurrently, rounds are absorbed out of order, and the
//! scheduler state must survive crashes byte-identically.
//!
//! This module is the deterministic core that both callers share:
//!
//! - [`entity_gain`] — the marginal gain of the best next judgment for one
//!   entity, computed from [`crate::selection::ScatterCache`] so it works
//!   on sparse supports far beyond the dense `2^n` limit;
//! - [`GainQueue`] — a priority queue over sessions ordered by
//!   `(gain_bits desc, session_id asc)`, the scheduler's admission order;
//! - [`BudgetLedger`] — the spent/remaining accounting that rides the
//!   serving WAL and snapshots.
//!
//! Everything here is a pure function of its inputs: gains are encoded as
//! the IEEE-754 bit pattern of a non-negative `f64` (monotone, total, and
//! stable across platforms), so two daemons replaying the same effect
//! stream make identical scheduling decisions regardless of shard count or
//! thread count.

mod ledger;
mod queue;

pub use ledger::{BudgetLedger, LedgerError};
pub use queue::{gain_bits, gain_from_bits, GainEntry, GainQueue};

use crate::error::CoreError;
use crate::selection::ScatterCache;
use crowdfusion_jointdist::JointDist;

/// The best `(fact, gain)` the crowd could be asked next for an entity in
/// state `dist`: `gain = H({f}) − H(Pc)` bits of mutual information,
/// clamped at zero, maximised over facts with ties broken on the lowest
/// fact index. `None` for a zero-fact entity.
///
/// Equivalent to the ranking inside [`crate::allocation::run_global`], but
/// evaluated through the [`ScatterCache`] incremental-gain hook so it is
/// exact on sparse supports too.
pub fn entity_gain(dist: &JointDist, pc: f64) -> Result<Option<(usize, f64)>, CoreError> {
    crate::validate_pc(pc)?;
    let cache = ScatterCache::new(dist);
    let mut scratch = Vec::new();
    Ok(cache.best_marginal_gain(dist.num_vars(), pc, &mut scratch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::single_task_gain;
    use crowdfusion_jointdist::{Assignment, FactorGraphBuilder, JointDist};

    #[test]
    fn rejects_invalid_pc() {
        let d = JointDist::uniform(2).unwrap();
        assert!(entity_gain(&d, 0.4).is_err());
        assert!(entity_gain(&d, 1.1).is_err());
    }

    #[test]
    fn matches_allocation_gain_on_dense_entities() {
        let dists = [
            crowdfusion_jointdist::presets::paper_running_example(),
            JointDist::independent(&[0.9, 0.5, 0.1, 0.7]).unwrap(),
            JointDist::uniform(3).unwrap(),
        ];
        for dist in &dists {
            for pc in [0.6, 0.8, 0.95] {
                let (fact, gain) = entity_gain(dist, pc).unwrap().unwrap();
                // Brute-force reference: argmax of the allocation-module
                // gain, lowest fact on ties.
                let mut best = (0usize, f64::MIN);
                for f in 0..dist.num_vars() {
                    let g = single_task_gain(dist, f, pc).unwrap();
                    if g > best.1 {
                        best = (f, g);
                    }
                }
                assert_eq!(fact, best.0, "fact for pc={pc}");
                assert!((gain - best.1).abs() < 1e-12, "gain for pc={pc}");
            }
        }
    }

    #[test]
    fn certain_entity_has_zero_gain() {
        let d = JointDist::certain(3, Assignment(0b101)).unwrap();
        let (_, gain) = entity_gain(&d, 0.8).unwrap().unwrap();
        assert!(gain < 1e-12, "gain {gain}");
    }

    #[test]
    fn works_on_sparse_supports() {
        // A 30-fact entity is far beyond the dense 2^n limit; the gain must
        // still be finite, non-negative, and positive for uncertain facts.
        let n = 30;
        let marginals: Vec<f64> = (0..n)
            .map(|f| if f % 3 == 0 { 0.5 } else { 0.95 })
            .collect();
        let dist = FactorGraphBuilder::new(marginals)
            .build_sparse(512, &mut rand_rng(7))
            .unwrap();
        let (fact, gain) = entity_gain(&dist, 0.85).unwrap().unwrap();
        assert!(gain > 0.0, "gain {gain}");
        assert_eq!(fact % 3, 0, "an uncertain fact should win, got {fact}");
    }

    fn rand_rng(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }
}
