//! The deterministic gain-ordered priority queue.
//!
//! Admission order is the scheduler's whole contract: the session with the
//! highest marginal gain goes first, ties break on the lowest session id,
//! and the intra-entity fact tie-break already happened when the gain was
//! computed (lowest fact wins, see [`super::entity_gain`]). To make that
//! order bit-stable across platforms and replay paths, gains are carried as
//! the IEEE-754 bit pattern of a non-negative `f64`: for `x, y >= 0`,
//! `x < y  ⇔  x.to_bits() < y.to_bits()`, so integer comparison on the
//! encoded form reproduces float comparison exactly — with no NaN or `-0.0`
//! edge cases once clamped.

use std::collections::{BTreeMap, BTreeSet};

/// Encodes a gain (bits of expected entropy reduction) as an
/// order-preserving `u64`. Non-positive gains (including `-0.0`) all map to
/// `0`; NaN cannot arise from entropy differences but would be rejected by
/// the clamp too.
pub fn gain_bits(gain: f64) -> u64 {
    if gain > 0.0 {
        gain.to_bits()
    } else {
        0
    }
}

/// Decodes [`gain_bits`] back to the gain value (for display and status
/// reporting; the queue itself never needs the float).
pub fn gain_from_bits(bits: u64) -> f64 {
    if bits == 0 {
        0.0
    } else {
        f64::from_bits(bits)
    }
}

/// One scheduled candidate: a session, the fact its gain came from, and the
/// gain in both encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GainEntry {
    /// Session (= entity, in serve's one-entity-per-session model) id.
    pub session: u64,
    /// The fact whose single-task gain won within the entity.
    pub fact: usize,
    /// Order-preserving encoding of the gain.
    pub bits: u64,
}

impl GainEntry {
    /// The gain in bits-of-entropy, decoded.
    pub fn gain(&self) -> f64 {
        gain_from_bits(self.bits)
    }
}

/// Priority queue over sessions keyed by `(gain_bits desc, session asc)`.
///
/// Both sides are `BTree`-backed so iteration order is deterministic and
/// the structure is a pure function of its insert/remove history — no
/// hashing, no allocation-order effects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GainQueue {
    /// `(!bits, session)` — complementing the bits turns descending-gain
    /// into the BTreeSet's natural ascending order.
    order: BTreeSet<(u64, u64)>,
    /// session → (bits, fact), for O(log n) replacement and removal.
    entries: BTreeMap<u64, (u64, usize)>,
}

impl GainQueue {
    /// An empty queue.
    pub fn new() -> GainQueue {
        GainQueue::default()
    }

    /// Number of queued sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or replaces a session's candidate task and gain.
    pub fn insert(&mut self, session: u64, fact: usize, gain: f64) {
        let bits = gain_bits(gain);
        if let Some((old_bits, _)) = self.entries.insert(session, (bits, fact)) {
            self.order.remove(&(!old_bits, session));
        }
        self.order.insert((!bits, session));
    }

    /// Removes a session (no-op when absent). Returns whether it was
    /// present.
    pub fn remove(&mut self, session: u64) -> bool {
        match self.entries.remove(&session) {
            Some((bits, _)) => {
                self.order.remove(&(!bits, session));
                true
            }
            None => false,
        }
    }

    /// The current best candidate without removing it.
    pub fn peek(&self) -> Option<GainEntry> {
        let &(inv, session) = self.order.iter().next()?;
        let &(bits, fact) = self.entries.get(&session).expect("order/entries in sync");
        debug_assert_eq!(!inv, bits);
        Some(GainEntry {
            session,
            fact,
            bits,
        })
    }

    /// Removes and returns the current best candidate.
    pub fn pop_best(&mut self) -> Option<GainEntry> {
        let entry = self.peek()?;
        self.remove(entry.session);
        Some(entry)
    }

    /// The queued entry for one session, if any.
    pub fn get(&self, session: u64) -> Option<GainEntry> {
        let &(bits, fact) = self.entries.get(&session)?;
        Some(GainEntry {
            session,
            fact,
            bits,
        })
    }

    /// All entries in admission order (best first). Used by status
    /// reporting; allocates a fresh vec.
    pub fn ranked(&self) -> Vec<GainEntry> {
        self.order
            .iter()
            .map(|&(_, session)| self.get(session).expect("order/entries in sync"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_bits_is_monotone_on_non_negatives() {
        let gains = [0.0, 1e-300, 1e-12, 0.3, 0.9999, 1.0, 7.5];
        for w in gains.windows(2) {
            assert!(
                gain_bits(w[0]) < gain_bits(w[1]) || w[0] == w[1],
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        // Clamp: negative zero and negative gains collapse to 0.
        assert_eq!(gain_bits(-0.0), 0);
        assert_eq!(gain_bits(-1.0), 0);
        assert_eq!(gain_from_bits(gain_bits(0.75)), 0.75);
        assert_eq!(gain_from_bits(0), 0.0);
    }

    #[test]
    fn pops_in_descending_gain_order() {
        let mut q = GainQueue::new();
        q.insert(3, 0, 0.2);
        q.insert(1, 2, 0.9);
        q.insert(2, 1, 0.5);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_best().map(|e| e.session)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_gains_break_on_lowest_session() {
        let mut q = GainQueue::new();
        q.insert(9, 0, 0.5);
        q.insert(4, 1, 0.5);
        q.insert(7, 2, 0.5);
        let order: Vec<u64> = q.ranked().iter().map(|e| e.session).collect();
        assert_eq!(order, vec![4, 7, 9]);
    }

    #[test]
    fn insert_replaces_and_reorders() {
        let mut q = GainQueue::new();
        q.insert(1, 0, 0.9);
        q.insert(2, 0, 0.5);
        assert_eq!(q.peek().unwrap().session, 1);
        // Session 1's entity got easier; it must fall behind session 2.
        q.insert(1, 3, 0.1);
        assert_eq!(q.len(), 2);
        let top = q.peek().unwrap();
        assert_eq!(top.session, 2);
        assert_eq!(q.get(1).unwrap().fact, 3);
        assert!((q.get(1).unwrap().gain() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn remove_is_idempotent() {
        let mut q = GainQueue::new();
        q.insert(5, 0, 0.3);
        assert!(q.remove(5));
        assert!(!q.remove(5));
        assert!(q.peek().is_none());
        assert!(q.pop_best().is_none());
    }

    #[test]
    fn zero_gain_sessions_still_queue_after_positive_ones() {
        let mut q = GainQueue::new();
        q.insert(1, 0, 0.0);
        q.insert(2, 0, 0.4);
        assert_eq!(q.pop_best().unwrap().session, 2);
        let last = q.pop_best().unwrap();
        assert_eq!(last.session, 1);
        assert_eq!(last.bits, 0);
    }
}
