//! The global crowd-budget ledger.
//!
//! A [`BudgetLedger`] is deliberately tiny — two integers — because it must
//! ride every durability surface the serving layer has: it is embedded in
//! snapshots, reconstructed from WAL replay (each journalled `Schedule`
//! effect charges the judgments of the round it opened), and compared
//! byte-for-byte across shard and thread counts by the chaos and
//! determinism suites.

use serde::{Deserialize, Serialize};

/// Charging more judgments than the ledger has left.
///
/// The scheduler never lets this happen on the live path (admission checks
/// `remaining()` first); surfacing it as an error instead of saturating
/// keeps WAL replay honest — a journal that overcharges is corrupt, not
/// merely unlucky.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerError {
    /// Judgments the charge asked for.
    pub requested: u64,
    /// Judgments that were actually left.
    pub remaining: u64,
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "budget overcharge: requested {} with {} remaining",
            self.requested, self.remaining
        )
    }
}

impl std::error::Error for LedgerError {}

/// Spent/remaining accounting for a shared crowd budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BudgetLedger {
    /// Total judgments the operator granted for the daemon's lifetime.
    pub budget: u64,
    /// Judgments charged so far. Invariant: `spent <= budget`.
    pub spent: u64,
}

impl BudgetLedger {
    /// A fresh ledger with nothing spent.
    pub fn new(budget: u64) -> BudgetLedger {
        BudgetLedger { budget, spent: 0 }
    }

    /// Judgments still available.
    pub fn remaining(&self) -> u64 {
        self.budget - self.spent
    }

    /// Whether the budget is fully spent.
    pub fn is_exhausted(&self) -> bool {
        self.spent >= self.budget
    }

    /// Charges `judgments` against the budget, failing if that would
    /// overspend (in which case the ledger is unchanged).
    pub fn charge(&mut self, judgments: u64) -> Result<(), LedgerError> {
        let remaining = self.remaining();
        if judgments > remaining {
            return Err(LedgerError {
                requested: judgments,
                remaining,
            });
        }
        self.spent += judgments;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_until_exhausted() {
        let mut ledger = BudgetLedger::new(5);
        assert_eq!(ledger.remaining(), 5);
        assert!(!ledger.is_exhausted());
        ledger.charge(3).unwrap();
        assert_eq!(ledger.remaining(), 2);
        ledger.charge(2).unwrap();
        assert!(ledger.is_exhausted());
        assert_eq!(ledger.remaining(), 0);
    }

    #[test]
    fn overcharge_is_an_error_and_leaves_state_alone() {
        let mut ledger = BudgetLedger::new(4);
        ledger.charge(3).unwrap();
        let err = ledger.charge(2).unwrap_err();
        assert_eq!(
            err,
            LedgerError {
                requested: 2,
                remaining: 1
            }
        );
        assert_eq!(ledger.spent, 3, "failed charge must not move the ledger");
        assert!(err.to_string().contains("overcharge"));
    }

    #[test]
    fn zero_budget_is_born_exhausted() {
        let ledger = BudgetLedger::new(0);
        assert!(ledger.is_exhausted());
        assert_eq!(ledger.remaining(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut ledger = BudgetLedger::new(9);
        ledger.charge(4).unwrap();
        let json = serde_json::to_string(&ledger).unwrap();
        let back: BudgetLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ledger);
    }
}
