//! The fork–join worker pool behind every sharded computation in the
//! selection engine.
//!
//! The paper observes (Section III-F) that the hot loops of CrowdFusion —
//! per-pattern Equation 2 sums, per-candidate greedy evaluations,
//! per-entity experiment rounds — are all embarrassingly parallel. This
//! module gives those call sites one shared primitive instead of bespoke
//! `crossbeam::thread::scope` blocks: a [`Pool`] of `threads` workers with
//! [`Pool::for_each_chunk`] (shard a mutable slice) and
//! [`Pool::map_reduce`] (map an index range, fold the results in index
//! order).
//!
//! Determinism is the design constraint: every primitive assigns work by
//! contiguous index ranges and reduces in index order, so results are
//! identical for any thread count — the property tests in
//! `tests/engine_parallel.rs` pin this down bit for bit. The pool is
//! scoped (fork–join per call, no persistent workers): the vendored
//! `crossbeam` maps onto `std::thread::scope`, and measured spawn cost is
//! small against the per-round work the engine shards.

use std::num::NonZeroUsize;

/// Environment variable overriding [`Pool::from_env`]'s thread count.
pub const THREADS_ENV: &str = "CROWDFUSION_THREADS";

/// The thread count requested via [`THREADS_ENV`]. The CLI's
/// `refine --threads` fallback and [`Pool::from_env`] both resolve the
/// variable through this one lookup.
///
/// Returns `None` when the variable is unset, [`threads_from_value`]
/// otherwise — so a *set but malformed* value (`0`, non-numeric,
/// whitespace-only) clamps to 1 worker with a warning on stderr instead
/// of being silently ignored (which would fall back to the machine's
/// full parallelism, the opposite of what a value like `0` plausibly
/// asked for).
pub fn threads_from_env() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .map(|raw| threads_from_value(&raw))
}

/// Parses one [`THREADS_ENV`]-style value. Surrounding whitespace is
/// ignored (`" 4 "` is 4); anything that does not parse to a positive
/// integer — `0`, the empty string, whitespace, non-numeric text — is
/// clamped to 1 with a warning on stderr, matching [`Pool::new`]'s
/// clamp-don't-panic contract.
pub fn threads_from_value(raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(t) if t > 0 => t,
        _ => {
            eprintln!(
                "warning: {THREADS_ENV}={raw:?} is not a positive integer; \
                 clamping to 1 worker"
            );
            1
        }
    }
}

/// A scoped fork–join pool with a fixed worker count.
///
/// `Pool::new(1)` (or [`Pool::serial`]) never spawns threads — every
/// primitive degrades to a plain loop — so serial callers pay no
/// synchronisation cost and the parallel code path is the only code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::serial()
    }
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The single-threaded pool: primitives run inline, no threads spawn.
    pub fn serial() -> Pool {
        Pool { threads: 1 }
    }

    /// A pool sized from the environment: `CROWDFUSION_THREADS` if set to
    /// a positive integer, otherwise the machine's available parallelism.
    pub fn from_env() -> Pool {
        let threads = threads_from_env().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
        Pool::new(threads)
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `data` into contiguous chunks of `chunk_size` and runs
    /// `f(base_index, chunk)` on each, in parallel across the workers.
    ///
    /// The caller picks `chunk_size` because some workloads need
    /// alignment (the butterfly stages shard on whole transform blocks);
    /// use [`Pool::chunk_size`] for an even split. At most
    /// [`Pool::threads`] workers run regardless of the chunk count
    /// (excess chunks are dealt round-robin to the workers). Chunking
    /// never affects results: each element is written by exactly one
    /// worker.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk_size = chunk_size.max(1);
        if self.threads == 1 || data.len() <= chunk_size {
            for (c, chunk) in data.chunks_mut(chunk_size).enumerate() {
                f(c * chunk_size, chunk);
            }
            return;
        }
        // Deal the chunks round-robin onto at most `threads` work lists.
        let chunk_count = data.len().div_ceil(chunk_size);
        let workers = self.threads.min(chunk_count);
        let mut lists: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
        for (c, chunk) in data.chunks_mut(chunk_size).enumerate() {
            lists[c % workers].push((c * chunk_size, chunk));
        }
        crossbeam::thread::scope(|scope| {
            // The calling thread is worker 0: it takes the first list
            // itself, so N-way sharding costs N − 1 spawns.
            let mut lists = lists.into_iter();
            let first = lists.next();
            for list in lists {
                let f = &f;
                scope.spawn(move |_| {
                    for (base, chunk) in list {
                        f(base, chunk);
                    }
                });
            }
            for (base, chunk) in first.into_iter().flatten() {
                f(base, chunk);
            }
        })
        .expect("pool worker panicked");
    }

    /// Maps every index in `0..n` through `map` in parallel, then folds
    /// the results **in index order** with `fold` — so the reduction is
    /// deterministic regardless of the thread count or completion order.
    pub fn map_reduce<T, A, M, F>(&self, n: usize, map: M, init: A, mut fold: F) -> A
    where
        T: Send,
        M: Fn(usize) -> T + Sync,
        F: FnMut(A, T) -> A,
    {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        self.for_each_chunk(&mut slots, self.chunk_size(n), |base, chunk| {
            for (offset, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(map(base + offset));
            }
        });
        let mut acc = init;
        for slot in slots {
            acc = fold(acc, slot.expect("every index mapped"));
        }
        acc
    }

    /// The chunk size that spreads `n` items evenly over the workers.
    pub fn chunk_size(&self, n: usize) -> usize {
        n.div_ceil(self.threads).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_chunking_agree() {
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let mut data = vec![0u64; 37];
            let chunk_size = pool.chunk_size(data.len());
            pool.for_each_chunk(&mut data, chunk_size, |base, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = (base + i) as u64 * 3;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
        }
    }

    #[test]
    fn chunk_alignment_is_respected() {
        // Butterfly-style sharding: chunks must hold whole 8-blocks.
        let pool = Pool::new(4);
        let mut data = vec![0usize; 64];
        pool.for_each_chunk(&mut data, 16, |base, chunk| {
            assert_eq!(base % 16, 0);
            assert_eq!(chunk.len(), 16);
            for slot in chunk.iter_mut() {
                *slot = base;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[63], 48);
    }

    #[test]
    fn many_small_chunks_stay_within_the_worker_budget() {
        // 34 chunks on a 4-thread pool must not fork 34 threads; every
        // element is still written exactly once with the right base.
        let pool = Pool::new(4);
        let mut data = vec![0usize; 100];
        pool.for_each_chunk(&mut data, 3, |base, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                assert_eq!(*slot, 0, "element written twice");
                *slot = base + i + 1;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn map_reduce_folds_in_index_order() {
        for threads in [1usize, 2, 5] {
            let pool = Pool::new(threads);
            let order = pool.map_reduce(
                10,
                |i| i,
                Vec::new(),
                |mut acc: Vec<usize>, i| {
                    acc.push(i);
                    acc
                },
            );
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_reduce_handles_empty_and_single() {
        let pool = Pool::new(3);
        assert_eq!(pool.map_reduce(0, |i| i, 7usize, |a, b| a + b), 7);
        assert_eq!(pool.map_reduce(1, |_| 5usize, 0, |a, b| a + b), 5);
    }

    #[test]
    fn env_values_parse_with_explicit_clamping() {
        // Well-formed values, including surrounding whitespace.
        assert_eq!(threads_from_value("4"), 4);
        assert_eq!(threads_from_value(" 8 "), 8);
        assert_eq!(threads_from_value("1"), 1);
        // Malformed values clamp to 1 (with a stderr warning) instead of
        // silently deferring to the machine's full parallelism.
        assert_eq!(threads_from_value("0"), 1);
        assert_eq!(threads_from_value(""), 1);
        assert_eq!(threads_from_value("   "), 1);
        assert_eq!(threads_from_value("two"), 1);
        assert_eq!(threads_from_value("-3"), 1);
        assert_eq!(threads_from_value("4.5"), 1);
    }

    #[test]
    fn constructors_clamp_and_read_env() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::serial().threads(), 1);
        assert_eq!(Pool::default(), Pool::serial());
        // The env-var mutation lives in the same test as every other
        // CROWDFUSION_THREADS *read* in this binary, so no concurrent
        // test can observe (or race with) the temporary values.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(threads_from_env(), Some(3));
        assert_eq!(Pool::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(threads_from_env(), Some(1));
        assert_eq!(Pool::from_env().threads(), 1);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(threads_from_env(), Some(1));
        std::env::remove_var(THREADS_ENV);
        assert_eq!(threads_from_env(), None);
        assert!(Pool::from_env().threads() >= 1);
    }
}
