//! The persistent work-stealing worker pool behind every sharded
//! computation in the selection engine.
//!
//! The paper observes (Section III-F) that the hot loops of CrowdFusion —
//! per-pattern Equation 2 sums, per-candidate greedy evaluations,
//! per-entity experiment rounds — are all embarrassingly parallel. This
//! module gives those call sites one shared primitive instead of bespoke
//! thread plumbing: a [`Pool`] of `threads` workers with
//! [`Pool::for_each_chunk`] (shard a mutable slice) and
//! [`Pool::map_reduce`] (map an index range, fold the results in index
//! order).
//!
//! # Architecture: persistent workers, channel-fed jobs, chunk stealing
//!
//! Workers are spawned **once**, when the pool is built, and live until the
//! last [`Pool`] clone drops. Each parallel call packages its work as one
//! *job* — an atomic cursor over `0..num_chunks` index-range chunks plus a
//! lifetime-erased closure that executes one chunk — and submits it to the
//! shared mpmc injector channel (`crossbeam::channel`). Every worker holds
//! a clone of the same receiver, so idle workers *steal* jobs from the
//! injector, and workers on the same job steal chunks from its cursor via
//! `fetch_add` until it is exhausted. The submitting thread participates
//! as a worker on its own job (an N-way sharding keeps costing N − 1
//! *helpers*, now woken instead of spawned), which also makes nested and
//! concurrent submissions deadlock-free: a caller never blocks while its
//! job has unclaimed chunks.
//!
//! Determinism is the design constraint: which thread executes a chunk
//! never affects *what* the chunk computes (chunks write disjoint slice
//! ranges), and every reduction happens on the caller in strict index
//! order — so results are identical for any thread count. The property
//! tests in `tests/engine_parallel.rs` and `tests/batched_rounds.rs` pin
//! this down bit for bit. See DESIGN.md §4 for the full determinism
//! contract and job lifecycle.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crossbeam::channel;

/// Environment variable overriding [`Pool::from_env`]'s thread count.
pub const THREADS_ENV: &str = "CROWDFUSION_THREADS";

/// The one clamping code path behind every thread-count entry point
/// ([`Pool::new`], [`threads_from_value`], and through them the CLI's
/// `--threads` fallback): a non-positive request is clamped to 1 worker
/// with a single stderr warning naming its origin. Callers that can prove
/// positivity at the type level ([`Pool::new_nonzero`]) skip it entirely.
fn clamp_threads(requested: Option<usize>, origin: &str) -> usize {
    match requested {
        Some(t) if t > 0 => t,
        _ => {
            eprintln!("warning: {origin} is not a positive thread count; clamping to 1 worker");
            1
        }
    }
}

/// The thread count requested via [`THREADS_ENV`]. The CLI's
/// `refine --threads` fallback and [`Pool::from_env`] both resolve the
/// variable through this one lookup.
///
/// Returns `None` when the variable is unset, [`threads_from_value`]
/// otherwise — so a *set but malformed* value (`0`, non-numeric,
/// whitespace-only) clamps to 1 worker with a warning on stderr instead
/// of being silently ignored (which would fall back to the machine's
/// full parallelism, the opposite of what a value like `0` plausibly
/// asked for).
pub fn threads_from_env() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .map(|raw| threads_from_value(&raw))
}

/// Parses one [`THREADS_ENV`]-style value. Surrounding whitespace is
/// ignored (`" 4 "` is 4); anything that does not parse to a positive
/// integer — `0`, the empty string, whitespace, non-numeric text — goes
/// through the same [`clamp_threads`] path as [`Pool::new`]: clamped to 1
/// with one warning on stderr.
pub fn threads_from_value(raw: &str) -> usize {
    clamp_threads(
        raw.trim().parse::<usize>().ok(),
        &format!("{THREADS_ENV}={raw:?}"),
    )
}

/// One submitted parallel call: an atomic cursor over its index-range
/// chunks, a completion latch, and the lifetime-erased chunk executor.
///
/// # Lifecycle and safety
///
/// The `task` pointer references a closure on the submitting caller's
/// stack. The caller guarantees its validity by blocking in
/// [`Job::wait`] until `remaining == 0`, i.e. until every chunk has been
/// claimed *and* finished. A worker that pops this job from the injector
/// *after* completion (the `Arc` keeps the struct itself alive in the
/// queue) finds the cursor exhausted and never touches `task` — the
/// cursor can only yield an in-range chunk while `remaining > 0`, which
/// is exactly while the caller is still pinned in `wait`.
struct Job {
    /// Next chunk index to claim; `fetch_add` is the work-stealing step.
    next: AtomicUsize,
    /// Total chunks in `0..num_chunks`.
    num_chunks: usize,
    /// Chunks not yet finished; the transition to 0 releases the caller.
    remaining: AtomicUsize,
    /// Set when a chunk panicked; the caller re-raises after the join.
    poisoned: AtomicBool,
    /// The first caught panic payload, re-raised on the caller by
    /// `resume_unwind` so assertion messages survive the pool boundary
    /// exactly as they would on the serial inline path.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Lifetime-erased `run(chunk_index)` closure on the caller's stack.
    task: *const (dyn Fn(usize) + Sync),
    /// Completion latch (`remaining == 0`).
    done: Mutex<bool>,
    done_cv: Condvar,
}

// SAFETY: the raw `task` pointer is what blocks the auto-impl. It is only
// dereferenced while the submitting caller is blocked in `Job::wait` (see
// the struct docs), so the pointee outlives every dereference on any
// thread the job moves to; all other fields are `Send` themselves.
unsafe impl Send for Job {}
// SAFETY: shared access is sound for the same reason: the pointee is
// `Sync`, so `&Job` handed to several workers only ever yields `&dyn
// Fn(usize)` calls the closure itself declares safe to run concurrently.
unsafe impl Sync for Job {}

impl Job {
    /// Steals chunks off the cursor until it is exhausted. Run by pool
    /// workers that popped the job from the injector and by the
    /// submitting caller itself. A panicking chunk poisons the job
    /// (remaining chunks are claimed but skipped) instead of unwinding
    /// through the worker loop, so the caller can re-raise after all
    /// in-flight chunks drained — never while workers might still hold
    /// references into its stack frame.
    fn run(&self) {
        loop {
            let chunk = self.next.fetch_add(1, Ordering::Relaxed);
            if chunk >= self.num_chunks {
                return;
            }
            if !self.poisoned.load(Ordering::Acquire) {
                // SAFETY: `chunk < num_chunks` implies `remaining > 0`,
                // so the caller is still parked in `wait` and the task
                // closure is alive.
                let task = unsafe { &*self.task };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(chunk))) {
                    let mut slot = self.panic_payload.lock().expect("pool latch poisoned");
                    slot.get_or_insert(payload);
                    drop(slot);
                    self.poisoned.store(true, Ordering::Release);
                }
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock().expect("pool latch poisoned") = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// Parks the caller until every chunk has finished.
    fn wait(&self) {
        let mut done = self.done.lock().expect("pool latch poisoned");
        while !*done {
            done = self.done_cv.wait(done).expect("pool latch poisoned");
        }
    }
}

/// The shared half of a pool: the injector sender plus the worker handles,
/// torn down when the last [`Pool`] clone drops.
struct PoolShared {
    /// `Some` until drop; taking it disconnects the channel, which is the
    /// workers' shutdown signal.
    injector: Option<channel::Sender<Arc<Job>>>,
    workers: Vec<JoinHandle<()>>,
}

impl Drop for PoolShared {
    fn drop(&mut self) {
        // Disconnect: workers drain any stale queued jobs (all of them
        // already complete, so the pops are no-ops) and exit their recv
        // loop, then join. A panic inside a worker's chunk was caught and
        // converted to job poisoning, so joins only fail if a worker died
        // outside any job — which is a bug worth surfacing loudly.
        self.injector = None;
        for handle in self.workers.drain(..) {
            handle.join().expect("pool worker died outside a job");
        }
    }
}

/// A persistent channel-fed work-stealing pool with a fixed worker count.
///
/// `Pool::new(1)` (or [`Pool::serial`]) never spawns threads — every
/// primitive degrades to a plain loop — so serial callers pay no
/// synchronisation cost and the parallel code path is the only code path.
/// Clones share the same workers (the handle is an `Arc`); the threads
/// shut down when the last clone drops.
#[derive(Clone)]
pub struct Pool {
    threads: usize,
    /// `None` for the serial pool; `Some` holds the injector + workers.
    shared: Option<Arc<PoolShared>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .field("persistent", &self.shared.is_some())
            .finish()
    }
}

/// Pools compare by worker count — the only observable behavioural
/// parameter, since results are identical for any thread count.
impl PartialEq for Pool {
    fn eq(&self, other: &Pool) -> bool {
        self.threads == other.threads
    }
}

impl Eq for Pool {}

impl Default for Pool {
    fn default() -> Pool {
        Pool::serial()
    }
}

impl Pool {
    /// A pool with exactly `threads` workers. A zero request goes through
    /// the same clamping path as a malformed [`THREADS_ENV`] value: one
    /// stderr warning, clamped to 1.
    pub fn new(threads: usize) -> Pool {
        let threads = match NonZeroUsize::new(threads) {
            Some(t) => t,
            None => NonZeroUsize::new(clamp_threads(Some(threads), "Pool::new(0)"))
                .expect("clamp_threads returns at least 1"),
        };
        Pool::new_nonzero(threads)
    }

    /// A pool with exactly `threads` workers, positivity proven at the
    /// type level — the no-clamp construction path.
    pub fn new_nonzero(threads: NonZeroUsize) -> Pool {
        let threads = threads.get();
        if threads == 1 {
            return Pool {
                threads: 1,
                shared: None,
            };
        }
        let (injector, jobs) = channel::unbounded::<Arc<Job>>();
        // The submitting caller always participates in its own job, so
        // N-way sharding needs N − 1 persistent helpers.
        let workers = (0..threads - 1)
            .map(|i| {
                let jobs = jobs.clone();
                // analyze: allow(adhoc-thread) — this IS the pool: the one
                // place allowed to create threads; everything else routes
                // its parallelism through here.
                std::thread::Builder::new()
                    .name(format!("crowdfusion-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = jobs.recv() {
                            job.run();
                        }
                    })
                    .expect("spawning pool worker")
            })
            .collect();
        Pool {
            threads,
            shared: Some(Arc::new(PoolShared {
                injector: Some(injector),
                workers,
            })),
        }
    }

    /// The single-threaded pool: primitives run inline, no threads spawn.
    pub fn serial() -> Pool {
        Pool {
            threads: 1,
            shared: None,
        }
    }

    /// A pool sized from the environment: `CROWDFUSION_THREADS` if set to
    /// a positive integer, otherwise the machine's available parallelism.
    pub fn from_env() -> Pool {
        match threads_from_env() {
            Some(threads) => Pool::new(threads),
            None => {
                Pool::new_nonzero(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
            }
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Splits `data` into contiguous chunks of `chunk_size` and runs
    /// `f(base_index, chunk)` on each, in parallel across the workers.
    ///
    /// The caller picks `chunk_size` because some workloads need
    /// alignment (the butterfly stages shard on whole transform blocks);
    /// use [`Pool::chunk_size`] for an even split. At most
    /// [`Pool::threads`] workers run regardless of the chunk count
    /// (excess chunks are *stolen* off the job's cursor by whichever
    /// worker frees up first). Chunking never affects results: each
    /// element is written by exactly one worker.
    pub fn for_each_chunk<T, F>(&self, data: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let len = data.len();
        let shared = match &self.shared {
            Some(shared) if len > chunk_size => shared,
            _ => {
                for (c, chunk) in data.chunks_mut(chunk_size).enumerate() {
                    f(c * chunk_size, chunk);
                }
                return;
            }
        };
        let num_chunks = len.div_ceil(chunk_size);

        // Chunk executor: rematerialise the disjoint sub-slice for chunk
        // `c` from the raw parts. Raw parts (not the `&mut [T]` itself)
        // cross the thread boundary because distinct chunks alias no
        // elements — each index is claimed by exactly one cursor step.
        struct SendPtr<T>(*mut T);
        // SAFETY: the wrapper only crosses threads inside this function,
        // where each worker touches the pairwise-disjoint chunk range it
        // claimed off the cursor — no element is reachable from two
        // threads; `T: Send` makes moving those elements' access sound.
        unsafe impl<T: Send> Send for SendPtr<T> {}
        // SAFETY: `&SendPtr` exposes only the raw pointer value (`get`),
        // never a `&T`/`&mut T`; dereferences go through the per-chunk
        // disjointness argument above.
        unsafe impl<T: Send> Sync for SendPtr<T> {}
        impl<T> SendPtr<T> {
            // Accessor (rather than field access) so closures capture the
            // whole wrapper — a closure capturing the bare `*mut T` field
            // would lose the Send/Sync opt-in.
            fn get(&self) -> *mut T {
                self.0
            }
        }
        let base_ptr = SendPtr(data.as_mut_ptr());
        let run = move |c: usize| {
            let start = c * chunk_size;
            let end = (start + chunk_size).min(len);
            // SAFETY: `start < len` (the cursor only yields c <
            // num_chunks) and chunk ranges are pairwise disjoint, so this
            // is the unique live reference to these elements.
            let chunk =
                unsafe { std::slice::from_raw_parts_mut(base_ptr.get().add(start), end - start) };
            f(start, chunk);
        };

        let task: &(dyn Fn(usize) + Sync) = &run;
        // SAFETY: lifetime erasure only — the `'static` is a lie the Job
        // never acts on: the caller stays on this stack frame until
        // `wait` returns, and `Job::run` holds the only dereferences (the
        // validity argument spelled out on `Job`), so `run` outlives every
        // use of the erased pointer.
        let task: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<_, &'static (dyn Fn(usize) + Sync)>(task) };
        let job = Arc::new(Job {
            next: AtomicUsize::new(0),
            num_chunks,
            remaining: AtomicUsize::new(num_chunks),
            poisoned: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            task,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });

        // Wake up to N − 1 helpers (never more than the chunks the caller
        // can't take itself), then work the job from this thread too.
        let helpers = (self.threads - 1).min(num_chunks - 1);
        if let Some(injector) = &shared.injector {
            for _ in 0..helpers {
                if injector.send(job.clone()).is_err() {
                    unreachable!("pool workers outlive every live Pool clone");
                }
            }
        }
        job.run();
        job.wait();
        if job.poisoned.load(Ordering::Acquire) {
            // Every chunk has drained (wait returned), so re-raising the
            // first caught payload here — with its original assertion
            // message — is exactly what an inline panic would have done.
            let payload = job
                .panic_payload
                .lock()
                .expect("pool latch poisoned")
                .take();
            match payload {
                Some(payload) => std::panic::resume_unwind(payload),
                None => panic!("pool worker panicked"),
            }
        }
    }

    /// Maps every index in `0..n` through `map` in parallel, then folds
    /// the results **in index order** with `fold` — so the reduction is
    /// deterministic regardless of the thread count or completion order.
    pub fn map_reduce<T, A, M, F>(&self, n: usize, map: M, init: A, mut fold: F) -> A
    where
        T: Send,
        M: Fn(usize) -> T + Sync,
        F: FnMut(A, T) -> A,
    {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        self.for_each_chunk(&mut slots, self.chunk_size(n), |base, chunk| {
            for (offset, slot) in chunk.iter_mut().enumerate() {
                *slot = Some(map(base + offset));
            }
        });
        let mut acc = init;
        for slot in slots {
            acc = fold(acc, slot.expect("every index mapped"));
        }
        acc
    }

    /// The chunk size that spreads `n` items evenly over the workers.
    pub fn chunk_size(&self, n: usize) -> usize {
        n.div_ceil(self.threads).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_chunking_agree() {
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::new(threads);
            let mut data = vec![0u64; 37];
            let chunk_size = pool.chunk_size(data.len());
            pool.for_each_chunk(&mut data, chunk_size, |base, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = (base + i) as u64 * 3;
                }
            });
            assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
        }
    }

    #[test]
    fn chunk_alignment_is_respected() {
        // Butterfly-style sharding: chunks must hold whole 8-blocks.
        let pool = Pool::new(4);
        let mut data = vec![0usize; 64];
        pool.for_each_chunk(&mut data, 16, |base, chunk| {
            assert_eq!(base % 16, 0);
            assert_eq!(chunk.len(), 16);
            for slot in chunk.iter_mut() {
                *slot = base;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[63], 48);
    }

    #[test]
    fn many_small_chunks_stay_within_the_worker_budget() {
        // 34 chunks on a 4-thread pool: chunks are stolen off one cursor,
        // and every element is still written exactly once with the right
        // base.
        let pool = Pool::new(4);
        let mut data = vec![0usize; 100];
        pool.for_each_chunk(&mut data, 3, |base, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                assert_eq!(*slot, 0, "element written twice");
                *slot = base + i + 1;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    fn workers_are_reused_across_many_jobs() {
        // The persistent-pool contract: thousands of parallel calls on
        // one pool reuse the same workers (under the scoped design this
        // test would fork ~6000 threads).
        let pool = Pool::new(3);
        let mut total = 0u64;
        for round in 0..2_000u64 {
            let mut data = vec![0u64; 12];
            pool.for_each_chunk(&mut data, 4, |base, chunk| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = round + (base + i) as u64;
                }
            });
            total += data.iter().sum::<u64>();
        }
        let per_round: u64 = (0..12).sum();
        assert_eq!(total, (0..2_000u64).map(|r| r * 12 + per_round).sum());
    }

    #[test]
    fn concurrent_submissions_share_one_pool() {
        // Several threads submitting to the same pool at once (the shape
        // of a pooled selector running inside a sharded experiment).
        let pool = Pool::new(4);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        let mut data = vec![0u64; 40];
                        pool.for_each_chunk(&mut data, 7, |base, chunk| {
                            for (i, slot) in chunk.iter_mut().enumerate() {
                                *slot = t * 1000 + (base + i) as u64;
                            }
                        });
                        assert!(data
                            .iter()
                            .enumerate()
                            .all(|(i, &x)| x == t * 1000 + i as u64));
                    }
                });
            }
        });
    }

    #[test]
    fn nested_submission_does_not_deadlock() {
        // A chunk of an outer job submits an inner job to the same pool:
        // the inner caller steals its own chunks, so it completes even
        // with every helper busy.
        let pool = Pool::new(2);
        let inner_pool = pool.clone();
        let mut outer = vec![0u64; 8];
        pool.for_each_chunk(&mut outer, 4, |base, chunk| {
            let mut inner = vec![0u64; 16];
            inner_pool.for_each_chunk(&mut inner, 4, |b, c| {
                for (i, slot) in c.iter_mut().enumerate() {
                    *slot = (b + i) as u64;
                }
            });
            let sum: u64 = inner.iter().sum();
            for slot in chunk.iter_mut() {
                *slot = sum + base as u64;
            }
        });
        let expect: u64 = (0..16).sum();
        assert_eq!(outer[0], expect);
        assert_eq!(outer[7], expect + 4);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let pool = Pool::new(3);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut data = vec![0u8; 32];
            pool.for_each_chunk(&mut data, 4, |base, _| {
                if base == 16 {
                    panic!("boom");
                }
            });
        }));
        // The original payload crosses the pool boundary intact — an
        // assertion message reads the same at any thread count.
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
        // The pool survives a poisoned job and stays usable.
        let mut data = vec![0usize; 10];
        pool.for_each_chunk(&mut data, 2, |base, chunk| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = base + i;
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn map_reduce_folds_in_index_order() {
        for threads in [1usize, 2, 5] {
            let pool = Pool::new(threads);
            let order = pool.map_reduce(
                10,
                |i| i,
                Vec::new(),
                |mut acc: Vec<usize>, i| {
                    acc.push(i);
                    acc
                },
            );
            assert_eq!(order, (0..10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_reduce_handles_empty_and_single() {
        let pool = Pool::new(3);
        assert_eq!(pool.map_reduce(0, |i| i, 7usize, |a, b| a + b), 7);
        assert_eq!(pool.map_reduce(1, |_| 5usize, 0, |a, b| a + b), 5);
    }

    #[test]
    fn env_values_parse_with_explicit_clamping() {
        // Well-formed values, including surrounding whitespace.
        assert_eq!(threads_from_value("4"), 4);
        assert_eq!(threads_from_value(" 8 "), 8);
        assert_eq!(threads_from_value("1"), 1);
        // Malformed values clamp to 1 (with a stderr warning) instead of
        // silently deferring to the machine's full parallelism.
        assert_eq!(threads_from_value("0"), 1);
        assert_eq!(threads_from_value(""), 1);
        assert_eq!(threads_from_value("   "), 1);
        assert_eq!(threads_from_value("two"), 1);
        assert_eq!(threads_from_value("-3"), 1);
        assert_eq!(threads_from_value("4.5"), 1);
    }

    #[test]
    fn zero_and_nonzero_construction_share_one_clamp_boundary() {
        // `Pool::new(0)` routes through the same clamp as a malformed env
        // value; `new_nonzero` is the no-clamp path; both land on the
        // same 1-worker serial pool at the boundary.
        let clamped = Pool::new(0);
        assert_eq!(clamped.threads(), 1);
        assert!(clamped.shared.is_none(), "clamped pool must be serial");
        assert_eq!(clamped, Pool::serial());
        assert_eq!(
            Pool::new_nonzero(NonZeroUsize::MIN).threads(),
            Pool::new(1).threads()
        );
        let four = Pool::new_nonzero(NonZeroUsize::new(4).unwrap());
        assert_eq!(four.threads(), 4);
        assert_eq!(four, Pool::new(4));
    }

    #[test]
    fn clones_share_workers_and_compare_by_thread_count() {
        let pool = Pool::new(3);
        let clone = pool.clone();
        assert_eq!(pool, clone);
        assert!(Arc::ptr_eq(
            pool.shared.as_ref().unwrap(),
            clone.shared.as_ref().unwrap()
        ));
        assert_eq!(Pool::default(), Pool::serial());
        assert_ne!(Pool::new(2), Pool::new(3));
    }

    #[test]
    fn constructors_clamp_and_read_env() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert_eq!(Pool::serial().threads(), 1);
        assert_eq!(Pool::default(), Pool::serial());
        // The env-var mutation lives in the same test as every other
        // CROWDFUSION_THREADS *read* in this binary, so no concurrent
        // test can observe (or race with) the temporary values.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(threads_from_env(), Some(3));
        assert_eq!(Pool::from_env().threads(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert_eq!(threads_from_env(), Some(1));
        assert_eq!(Pool::from_env().threads(), 1);
        std::env::set_var(THREADS_ENV, "not-a-number");
        assert_eq!(threads_from_env(), Some(1));
        std::env::remove_var(THREADS_ENV);
        assert_eq!(threads_from_env(), None);
        assert!(Pool::from_env().threads() >= 1);
    }
}
