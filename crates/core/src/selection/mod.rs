//! Task selection: choosing the size-`k` set of facts to ask the crowd.
//!
//! The objective is `T_best = argmax_T H(T)` over the answer distribution
//! (Equation 4). Finding the optimum is NP-hard (Theorem 1, reduction from
//! PARTITION), so the paper proposes a `(1 − 1/e)`-approximate greedy
//! (Algorithm 1) with two accelerations: upper-bound pruning (Theorem 3)
//! and answer-table preprocessing with memoised partition refinement
//! (Algorithm 2). This module implements all of them plus the exhaustive
//! OPT and the random baseline used in the evaluation.

pub mod engine;
mod greedy;
mod opt;
mod random;
mod sampled;

pub use engine::ScatterCache;
pub use greedy::{GreedySelector, PruneBound};
pub use opt::OptSelector;
pub use random::RandomSelector;
pub use sampled::{sampled_answer_entropy, SampledGreedySelector};

use crate::answers::AnswerEvaluator;
use crate::error::CoreError;
use crowdfusion_jointdist::JointDist;
use rand::RngCore;

/// A strategy that picks up to `k` distinct facts to ask the crowd.
///
/// Implementations may return fewer than `k` tasks when no further task
/// improves the utility (the paper's `K* < k` early exit, Theorem 2 shows
/// this only happens when every remaining fact is certain and `Pc = 1`).
///
/// `Sync` is a supertrait so one selector can be shared by the
/// entity-sharded experiment runner's workers
/// ([`crate::system::Experiment::run_sharded`]); selectors are
/// configuration-only values, so this costs implementations nothing.
pub trait TaskSelector: Sync {
    /// Human-readable selector name for reports.
    fn name(&self) -> String;

    /// Selects up to `min(k, n)` distinct fact indices.
    fn select(
        &self,
        dist: &JointDist,
        pc: f64,
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<usize>, CoreError>;
}

/// The named selector configurations benchmarked in the paper's Table V,
/// plus our butterfly-evaluator variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorKind {
    /// Exhaustive search over all C(n, k) task sets.
    Opt,
    /// Plain greedy with the paper's brute-force marginal computation.
    Approx,
    /// Greedy + Theorem 3 pruning (the paper's literal bound).
    ApproxPrune,
    /// Greedy + Algorithm 2 preprocessing.
    ApproxPre,
    /// Greedy + pruning + preprocessing.
    ApproxPrunePre,
    /// Greedy with the butterfly evaluator (our engineering improvement).
    ApproxFast,
    /// Uniform-random baseline.
    Random,
}

impl SelectorKind {
    /// All Table V configurations in presentation order.
    pub const TABLE_V: [SelectorKind; 5] = [
        SelectorKind::Opt,
        SelectorKind::Approx,
        SelectorKind::ApproxPrune,
        SelectorKind::ApproxPre,
        SelectorKind::ApproxPrunePre,
    ];

    /// Builds the corresponding selector object.
    pub fn build(self) -> Box<dyn TaskSelector> {
        match self {
            SelectorKind::Opt => Box::new(OptSelector::new(AnswerEvaluator::Naive)),
            SelectorKind::Approx => Box::new(GreedySelector::paper_approx()),
            // Dominance pruning is the only rule that reproduces the
            // paper's near-constant Approx.&Prune running time; the
            // literal Theorem 3 bound almost never fires (see greedy.rs).
            SelectorKind::ApproxPrune => {
                Box::new(GreedySelector::paper_approx().with_prune(PruneBound::Dominance))
            }
            // The preprocessing configurations build the answer table with
            // the butterfly transform (the paper treats that step as cheap,
            // offline and MapReduce-parallel); the selection itself uses
            // the paper's Algorithm 2 partition refinement.
            SelectorKind::ApproxPre => Box::new(
                GreedySelector::paper_approx()
                    .with_evaluator(AnswerEvaluator::Butterfly)
                    .with_preprocess(),
            ),
            SelectorKind::ApproxPrunePre => Box::new(
                GreedySelector::paper_approx()
                    .with_evaluator(AnswerEvaluator::Butterfly)
                    .with_prune(PruneBound::Dominance)
                    .with_preprocess(),
            ),
            SelectorKind::ApproxFast => Box::new(GreedySelector::fast()),
            SelectorKind::Random => Box::new(RandomSelector),
        }
    }

    /// The label used in Table V / figure legends.
    pub fn label(self) -> &'static str {
        match self {
            SelectorKind::Opt => "OPT",
            SelectorKind::Approx => "Approx.",
            SelectorKind::ApproxPrune => "Approx.&Prune",
            SelectorKind::ApproxPre => "Approx.&Pre.",
            SelectorKind::ApproxPrunePre => "Approx.&Prune&Pre.",
            SelectorKind::ApproxFast => "Approx.(butterfly)",
            SelectorKind::Random => "Random",
        }
    }
}

/// Shared validation for selectors: checks `pc`, clamps `k` to `n`, rejects
/// oversized dense workloads. Returns the effective `k`.
pub(crate) fn validate_selection(dist: &JointDist, pc: f64, k: usize) -> Result<usize, CoreError> {
    crate::validate_pc(pc)?;
    let n = dist.num_vars();
    let k_eff = k.min(n);
    if k_eff > crate::MAX_DENSE_FACTS {
        return Err(CoreError::TooManyFacts {
            requested: k_eff,
            limit: crate::MAX_DENSE_FACTS,
        });
    }
    Ok(k_eff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdfusion_jointdist::presets::paper_running_example;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kinds_build_and_have_distinct_labels() {
        let mut labels = std::collections::HashSet::new();
        for kind in [
            SelectorKind::Opt,
            SelectorKind::Approx,
            SelectorKind::ApproxPrune,
            SelectorKind::ApproxPre,
            SelectorKind::ApproxPrunePre,
            SelectorKind::ApproxFast,
            SelectorKind::Random,
        ] {
            assert!(labels.insert(kind.label()));
            let selector = kind.build();
            let mut rng = StdRng::seed_from_u64(0);
            let tasks = selector
                .select(&paper_running_example(), 0.8, 2, &mut rng)
                .unwrap();
            assert_eq!(tasks.len(), 2, "{} returned {:?}", selector.name(), tasks);
        }
    }

    #[test]
    fn validate_selection_clamps_and_rejects() {
        let d = paper_running_example();
        assert_eq!(validate_selection(&d, 0.8, 10).unwrap(), 4);
        assert_eq!(validate_selection(&d, 0.8, 2).unwrap(), 2);
        assert!(matches!(
            validate_selection(&d, 0.2, 2),
            Err(CoreError::InvalidAccuracy(_))
        ));
    }
}
