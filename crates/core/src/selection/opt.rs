//! OPT: exhaustive search over all C(n, k) task sets.
//!
//! The paper's brute-force baseline (Table V). Exponential — "with k = 4, we
//! had been waiting for more than 5 days and the algorithm was still
//! running" — so only usable for small `k` and `n`.

use crate::answers::{answer_entropy, AnswerEvaluator};
use crate::error::CoreError;
use crate::selection::{validate_selection, TaskSelector};
use crowdfusion_jointdist::{JointDist, VarSet};
use rand::RngCore;

/// Exhaustive optimal task selection.
#[derive(Debug, Clone, Copy)]
pub struct OptSelector {
    evaluator: AnswerEvaluator,
}

impl OptSelector {
    /// Creates the selector with the given entropy evaluator.
    pub fn new(evaluator: AnswerEvaluator) -> OptSelector {
        OptSelector { evaluator }
    }
}

/// Iterates all size-`k` combinations of `0..n` in lexicographic order,
/// invoking `visit` with each combination.
fn for_each_combination(
    n: usize,
    k: usize,
    mut visit: impl FnMut(&[usize]) -> Result<(), CoreError>,
) -> Result<(), CoreError> {
    debug_assert!(k <= n);
    if k == 0 {
        return visit(&[]);
    }
    let mut combo: Vec<usize> = (0..k).collect();
    loop {
        visit(&combo)?;
        // Advance to the next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return Ok(());
            }
            i -= 1;
            if combo[i] != i + n - k {
                break;
            }
            if i == 0 {
                return Ok(());
            }
        }
        combo[i] += 1;
        for j in i + 1..k {
            combo[j] = combo[j - 1] + 1;
        }
    }
}

impl TaskSelector for OptSelector {
    fn name(&self) -> String {
        match self.evaluator {
            AnswerEvaluator::Naive => "opt[naive]".to_string(),
            AnswerEvaluator::Butterfly => "opt[butterfly]".to_string(),
        }
    }

    fn select(
        &self,
        dist: &JointDist,
        pc: f64,
        k: usize,
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<usize>, CoreError> {
        let k_eff = validate_selection(dist, pc, k)?;
        if k_eff == 0 {
            return Ok(Vec::new());
        }
        let n = dist.num_vars();
        let mut best: Option<(Vec<usize>, f64)> = None;
        for_each_combination(n, k_eff, |combo| {
            let tasks = VarSet::from_vars(combo.iter().copied());
            let h = answer_entropy(dist, tasks, pc, self.evaluator)?;
            match &best {
                Some((_, best_h)) if h <= *best_h => {}
                _ => best = Some((combo.to_vec(), h)),
            }
            Ok(())
        })?;
        Ok(best.map(|(combo, _)| combo).unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::GreedySelector;
    use crowdfusion_jointdist::presets::paper_running_example;
    use crowdfusion_jointdist::Assignment;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn combinations_enumerated_exactly_once() {
        let mut seen = std::collections::HashSet::new();
        for_each_combination(5, 3, |c| {
            assert!(seen.insert(c.to_vec()), "duplicate {c:?}");
            assert!(c.windows(2).all(|w| w[0] < w[1]));
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len(), 10); // C(5,3)
        let mut count = 0;
        for_each_combination(4, 4, |_| {
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 1);
        let mut count = 0;
        for_each_combination(4, 1, |_| {
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 4);
    }

    #[test]
    fn opt_matches_table_iii_maximum() {
        // Table III: the optimal 2-subset at Pc = 0.8 is {f1, f4}.
        let d = paper_running_example();
        let tasks = OptSelector::new(AnswerEvaluator::Naive)
            .select(&d, 0.8, 2, &mut rng())
            .unwrap();
        assert_eq!(tasks, vec![0, 3]);
        // At Pc = 1 the optimum is the pair with maximal fact entropy:
        // our vars {2, 3} (the paper states "{f1, f2}", which under its
        // permuted Table III labelling is the same pair — see the note in
        // answers.rs; H = 1.981).
        let tasks = OptSelector::new(AnswerEvaluator::Butterfly)
            .select(&d, 1.0, 2, &mut rng())
            .unwrap();
        assert_eq!(tasks, vec![2, 3]);
    }

    #[test]
    fn opt_never_worse_than_greedy() {
        use crate::answers::answer_entropy;
        use crowdfusion_jointdist::VarSet;
        let mut wrng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let n = 5;
            let d = crowdfusion_jointdist::JointDist::from_weights(
                n,
                (0..(1u64 << n)).map(|a| (Assignment(a), wrng.gen_range(0.0..1.0))),
            )
            .unwrap();
            let opt = OptSelector::new(AnswerEvaluator::Butterfly)
                .select(&d, 0.8, 2, &mut rng())
                .unwrap();
            let greedy = GreedySelector::fast()
                .select(&d, 0.8, 2, &mut rng())
                .unwrap();
            let h_opt = answer_entropy(
                &d,
                VarSet::from_vars(opt.iter().copied()),
                0.8,
                AnswerEvaluator::Butterfly,
            )
            .unwrap();
            let h_greedy = answer_entropy(
                &d,
                VarSet::from_vars(greedy.iter().copied()),
                0.8,
                AnswerEvaluator::Butterfly,
            )
            .unwrap();
            assert!(h_opt >= h_greedy - 1e-12);
            // (1 - 1/e) guarantee sanity check (entropy is nonnegative, so
            // this is a loose but meaningful bound).
            assert!(h_greedy >= (1.0 - 1.0 / std::f64::consts::E) * h_opt - 1e-9);
        }
    }

    #[test]
    fn opt_k1_matches_greedy_k1() {
        // The paper notes OPT with k = 1 equals the greedy's first pick.
        let d = paper_running_example();
        let opt = OptSelector::new(AnswerEvaluator::Naive)
            .select(&d, 0.8, 1, &mut rng())
            .unwrap();
        let greedy = GreedySelector::paper_approx()
            .select(&d, 0.8, 1, &mut rng())
            .unwrap();
        assert_eq!(opt, greedy);
        assert_eq!(opt, vec![0]);
    }
}
