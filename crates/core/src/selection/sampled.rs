//! Sampled answer-entropy estimation and greedy selection for large fact
//! sets.
//!
//! The paper's exact evaluators need dense `2^|T|` (or `2^n`) tables, which
//! is precisely why its efficiency experiments single out "books with facts
//! more than 20". This module trades exactness for scale: `H(T)` is
//! estimated from Monte-Carlo samples of the answer distribution (sample a
//! ground truth from the joint, push it through the binary symmetric
//! channel), with the Miller–Madow bias correction. Selection quality
//! degrades gracefully with the sample budget, and the estimator works for
//! any support the sparse [`JointDist`] can hold (up to 64 facts).

use crate::error::CoreError;
use crate::selection::TaskSelector;
use crowdfusion_jointdist::{JointDist, VarSet};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::BTreeMap;

/// Minimum sample count accepted (below this the plug-in estimate is
/// meaningless).
pub const MIN_SAMPLES: usize = 64;

/// Monte-Carlo estimate of the answer entropy `H(T)` in bits.
///
/// Draws `samples` (ground truth, noisy answer) pairs and applies the
/// plug-in entropy estimator with the Miller–Madow correction
/// `(m − 1) / (2 · samples · ln 2)`, where `m` is the number of observed
/// answer patterns.
pub fn sampled_answer_entropy<R: Rng + ?Sized>(
    dist: &JointDist,
    tasks: VarSet,
    pc: f64,
    samples: usize,
    rng: &mut R,
) -> Result<f64, CoreError> {
    crate::validate_pc(pc)?;
    let n = dist.num_vars();
    if let Some(bad) = tasks.difference(VarSet::all(n)).iter().next() {
        return Err(CoreError::TaskOutOfRange { index: bad, n });
    }
    if samples < MIN_SAMPLES {
        return Err(CoreError::EmptyTaskSet);
    }
    if tasks.is_empty() {
        return Ok(0.0);
    }
    let t = tasks.len();
    // Ordered map: the entropy sum and the Miller–Madow correction below
    // fold f64s in key order; hash order would vary the rounding per run.
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for _ in 0..samples {
        let truth = dist.sample(rng);
        let mut answer = truth.extract(tasks);
        for bit in 0..t {
            if rng.gen::<f64>() >= pc {
                answer ^= 1 << bit;
            }
        }
        *counts.entry(answer).or_insert(0) += 1;
    }
    let total = samples as f64;
    let mut h = 0.0;
    for &c in counts.values() {
        let p = c as f64 / total;
        h -= p * p.log2();
    }
    // Miller–Madow bias correction (plug-in underestimates entropy).
    let correction = (counts.len() as f64 - 1.0) / (2.0 * total * std::f64::consts::LN_2);
    Ok((h + correction).min(t as f64))
}

/// Greedy task selection using the sampled estimator — usable beyond the
/// dense-evaluation limit (up to 64 facts, any sparse support).
#[derive(Debug, Clone, Copy)]
pub struct SampledGreedySelector {
    /// Monte-Carlo samples per candidate evaluation.
    pub samples: usize,
    /// Base seed for the internal estimator RNG; evaluations are
    /// deterministic in it (and in the candidate/round indices), keeping
    /// the selector reproducible and fair across candidates.
    pub seed: u64,
}

impl SampledGreedySelector {
    /// A selector with the given per-candidate sample budget.
    pub fn new(samples: usize, seed: u64) -> SampledGreedySelector {
        SampledGreedySelector { samples, seed }
    }
}

impl TaskSelector for SampledGreedySelector {
    fn name(&self) -> String {
        format!("greedy[sampled:{}]", self.samples)
    }

    fn select(
        &self,
        dist: &JointDist,
        pc: f64,
        k: usize,
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<usize>, CoreError> {
        crate::validate_pc(pc)?;
        let n = dist.num_vars();
        // No dense-limit check on either side of MAX_DENSE_FACTS: the
        // estimator only ever holds a histogram of *observed* answer
        // patterns, so task sets wider than the dense limit are exactly
        // the regime this selector exists for. (An earlier version
        // routed n ≤ MAX_DENSE_FACTS through validate_selection, which
        // would have rejected k_eff > MAX_DENSE_FACTS on the dense side
        // only — dead code there since k_eff ≤ n, but a behavioural
        // cliff at the boundary once n itself may exceed the limit.)
        let k_eff = k.min(n);
        let mut selected = Vec::with_capacity(k_eff);
        let mut selected_set = VarSet::EMPTY;
        for round in 0..k_eff {
            let mut best: Option<(usize, f64)> = None;
            for f in 0..n {
                if selected_set.contains(f) {
                    continue;
                }
                // Common random numbers across candidates in a round: the
                // same seed stream makes comparisons lower-variance.
                let mut est_rng = StdRng::seed_from_u64(self.seed ^ (round as u64) << 32);
                let h = sampled_answer_entropy(
                    dist,
                    selected_set.insert(f),
                    pc,
                    self.samples,
                    &mut est_rng,
                )?;
                match best {
                    Some((_, best_h)) if h <= best_h => {}
                    _ => best = Some((f, h)),
                }
            }
            let Some((f, _)) = best else { break };
            selected.push(f);
            selected_set = selected_set.insert(f);
        }
        Ok(selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::{answer_entropy, AnswerEvaluator};
    use crate::selection::GreedySelector;
    use crowdfusion_jointdist::presets::paper_running_example;
    use crowdfusion_jointdist::Assignment;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn estimate_converges_to_exact() {
        let d = paper_running_example();
        for tasks in [VarSet::single(0), VarSet::from_vars([0, 3]), VarSet::all(4)] {
            let exact = answer_entropy(&d, tasks, 0.8, AnswerEvaluator::Butterfly).unwrap();
            let est = sampled_answer_entropy(&d, tasks, 0.8, 60_000, &mut rng()).unwrap();
            assert!(
                (est - exact).abs() < 0.02,
                "tasks {tasks}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn estimate_validates_inputs() {
        let d = paper_running_example();
        assert!(matches!(
            sampled_answer_entropy(&d, VarSet::single(9), 0.8, 1000, &mut rng()),
            Err(CoreError::TaskOutOfRange { .. })
        ));
        assert!(sampled_answer_entropy(&d, VarSet::single(0), 0.8, 10, &mut rng()).is_err());
        assert!(sampled_answer_entropy(&d, VarSet::single(0), 0.2, 1000, &mut rng()).is_err());
        assert_eq!(
            sampled_answer_entropy(&d, VarSet::EMPTY, 0.8, 1000, &mut rng()).unwrap(),
            0.0
        );
    }

    #[test]
    fn sampled_greedy_matches_exact_on_running_example() {
        let d = paper_running_example();
        let exact = GreedySelector::fast()
            .select(&d, 0.8, 2, &mut rng())
            .unwrap();
        let sampled = SampledGreedySelector::new(40_000, 7)
            .select(&d, 0.8, 2, &mut rng())
            .unwrap();
        // H({f1}) = 1.0000 and H({f4}) = 0.9997 are nearly tied, so the
        // sampled pick order may swap — the selected *set* must match.
        let as_set = |v: &[usize]| v.iter().copied().collect::<std::collections::HashSet<_>>();
        assert_eq!(as_set(&exact), as_set(&sampled));
    }

    #[test]
    fn works_beyond_the_dense_limit() {
        // A 30-fact distribution with sparse support (64 outputs) — the
        // exact dense paths reject it, the sampled selector handles it.
        let n = 30;
        let mut wrng = StdRng::seed_from_u64(3);
        let entries = (0..64u64).map(|i| {
            // Scatter supports across the 30-bit space deterministically.
            let assignment = Assignment((i * 0x9E37_79B9) & ((1 << n) - 1));
            (assignment, wrng.gen_range(0.1..1.0))
        });
        let d = JointDist::from_weights(n, entries).unwrap();
        let picked = SampledGreedySelector::new(4_000, 1)
            .select(&d, 0.8, 5, &mut rng())
            .unwrap();
        assert_eq!(picked.len(), 5);
        let set: std::collections::HashSet<_> = picked.iter().copied().collect();
        assert_eq!(set.len(), 5);
        assert!(picked.iter().all(|&f| f < n));
    }

    #[test]
    fn behaviour_is_continuous_across_the_dense_boundary() {
        // n == MAX_DENSE_FACTS and n == MAX_DENSE_FACTS + 1 must behave
        // identically: k clamps to n, and k = n (wider than the dense
        // limit on the far side) is accepted — the sampled estimator
        // never materialises a dense table.
        for n in [crate::MAX_DENSE_FACTS, crate::MAX_DENSE_FACTS + 1] {
            let entries = (0..48u64).map(|i| {
                (
                    Assignment((i.wrapping_mul(0x9E37_79B9)) & ((1 << n) - 1)),
                    1.0 + (i % 7) as f64,
                )
            });
            let d = JointDist::from_weights(n, entries).unwrap();
            let picked = SampledGreedySelector::new(MIN_SAMPLES, 3)
                .select(&d, 0.8, n + 5, &mut rng())
                .unwrap();
            assert_eq!(picked.len(), n, "k must clamp to n at n = {n}");
            let mut sorted = picked.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n, "duplicate tasks at n = {n}");
        }
    }

    #[test]
    fn selection_is_deterministic_in_seed() {
        let d = paper_running_example();
        let a = SampledGreedySelector::new(2_000, 11)
            .select(&d, 0.8, 3, &mut rng())
            .unwrap();
        let b = SampledGreedySelector::new(2_000, 11)
            .select(&d, 0.8, 3, &mut rng())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn more_samples_reduce_error() {
        let d = paper_running_example();
        let tasks = VarSet::from_vars([0, 1, 2]);
        let exact = answer_entropy(&d, tasks, 0.8, AnswerEvaluator::Butterfly).unwrap();
        let mut err_small = 0.0;
        let mut err_large = 0.0;
        for seed in 0..10u64 {
            let mut r = StdRng::seed_from_u64(seed);
            err_small +=
                (sampled_answer_entropy(&d, tasks, 0.8, 256, &mut r).unwrap() - exact).abs();
            let mut r = StdRng::seed_from_u64(seed);
            err_large +=
                (sampled_answer_entropy(&d, tasks, 0.8, 16_384, &mut r).unwrap() - exact).abs();
        }
        assert!(
            err_large < err_small,
            "16k-sample error {err_large} should beat 256-sample error {err_small}"
        );
    }
}
