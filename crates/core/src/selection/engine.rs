//! The incremental evaluation core of the greedy selection engine.
//!
//! Direct greedy (Algorithm 1) evaluates `H(T ∪ {f})` for every remaining
//! candidate `f` in every round. Rebuilding that answer distribution from
//! scratch costs `O(|O| · |T|)` for the restriction alone (the software
//! `PEXT` in [`crowdfusion_jointdist::Assignment::extract`] walks the task
//! bits of every support entry) plus a `(|T|+1)`-stage butterfly — and the
//! restriction work is identical across rounds except for the one new bit.
//!
//! [`ScatterCache`] memoises exactly that shared work for the current
//! selected set `T`:
//!
//! * `pat[i]` — support entry `i`'s judgment pattern restricted to `T`,
//!   with bit `j` = the `j`-th *selected* fact (selection order; answer
//!   entropy is invariant under bit permutations);
//! * `y` — the binary-symmetric-channel transform of the answer
//!   distribution over `T` (length `2^|T|`).
//!
//! Evaluating a candidate `f` then costs one `O(|O| + 2^|T|)` bucket
//! split (scatter the mass of the outputs judging `f` *true* over the
//! cached patterns), one `|T|`-stage butterfly on that *half-size* vector,
//! and a single-bit BSC combine against the cached `y` — by linearity of
//! the transform, `y = B_T w0 + B_T w1`, so the `f = false` half is a
//! subtraction, never recomputed. Against the full rebuild this removes
//! the per-round `O(|O| · |T|)` re-restriction entirely and halves the
//! butterfly, which measured ≈ 3× on the `selection` bench at `n = 16`
//! before any threads are added (see EXPERIMENTS.md).
//!
//! Every method is `&self` except [`ScatterCache::extend`], so candidate
//! evaluations shard freely across a [`crate::pool::Pool`]; each worker
//! brings its own scratch buffer.

use crate::answers::{bsc_transform_in_place, AnswerTable};
use crowdfusion_jointdist::{entropy_of_probs, JointDist};

/// Cached restricted scatter of the output distribution for the greedy
/// loop's current selected set `T`. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct ScatterCache {
    /// Raw support assignments (`o.0` for each output in support order).
    bits: Vec<u64>,
    /// Support probabilities, parallel to `bits`.
    probs: Vec<f64>,
    /// Judgment pattern of each support entry on `T`, in selection order.
    pat: Vec<u32>,
    /// BSC-transformed answer distribution over `T` (length `2^|T|`).
    y: Vec<f64>,
    /// `|T|`.
    depth: usize,
}

impl ScatterCache {
    /// An empty-`T` cache over the distribution's support.
    pub fn new(dist: &JointDist) -> ScatterCache {
        let m = dist.support_size();
        let mut bits = Vec::with_capacity(m);
        let mut probs = Vec::with_capacity(m);
        for (a, p) in dist.iter() {
            bits.push(a.0);
            probs.push(p);
        }
        ScatterCache {
            bits,
            probs,
            pat: vec![0; m],
            y: vec![1.0],
            depth: 0,
        }
    }

    /// An empty-`T` cache over an [`AnswerTable`]'s support, paired with
    /// the accuracy to evaluate candidates at.
    ///
    /// A sparse table *is* a sorted `(pattern, probability)` support with
    /// a residual channel, so the cache consumes it directly and
    /// candidates are evaluated at the table's residual `pc`. A dense
    /// table has the channel pre-applied: its positive entries become the
    /// support and the returned accuracy is 1 (the identity channel),
    /// under which [`ScatterCache::candidate_entropy`] computes exact
    /// answer-marginal entropies of the table.
    pub fn from_table(table: &AnswerTable) -> (ScatterCache, f64) {
        let (bits, probs, pc): (Vec<u64>, Vec<f64>, f64) = match table {
            AnswerTable::Sparse { pc, entries, .. } => (
                entries.iter().map(|&(b, _)| b).collect(),
                entries.iter().map(|&(_, p)| p).collect(),
                *pc,
            ),
            AnswerTable::Dense { probs, .. } => {
                let mut bits = Vec::new();
                let mut mass = Vec::new();
                for (pattern, &p) in probs.iter().enumerate() {
                    if p > 0.0 {
                        bits.push(pattern as u64);
                        mass.push(p);
                    }
                }
                (bits, mass, 1.0)
            }
        };
        let m = bits.len();
        (
            ScatterCache {
                bits,
                probs,
                pat: vec![0; m],
                y: vec![1.0],
                depth: 0,
            },
            pc,
        )
    }

    /// Current `|T|`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Scatters the mass of the support entries that judge fact `f` *true*
    /// over the cached patterns and BSC-transforms it in `scratch` —
    /// producing `y1 = B_T w1`, the `f = true` half of the extended answer
    /// distribution before the final single-bit channel stage.
    fn split_true_half(&self, f: usize, pc: f64, scratch: &mut Vec<f64>) {
        scratch.clear();
        scratch.resize(1usize << self.depth, 0.0);
        for ((&b, &p), &pat) in self.bits.iter().zip(&self.probs).zip(&self.pat) {
            if (b >> f) & 1 == 1 {
                scratch[pat as usize] += p;
            }
        }
        bsc_transform_in_place(scratch, self.depth, pc);
    }

    /// `H(T ∪ {f})` in bits, without materialising the `2^(|T|+1)` vector.
    ///
    /// `scratch` is caller-provided so pooled workers reuse one buffer
    /// across candidates; its contents are irrelevant on entry.
    pub fn candidate_entropy(&self, f: usize, pc: f64, scratch: &mut Vec<f64>) -> f64 {
        self.split_true_half(f, pc, scratch);
        let q = 1.0 - pc;
        entropy_of_probs(scratch.iter().zip(&self.y).flat_map(|(&y1, &yt)| {
            // Tiny negative round-off from the subtraction is clamped by
            // the 0·log 0 convention inside `entropy_of_probs`.
            let y0 = yt - y1;
            [pc * y0 + q * y1, q * y0 + pc * y1]
        }))
    }

    /// `H(T)` of the currently committed task set, in bits — the cached
    /// transform *is* the answer distribution over `T`, so this is one
    /// pass over `y` with no scatter work.
    pub fn committed_entropy(&self) -> f64 {
        entropy_of_probs(self.y.iter().copied())
    }

    /// The incremental-gain hook behind the cross-session scheduler: the
    /// best `(fact, gain)` over `0..num_facts` where
    /// `gain = H(T ∪ {f}) − H(T) − H(Pc)`, clamped at zero — the mutual
    /// information the next answer on `f` would buy beyond channel noise
    /// (at depth 0 this is exactly
    /// [`crate::allocation::single_task_gain`], but evaluated on the
    /// cache so sparse supports beyond the dense limit work too).
    ///
    /// Ties break on the lowest fact index, making the result a pure
    /// function of the distribution. Returns `None` for zero facts.
    pub fn best_marginal_gain(
        &self,
        num_facts: usize,
        pc: f64,
        scratch: &mut Vec<f64>,
    ) -> Option<(usize, f64)> {
        let base = self.committed_entropy() + crowdfusion_jointdist::binary_entropy(pc);
        let mut best: Option<(usize, f64)> = None;
        for f in 0..num_facts {
            let gain = (self.candidate_entropy(f, pc, scratch) - base).max(0.0);
            match best {
                Some((_, g)) if gain <= g => {}
                _ => best = Some((f, gain)),
            }
        }
        best
    }

    /// Commits fact `f` as the round's winner: extends the cached
    /// patterns by `f`'s judgment bit and the cached transform by the
    /// single-bit channel stage. `O(|O| + 2^|T|)`.
    pub fn extend(&mut self, f: usize, pc: f64) {
        debug_assert!(self.depth < 32, "ScatterCache patterns are u32");
        let patterns = 1usize << self.depth;
        let mut y1 = vec![0.0; patterns];
        self.split_true_half(f, pc, &mut y1);
        let q = 1.0 - pc;
        let mut next = vec![0.0; patterns << 1];
        for (a, &y1a) in y1.iter().enumerate() {
            let y0 = self.y[a] - y1a;
            next[a] = pc * y0 + q * y1a;
            next[a | patterns] = q * y0 + pc * y1a;
        }
        self.y = next;
        for (&b, pat) in self.bits.iter().zip(self.pat.iter_mut()) {
            *pat |= (((b >> f) & 1) as u32) << self.depth;
        }
        self.depth += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::{answer_entropy, AnswerEvaluator};
    use crowdfusion_jointdist::presets::paper_running_example;
    use crowdfusion_jointdist::{Assignment, JointDist, VarSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dist(n: usize, seed: u64) -> JointDist {
        let mut rng = StdRng::seed_from_u64(seed);
        JointDist::from_weights(
            n,
            (0..(1u64 << n)).map(|a| (Assignment(a), rng.gen_range(0.0..1.0))),
        )
        .unwrap()
    }

    #[test]
    fn matches_full_evaluation_along_a_greedy_path() {
        // Extend the cache fact by fact; at every step each candidate's
        // incremental entropy must match the from-scratch evaluators.
        for (n, seed, pc) in [(4usize, 1u64, 0.8), (6, 2, 0.7), (5, 3, 1.0)] {
            let d = random_dist(n, seed);
            let mut cache = ScatterCache::new(&d);
            let mut tasks = VarSet::EMPTY;
            let mut scratch = Vec::new();
            for step in 0..n {
                for f in 0..n {
                    if tasks.contains(f) {
                        continue;
                    }
                    let got = cache.candidate_entropy(f, pc, &mut scratch);
                    let want = answer_entropy(&d, tasks.insert(f), pc, AnswerEvaluator::Butterfly)
                        .unwrap();
                    assert!(
                        (got - want).abs() < 1e-10,
                        "n={n} step={step} f={f}: {got} vs {want}"
                    );
                }
                // Extend by an arbitrary (varying) member.
                let f = (step * 2 + seed as usize) % n;
                let f = (f..n).chain(0..f).find(|&v| !tasks.contains(v)).unwrap();
                cache.extend(f, pc);
                tasks = tasks.insert(f);
                assert_eq!(cache.depth(), step + 1);
            }
        }
    }

    #[test]
    fn running_example_first_round_entropies() {
        // Depth 0: candidate entropy is the single-task H of Section III-D
        // (H({f1}) = 1 bit at Pc = 0.8).
        let d = paper_running_example();
        let cache = ScatterCache::new(&d);
        let mut scratch = Vec::new();
        assert!((cache.candidate_entropy(0, 0.8, &mut scratch) - 1.0).abs() < 1e-9);
        for f in 0..4 {
            let got = cache.candidate_entropy(f, 0.8, &mut scratch);
            let want = answer_entropy(&d, VarSet::single(f), 0.8, AnswerEvaluator::Naive).unwrap();
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn from_table_matches_direct_cache_for_both_backends() {
        use crate::answers::{AnswerEvaluator, AnswerTable};
        let d = random_dist(6, 4);
        let pc = 0.8;
        let sparse = AnswerTable::sparse(&d, pc).unwrap();
        let dense = AnswerTable::dense(&d, pc, AnswerEvaluator::Butterfly).unwrap();
        let (mut from_sparse, sparse_pc) = ScatterCache::from_table(&sparse);
        let (mut from_dense, dense_pc) = ScatterCache::from_table(&dense);
        assert_eq!(sparse_pc, pc);
        assert_eq!(dense_pc, 1.0);
        let mut ref_cache = ScatterCache::new(&d);
        let mut scratch = Vec::new();
        let mut tasks = VarSet::EMPTY;
        for step in 0..4 {
            for f in 0..6 {
                if tasks.contains(f) {
                    continue;
                }
                let want = ref_cache.candidate_entropy(f, pc, &mut scratch);
                let via_sparse = from_sparse.candidate_entropy(f, sparse_pc, &mut scratch);
                let via_dense = from_dense.candidate_entropy(f, dense_pc, &mut scratch);
                assert!(
                    (via_sparse - want).abs() < 1e-10,
                    "sparse table diverged at step {step} f {f}"
                );
                assert!(
                    (via_dense - want).abs() < 1e-10,
                    "dense table diverged at step {step} f {f}"
                );
            }
            let f = (0..6).find(|&v| !tasks.contains(v)).unwrap();
            ref_cache.extend(f, pc);
            from_sparse.extend(f, sparse_pc);
            from_dense.extend(f, dense_pc);
            tasks = tasks.insert(f);
        }
    }

    #[test]
    fn from_table_handles_large_sparse_supports() {
        use crate::answers::AnswerTable;
        // 30 facts, sparse support: the dense evaluators reject this size
        // but the cache evaluates it exactly.
        let n = 30usize;
        let entries = (0..40u64).map(|i| {
            (
                Assignment((i.wrapping_mul(0x9E37_79B9)) & ((1 << n) - 1)),
                1.0 + i as f64,
            )
        });
        let d = JointDist::from_weights(n, entries).unwrap();
        let table = AnswerTable::sparse(&d, 0.9).unwrap();
        let (mut cache, pc) = ScatterCache::from_table(&table);
        let mut scratch = Vec::new();
        // Candidate entropies must match the table's own exact
        // distribution-based entropy for singleton and pair task sets.
        let h0 = cache.candidate_entropy(7, pc, &mut scratch);
        let want0 = table.entropy(VarSet::single(7)).unwrap();
        assert!((h0 - want0).abs() < 1e-10);
        cache.extend(7, pc);
        let h1 = cache.candidate_entropy(29, pc, &mut scratch);
        let want1 = table.entropy(VarSet::from_vars([7, 29])).unwrap();
        assert!((h1 - want1).abs() < 1e-10);
    }

    #[test]
    fn perfect_crowd_channel_is_identity() {
        let d = paper_running_example();
        let mut cache = ScatterCache::new(&d);
        cache.extend(1, 1.0);
        cache.extend(3, 1.0);
        let mut scratch = Vec::new();
        let got = cache.candidate_entropy(0, 1.0, &mut scratch);
        let want = answer_entropy(
            &d,
            VarSet::from_vars([0, 1, 3]),
            1.0,
            AnswerEvaluator::Naive,
        )
        .unwrap();
        assert!((got - want).abs() < 1e-10);
    }
}
