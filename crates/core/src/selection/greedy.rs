//! Algorithm 1: the `(1 − 1/e)`-approximate greedy task selector, with
//! Theorem 3 pruning, Algorithm 2 preprocessing (dense *and* sparse
//! answer tables), and the selection engine's cached-scatter + pooled
//! evaluation fast path.
//!
//! All configurations share one pooled greedy loop parameterised by a
//! [`CandidateScorer`]: the paper's brute-force per-candidate evaluation,
//! the engine's incremental scatter cache (which also serves the sparse
//! preprocessed path beyond [`crate::MAX_DENSE_FACTS`]), and the dense
//! Table-IV partition refinement are three scorers behind the same
//! round/prune/early-exit bookkeeping.

use crate::answers::{answer_entropy, AnswerEvaluator, AnswerTable, TableBackend};
use crate::error::CoreError;
use crate::parallel::full_answer_table_pooled;
use crate::pool::Pool;
use crate::selection::engine::ScatterCache;
use crate::selection::{validate_selection, TaskSelector};
use crowdfusion_jointdist::{entropy_of_probs, JointDist, VarSet};
use rand::RngCore;

/// Gains below this threshold terminate the greedy loop early (the paper's
/// `ρ ≤ 0` exit with floating-point slack).
const GAIN_EPSILON: f64 = 1e-12;

/// Upper bound used by the Theorem 3 pruning rule.
///
/// After a round's candidates are all evaluated, a fact `f` is pruned for
/// the rest of the selection when `H(T ∪ {f}) + slack < max_t H(T ∪ {t})`,
/// where `slack` bounds the extra entropy any future picks `S` (with
/// `|S| = k − |T| − 1`) can contribute. Pruning compares against the
/// round's final maximum (not a running best), so the pruned set is
/// independent of candidate evaluation order — the invariant that lets the
/// engine shard candidates across threads and still return bit-identical
/// selections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneBound {
    /// The information-theoretically safe bound `H(S) ≤ k − |T| − 1` bits
    /// (each answer variable is binary). With this bound pruned greedy
    /// provably returns the same selection as unpruned greedy.
    Safe,
    /// The paper's literal bound `log₂(k − |T| − 1)`. It under-estimates
    /// the possible future gain so selections may differ from unpruned
    /// greedy — yet in practice it rarely fires at all: candidate
    /// entropies differ by well under one bit while the slack is
    /// `log₂(remaining) ≥ 1` until the final rounds. See DESIGN.md.
    PaperAggressive,
    /// Pure per-round dominance: zero slack, i.e. every candidate that is
    /// not the current round's best is pruned for the rest of the
    /// selection. This is the only rule that reproduces the *near-constant
    /// running time* the paper reports for Approx.&Prune in Table V; its
    /// quality cost is measured by the ablation harness.
    Dominance,
}

impl PruneBound {
    /// Entropy slack for `remaining` future picks.
    fn slack(self, remaining: usize) -> f64 {
        match self {
            PruneBound::Safe => remaining as f64,
            PruneBound::PaperAggressive => {
                if remaining >= 2 {
                    (remaining as f64).log2()
                } else {
                    0.0
                }
            }
            PruneBound::Dominance => 0.0,
        }
    }
}

/// One greedy configuration's per-candidate scoring strategy.
///
/// [`GreedySelector::greedy_loop`] owns the round bookkeeping (pooled
/// candidate scans, Theorem 3 pruning, forced fills, the Theorem 2 early
/// exit); implementations own how `H(T ∪ {f})` is computed and what
/// state to memoise when a candidate is committed. `score` is `&self` so
/// candidates shard freely across the pool; `commit` runs serially
/// between rounds.
trait CandidateScorer: Sync {
    /// `H(T ∪ {f})` in bits for the current selected set `T`. `scratch`
    /// is a per-worker buffer reused across candidates.
    fn score(&self, f: usize, scratch: &mut Vec<f64>) -> f64;

    /// Commits fact `f` as the round's winner (memoise `T ← T ∪ {f}`).
    fn commit(&mut self, f: usize);
}

/// The paper's brute-force evaluation: rebuild the answer distribution of
/// `T ∪ {f}` from the output support every time.
struct NaiveScorer<'a> {
    dist: &'a JointDist,
    pc: f64,
    evaluator: AnswerEvaluator,
    selected: VarSet,
}

impl CandidateScorer for NaiveScorer<'_> {
    fn score(&self, f: usize, _scratch: &mut Vec<f64>) -> f64 {
        answer_entropy(self.dist, self.selected.insert(f), self.pc, self.evaluator)
            .expect("validated before the greedy loop")
    }

    fn commit(&mut self, f: usize) {
        self.selected = self.selected.insert(f);
    }
}

/// The engine's incremental evaluation: one cached-scatter bucket split
/// plus a half-size butterfly per candidate. Serves both the direct
/// butterfly path (cache over the output support, channel `pc`) and the
/// sparse preprocessed path (cache over an [`AnswerTable`]'s support at
/// its residual accuracy).
struct EngineScorer {
    cache: ScatterCache,
    pc: f64,
}

impl CandidateScorer for EngineScorer {
    fn score(&self, f: usize, scratch: &mut Vec<f64>) -> f64 {
        self.cache.candidate_entropy(f, self.pc, scratch)
    }

    fn commit(&mut self, f: usize) {
        self.cache.extend(f, self.pc);
    }
}

/// Algorithm 2 over the dense Table-IV answer table: each candidate
/// refines the memoised partition of answer patterns by its judgment bit.
struct PartitionScorer<'a> {
    table: &'a [f64],
    part: Vec<u32>,
    num_parts: usize,
}

impl<'a> PartitionScorer<'a> {
    fn new(table: &'a [f64]) -> PartitionScorer<'a> {
        PartitionScorer {
            part: vec![0; table.len()],
            num_parts: 1,
            table,
        }
    }
}

impl CandidateScorer for PartitionScorer<'_> {
    fn score(&self, f: usize, acc: &mut Vec<f64>) -> f64 {
        // Refine the memoised partition by fact f's judgment bit and
        // compute the resulting answer-marginal entropy.
        acc.clear();
        acc.resize(self.num_parts << 1, 0.0);
        for (idx, &p) in self.table.iter().enumerate() {
            let bucket = ((self.part[idx] as usize) << 1) | ((idx >> f) & 1);
            acc[bucket] += p;
        }
        entropy_of_probs(acc.iter().copied())
    }

    fn commit(&mut self, f: usize) {
        // Memoise the separation of the chosen fact.
        for (idx, bucket) in self.part.iter_mut().enumerate() {
            *bucket = (*bucket << 1) | ((idx >> f) & 1) as u32;
        }
        self.num_parts <<= 1;
    }
}

/// The greedy selector (Algorithm 1) in its four paper configurations plus
/// the engine-backed fast variants (cached scatter, pooled candidates,
/// sparse answer tables).
#[derive(Debug, Clone)]
pub struct GreedySelector {
    evaluator: AnswerEvaluator,
    prune: Option<PruneBound>,
    preprocess: bool,
    backend: TableBackend,
    pool: Pool,
}

impl GreedySelector {
    /// The paper's plain "Approx." configuration: brute-force marginal
    /// computation per candidate, no pruning, no preprocessing.
    pub fn paper_approx() -> GreedySelector {
        GreedySelector {
            evaluator: AnswerEvaluator::Naive,
            prune: None,
            preprocess: false,
            backend: TableBackend::Auto,
            pool: Pool::serial(),
        }
    }

    /// Our fast configuration: cached-scatter butterfly evaluation, safe
    /// pruning, serial. Identical selections to [`GreedySelector::engine`]
    /// at any thread count.
    pub fn fast() -> GreedySelector {
        GreedySelector {
            evaluator: AnswerEvaluator::Butterfly,
            prune: Some(PruneBound::Safe),
            preprocess: false,
            backend: TableBackend::Auto,
            pool: Pool::serial(),
        }
    }

    /// The engine-backed fast configuration: [`GreedySelector::fast`] with
    /// candidate evaluation sharded over `threads` workers.
    pub fn engine(threads: usize) -> GreedySelector {
        GreedySelector::fast().with_threads(threads)
    }

    /// Enables Theorem 3 pruning with the given bound.
    #[must_use]
    pub fn with_prune(mut self, bound: PruneBound) -> GreedySelector {
        self.prune = Some(bound);
        self
    }

    /// Enables Algorithm 2 preprocessing (answer-table partition
    /// refinement with memoised separations; beyond the dense limit the
    /// table — and hence the refinement — switches to the sparse
    /// backend, see [`GreedySelector::with_table_backend`]).
    #[must_use]
    pub fn with_preprocess(mut self) -> GreedySelector {
        self.preprocess = true;
        self
    }

    /// Pins the preprocessed path's answer-table backend. The default
    /// ([`TableBackend::Auto`]) uses the paper's dense Table-IV partition
    /// refinement up to [`crate::MAX_DENSE_FACTS`] facts and the exact
    /// sparse support-backed table beyond; forcing
    /// [`TableBackend::Sparse`] is mainly for cross-validation, forcing
    /// [`TableBackend::Dense`] restores the pre-sparse hard failure.
    #[must_use]
    pub fn with_table_backend(mut self, backend: TableBackend) -> GreedySelector {
        self.backend = backend;
        self
    }

    /// Uses the given evaluator for per-candidate entropy computations.
    /// The butterfly evaluator runs through the engine's scatter cache in
    /// the direct path; with preprocessing it builds the answer table.
    #[must_use]
    pub fn with_evaluator(mut self, evaluator: AnswerEvaluator) -> GreedySelector {
        self.evaluator = evaluator;
        self
    }

    /// Shards candidate evaluation (and answer-table preprocessing) over
    /// `threads` workers. Selections are bit-identical for every thread
    /// count: candidates are scored into per-index slots and reduced
    /// serially in fact order.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> GreedySelector {
        self.pool = Pool::new(threads);
        self
    }

    /// Shards work over an existing [`Pool`].
    #[must_use]
    pub fn with_pool(mut self, pool: Pool) -> GreedySelector {
        self.pool = pool;
        self
    }

    /// One greedy round's bookkeeping, shared by both selection paths:
    /// records evaluated scores into `last_h`, reduces to the best
    /// `(fact, entropy)` (ties to the lowest fact index), and applies the
    /// end-of-round Theorem 3 pruning rule.
    ///
    /// `scores[f]` is `NEG_INFINITY` for facts not evaluated this round
    /// (already selected or pruned). Returns `(best, forced)`; `forced`
    /// marks a fill from stale scores after the unsound bounds (paper /
    /// dominance) pruned the whole pool even though slots remain — what
    /// keeps the pruned configuration's running time flat in `k`,
    /// matching the paper's Table V. The safe bound provably never forces.
    /// Stale scores under-estimate the true `H(T ∪ {f})` (they were
    /// measured against a smaller `T`), so the Theorem 2 early exit does
    /// not apply to forced fills.
    fn reduce_round(
        &self,
        scores: &[f64],
        selected_set: VarSet,
        pruned: &mut [bool],
        last_h: &mut [f64],
        remaining_after: usize,
    ) -> (Option<(usize, f64)>, bool) {
        let mut best: Option<(usize, f64)> = None;
        for (f, &h) in scores.iter().enumerate() {
            if h.is_finite() {
                last_h[f] = h;
                match best {
                    Some((_, best_h)) if h <= best_h => {}
                    _ => best = Some((f, h)),
                }
            }
        }
        if let (Some(bound), Some((_, best_h))) = (self.prune, best) {
            // Theorem 3 against the round's final maximum. The best fact
            // itself never satisfies `best_h + slack < best_h`.
            let slack = bound.slack(remaining_after);
            for (f, &h) in scores.iter().enumerate() {
                if h.is_finite() && h + slack < best_h {
                    pruned[f] = true;
                }
            }
        }
        if best.is_some() {
            return (best, false);
        }
        let filled = (0..scores.len())
            .filter(|&f| !selected_set.contains(f) && last_h[f].is_finite())
            .map(|f| (f, last_h[f]))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        (filled, true)
    }

    /// The shared greedy loop: pooled candidate scans through `scorer`,
    /// end-of-round pruning, forced fills and the Theorem 2 early exit.
    /// Selections are bit-identical for every thread count: candidates
    /// are scored into per-index slots and reduced serially in fact
    /// order.
    fn greedy_loop<S: CandidateScorer>(&self, n: usize, k_eff: usize, mut scorer: S) -> Vec<usize> {
        let mut selected = Vec::with_capacity(k_eff);
        let mut selected_set = VarSet::EMPTY;
        let mut pruned = vec![false; n];
        let mut last_h = vec![f64::NEG_INFINITY; n];
        let mut h_current = 0.0f64;
        let mut scores = vec![f64::NEG_INFINITY; n];

        for round in 0..k_eff {
            scores.fill(f64::NEG_INFINITY);
            {
                let scorer = &scorer;
                let pruned = &pruned;
                self.pool
                    .for_each_chunk(&mut scores, self.pool.chunk_size(n), |base, chunk| {
                        let mut scratch = Vec::new();
                        for (offset, slot) in chunk.iter_mut().enumerate() {
                            let f = base + offset;
                            if selected_set.contains(f) || pruned[f] {
                                continue;
                            }
                            *slot = scorer.score(f, &mut scratch);
                        }
                    });
            }
            let (best, forced) = self.reduce_round(
                &scores,
                selected_set,
                &mut pruned,
                &mut last_h,
                k_eff - round - 1,
            );
            let Some((f, h)) = best else { break };
            if !forced && h - h_current <= GAIN_EPSILON {
                break; // K* < k: no further utility gain (Theorem 2 boundary)
            }
            selected.push(f);
            selected_set = selected_set.insert(f);
            scorer.commit(f);
            if !forced {
                h_current = h;
            }
        }
        selected
    }

    /// Greedy selection evaluating each candidate from the output support
    /// through the engine: the scatter cache makes extending the current
    /// selected set by one candidate an `O(|O| + 2^|T|)` bucket split plus
    /// a single-bit channel stage, and the pool shards the independent
    /// candidates across threads. Works at any entity size the substrate
    /// holds (up to 64 facts) — only the task-set width is bounded by the
    /// dense limit.
    fn select_direct(
        &self,
        dist: &JointDist,
        pc: f64,
        k_eff: usize,
    ) -> Result<Vec<usize>, CoreError> {
        let n = dist.num_vars();
        Ok(match self.evaluator {
            AnswerEvaluator::Butterfly => self.greedy_loop(
                n,
                k_eff,
                EngineScorer {
                    cache: ScatterCache::new(dist),
                    pc,
                },
            ),
            AnswerEvaluator::Naive => self.greedy_loop(
                n,
                k_eff,
                NaiveScorer {
                    dist,
                    pc,
                    evaluator: self.evaluator,
                    selected: VarSet::EMPTY,
                },
            ),
        })
    }

    /// Greedy selection over the preprocessed answer table (Algorithm 2).
    ///
    /// The answer table is computed once on the pool (the paper's
    /// MapReduce-friendly step). Dense tables (up to
    /// [`crate::MAX_DENSE_FACTS`] facts) use the paper's partition
    /// refinement: each candidate's marginal is a single scan refining the
    /// current partition of answer patterns by the candidate's judgment
    /// bit, with the chosen fact's separation memoised — `O(n · 2^n /
    /// threads)` per round. Beyond the dense limit the table is the exact
    /// sparse support and candidates evaluate through the engine's
    /// scatter cache at the table's residual accuracy — `O(n · (|O| +
    /// 2^|T|) / threads)` per round, which is what lifts the `2^n`
    /// ceiling from this path.
    fn select_preprocessed(
        &self,
        dist: &JointDist,
        pc: f64,
        k_eff: usize,
    ) -> Result<Vec<usize>, CoreError> {
        let n = dist.num_vars();
        let table = full_answer_table_pooled(dist, pc, self.evaluator, &self.pool, self.backend)?;
        Ok(match &table {
            AnswerTable::Dense { probs, .. } => {
                self.greedy_loop(n, k_eff, PartitionScorer::new(probs))
            }
            AnswerTable::Sparse { .. } => {
                let (cache, residual_pc) = ScatterCache::from_table(&table);
                self.greedy_loop(
                    n,
                    k_eff,
                    EngineScorer {
                        cache,
                        pc: residual_pc,
                    },
                )
            }
        })
    }
}

impl TaskSelector for GreedySelector {
    fn name(&self) -> String {
        let mut name = String::from("greedy");
        name.push_str(match self.evaluator {
            AnswerEvaluator::Naive => "[naive]",
            AnswerEvaluator::Butterfly => "[butterfly]",
        });
        match self.prune {
            Some(PruneBound::Safe) => name.push_str("+prune(safe)"),
            Some(PruneBound::PaperAggressive) => name.push_str("+prune(paper)"),
            Some(PruneBound::Dominance) => name.push_str("+prune(dominance)"),
            None => {}
        }
        if self.preprocess {
            name.push_str(match self.backend {
                TableBackend::Auto => "+pre",
                TableBackend::Dense => "+pre(dense)",
                TableBackend::Sparse => "+pre(sparse)",
            });
        }
        if self.pool.threads() > 1 {
            name.push_str(&format!("@{}t", self.pool.threads()));
        }
        name
    }

    fn select(
        &self,
        dist: &JointDist,
        pc: f64,
        k: usize,
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<usize>, CoreError> {
        let k_eff = validate_selection(dist, pc, k)?;
        if k_eff == 0 {
            return Ok(Vec::new());
        }
        if self.preprocess {
            self.select_preprocessed(dist, pc, k_eff)
        } else {
            self.select_direct(dist, pc, k_eff)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdfusion_jointdist::presets::paper_running_example;
    use crowdfusion_jointdist::JointDist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn all_variants() -> Vec<GreedySelector> {
        vec![
            GreedySelector::paper_approx(),
            GreedySelector::paper_approx().with_prune(PruneBound::Safe),
            GreedySelector::paper_approx().with_preprocess(),
            GreedySelector::paper_approx()
                .with_prune(PruneBound::Safe)
                .with_preprocess(),
            GreedySelector::fast(),
            GreedySelector::fast().with_preprocess(),
            GreedySelector::engine(4),
            GreedySelector::engine(3).with_preprocess(),
            GreedySelector::paper_approx().with_threads(2),
        ]
    }

    #[test]
    fn running_example_selects_f1_then_f4() {
        // Paper Section III-D: with k = 2 and Pc = 0.8 greedy first selects
        // f1 (H = 1, the max single-task entropy) and then f4
        // (H({f1, f4}) = 1.997).
        let d = paper_running_example();
        for sel in all_variants() {
            let tasks = sel.select(&d, 0.8, 2, &mut rng()).unwrap();
            assert_eq!(tasks, vec![0, 3], "{} picked {:?}", sel.name(), tasks);
        }
    }

    #[test]
    fn trusted_crowd_greedy_path() {
        // With Pc = 1 greedy first picks f1 (the only marginal at exactly
        // 0.5, H = 1 bit) and then the fact maximising the pair's joint
        // entropy given f1 — which is f3 (H({f1, f3}) ≈ 1.977). This
        // deliberately differs from OPT's {2, 3} (the paper's "{f1, f2}"
        // under its Table III labelling — see the note in answers.rs),
        // illustrating greedy's (1 − 1/e) sub-optimality.
        let d = paper_running_example();
        for sel in all_variants() {
            let tasks = sel.select(&d, 1.0, 2, &mut rng()).unwrap();
            assert_eq!(tasks, vec![0, 2], "{} picked {:?}", sel.name(), tasks);
        }
    }

    #[test]
    fn safe_prune_and_preprocess_match_plain_greedy() {
        // On a batch of random distributions all safe configurations must
        // return the identical selection.
        let mut seed_rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            use rand::Rng;
            let n = 3 + (trial % 4);
            let entries = (0..(1u64 << n)).map(|a| {
                (
                    crowdfusion_jointdist::Assignment(a),
                    seed_rng.gen_range(0.0..1.0),
                )
            });
            let d = JointDist::from_weights(n, entries).unwrap();
            let reference = GreedySelector::paper_approx()
                .select(&d, 0.8, 3, &mut rng())
                .unwrap();
            for sel in all_variants() {
                let got = sel.select(&d, 0.8, 3, &mut rng()).unwrap();
                assert_eq!(got, reference, "{} diverged on trial {trial}", sel.name());
            }
        }
    }

    #[test]
    fn k_larger_than_n_selects_everything() {
        let d = paper_running_example();
        let tasks = GreedySelector::fast()
            .select(&d, 0.8, 10, &mut rng())
            .unwrap();
        assert_eq!(tasks.len(), 4);
        let set: std::collections::HashSet<_> = tasks.iter().copied().collect();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn k_zero_selects_nothing() {
        let d = paper_running_example();
        let tasks = GreedySelector::fast()
            .select(&d, 0.8, 0, &mut rng())
            .unwrap();
        assert!(tasks.is_empty());
    }

    #[test]
    fn perfect_crowd_stops_on_certain_facts() {
        // With Pc = 1 and all facts certain, asking anything gains nothing:
        // the paper's K* < k case.
        let d = JointDist::certain(3, crowdfusion_jointdist::Assignment(0b101)).unwrap();
        let tasks = GreedySelector::paper_approx()
            .select(&d, 1.0, 3, &mut rng())
            .unwrap();
        assert!(tasks.is_empty(), "got {tasks:?}");
    }

    #[test]
    fn noisy_crowd_keeps_asking_even_when_certain() {
        // Theorem 2 discussion: with Pc < 1 the answer to any fact has
        // positive entropy, so greedy fills all k slots.
        let d = JointDist::certain(3, crowdfusion_jointdist::Assignment(0b101)).unwrap();
        let tasks = GreedySelector::fast()
            .select(&d, 0.8, 2, &mut rng())
            .unwrap();
        assert_eq!(tasks.len(), 2);
    }

    #[test]
    fn dominance_prune_still_fills_all_slots() {
        // Dominance prunes every non-best candidate each round; the
        // forced fill from stale scores must still spend all k slots.
        let d = paper_running_example();
        for sel in [
            GreedySelector::fast().with_prune(PruneBound::Dominance),
            GreedySelector::fast()
                .with_prune(PruneBound::Dominance)
                .with_threads(4),
            GreedySelector::paper_approx()
                .with_prune(PruneBound::Dominance)
                .with_preprocess(),
        ] {
            let tasks = sel.select(&d, 0.8, 3, &mut rng()).unwrap();
            assert_eq!(tasks.len(), 3, "{}", sel.name());
            let set: std::collections::HashSet<_> = tasks.iter().copied().collect();
            assert_eq!(set.len(), 3, "{}", sel.name());
        }
    }

    #[test]
    fn greedy_gain_is_monotone_nonnegative() {
        // H(T_i) must be nondecreasing along the greedy path.
        let d = paper_running_example();
        let sel = GreedySelector::fast();
        let tasks = sel.select(&d, 0.8, 4, &mut rng()).unwrap();
        let mut prev = 0.0;
        let mut set = VarSet::EMPTY;
        for &f in &tasks {
            set = set.insert(f);
            let h = answer_entropy(&d, set, 0.8, AnswerEvaluator::Butterfly).unwrap();
            assert!(h >= prev - 1e-12);
            prev = h;
        }
    }

    #[test]
    fn sparse_backend_matches_dense_preprocessing() {
        // Forcing the sparse table must reproduce the dense partition
        // refinement's selections wherever both backends apply.
        let mut seed_rng = StdRng::seed_from_u64(123);
        for trial in 0..20 {
            use rand::Rng;
            let n = 3 + (trial % 5);
            let entries = (0..(1u64 << n)).map(|a| {
                (
                    crowdfusion_jointdist::Assignment(a),
                    seed_rng.gen_range(0.0..1.0),
                )
            });
            let d = JointDist::from_weights(n, entries).unwrap();
            for pc in [0.7, 0.85, 1.0] {
                let dense = GreedySelector::fast()
                    .with_preprocess()
                    .with_table_backend(crate::answers::TableBackend::Dense)
                    .select(&d, pc, 3, &mut rng())
                    .unwrap();
                let sparse = GreedySelector::fast()
                    .with_preprocess()
                    .with_table_backend(crate::answers::TableBackend::Sparse)
                    .select(&d, pc, 3, &mut rng())
                    .unwrap();
                assert_eq!(dense, sparse, "trial {trial} pc {pc}");
            }
        }
    }

    fn large_sparse_dist(n: usize, support: u64, seed: u64) -> JointDist {
        use rand::Rng;
        let mut wrng = StdRng::seed_from_u64(seed);
        let entries = (0..support).map(|i| {
            (
                crowdfusion_jointdist::Assignment(
                    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << n) - 1),
                ),
                wrng.gen_range(0.1..1.0),
            )
        });
        JointDist::from_weights(n, entries).unwrap()
    }

    #[test]
    fn preprocessed_selection_works_beyond_the_dense_limit() {
        // A 32-fact entity: the old preprocessed path hard-failed with
        // TooManyFacts; the sparse backend selects, identically to the
        // direct engine path and for every thread count.
        let d = large_sparse_dist(32, 96, 5);
        let direct = GreedySelector::fast()
            .select(&d, 0.8, 4, &mut rng())
            .unwrap();
        assert_eq!(direct.len(), 4);
        let reference = GreedySelector::fast()
            .with_preprocess()
            .select(&d, 0.8, 4, &mut rng())
            .unwrap();
        assert_eq!(
            reference, direct,
            "sparse preprocessed must agree with the direct engine"
        );
        for threads in [2usize, 4, 7] {
            let pooled = GreedySelector::engine(threads)
                .with_preprocess()
                .select(&d, 0.8, 4, &mut rng())
                .unwrap();
            assert_eq!(pooled, reference, "threads = {threads}");
        }
    }

    #[test]
    fn forced_dense_backend_still_rejects_oversized_entities() {
        let d = large_sparse_dist(crate::MAX_DENSE_FACTS + 1, 16, 9);
        assert!(matches!(
            GreedySelector::fast()
                .with_preprocess()
                .with_table_backend(crate::answers::TableBackend::Dense)
                .select(&d, 0.8, 2, &mut rng()),
            Err(CoreError::TooManyFacts { requested, limit })
                if requested == crate::MAX_DENSE_FACTS + 1 && limit == crate::MAX_DENSE_FACTS
        ));
        // Auto at the same size succeeds through the sparse table.
        let tasks = GreedySelector::fast()
            .with_preprocess()
            .select(&d, 0.8, 2, &mut rng())
            .unwrap();
        assert_eq!(tasks.len(), 2);
    }

    #[test]
    fn selection_boundary_at_max_dense_facts() {
        // n == MAX_DENSE_FACTS (direct path, cheap sparse support) and
        // n == MAX_DENSE_FACTS + 1 both select; an oversized *task set*
        // request keeps failing on both sides of the boundary.
        for n in [crate::MAX_DENSE_FACTS, crate::MAX_DENSE_FACTS + 1] {
            let d = large_sparse_dist(n, 32, n as u64);
            let tasks = GreedySelector::fast()
                .select(&d, 0.8, 3, &mut rng())
                .unwrap();
            assert_eq!(tasks.len(), 3, "n = {n}");
            assert!(tasks.iter().all(|&f| f < n));
        }
        let big = large_sparse_dist(crate::MAX_DENSE_FACTS + 4, 32, 2);
        assert!(matches!(
            GreedySelector::fast().select(&big, 0.8, crate::MAX_DENSE_FACTS + 1, &mut rng()),
            Err(CoreError::TooManyFacts { requested, limit })
                if requested == crate::MAX_DENSE_FACTS + 1 && limit == crate::MAX_DENSE_FACTS
        ));
    }

    #[test]
    fn selector_names_are_descriptive() {
        assert_eq!(GreedySelector::paper_approx().name(), "greedy[naive]");
        assert_eq!(
            GreedySelector::paper_approx()
                .with_prune(PruneBound::PaperAggressive)
                .with_preprocess()
                .name(),
            "greedy[naive]+prune(paper)+pre"
        );
        assert_eq!(
            GreedySelector::fast().name(),
            "greedy[butterfly]+prune(safe)"
        );
        assert_eq!(
            GreedySelector::engine(4).name(),
            "greedy[butterfly]+prune(safe)@4t"
        );
        assert_eq!(
            GreedySelector::fast()
                .with_preprocess()
                .with_table_backend(crate::answers::TableBackend::Sparse)
                .name(),
            "greedy[butterfly]+prune(safe)+pre(sparse)"
        );
    }

    #[test]
    fn invalid_pc_rejected() {
        let d = paper_running_example();
        assert!(matches!(
            GreedySelector::fast().select(&d, 0.3, 2, &mut rng()),
            Err(CoreError::InvalidAccuracy(_))
        ));
    }
}
