//! The uniform-random baseline selector used throughout the paper's
//! evaluation (Figures 2–4).

use crate::error::CoreError;
use crate::selection::{validate_selection, TaskSelector};
use crowdfusion_jointdist::JointDist;
use rand::seq::SliceRandom;
use rand::RngCore;

/// Selects `min(k, n)` distinct facts uniformly at random. Within one round
/// a task can be selected only once (paper Section V-C-2), but nothing stops
/// later rounds from re-asking the same fact.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSelector;

impl TaskSelector for RandomSelector {
    fn name(&self) -> String {
        "random".to_string()
    }

    fn select(
        &self,
        dist: &JointDist,
        pc: f64,
        k: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<usize>, CoreError> {
        let k_eff = validate_selection(dist, pc, k)?;
        let mut indices: Vec<usize> = (0..dist.num_vars()).collect();
        indices.shuffle(rng);
        indices.truncate(k_eff);
        Ok(indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdfusion_jointdist::presets::paper_running_example;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selects_distinct_tasks() {
        let d = paper_running_example();
        let mut rng = StdRng::seed_from_u64(1);
        for k in 0..=6 {
            let tasks = RandomSelector.select(&d, 0.8, k, &mut rng).unwrap();
            assert_eq!(tasks.len(), k.min(4));
            let set: std::collections::HashSet<_> = tasks.iter().copied().collect();
            assert_eq!(set.len(), tasks.len(), "duplicates in {tasks:?}");
            assert!(tasks.iter().all(|&t| t < 4));
        }
    }

    #[test]
    fn deterministic_under_seed_and_uniformish() {
        let d = paper_running_example();
        let a = RandomSelector
            .select(&d, 0.8, 2, &mut StdRng::seed_from_u64(3))
            .unwrap();
        let b = RandomSelector
            .select(&d, 0.8, 2, &mut StdRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(a, b);
        // Every fact appears as a first pick eventually.
        let mut rng = StdRng::seed_from_u64(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let t = RandomSelector.select(&d, 0.8, 1, &mut rng).unwrap();
            seen.insert(t[0]);
        }
        assert_eq!(seen.len(), 4);
    }
}
