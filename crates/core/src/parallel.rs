//! Pool-sharded preprocessing of the answer joint distribution.
//!
//! Paper Section III-F: "the preprocessing has good property and can be
//! solved by parallel computing or the MapReduce framework … Each
//! sub-program is responsible for one single counting and calculation of
//! `Pc^#Same (1 − Pc)^#Diff`." Every answer pattern's probability is an
//! independent sum over the output support, so the table shards perfectly
//! across threads. Both shardings run on the engine's [`Pool`] (the
//! fork–join layer shared with the greedy candidate loop and the
//! entity-sharded experiment runner) and compute bit-identical results to
//! their serial counterparts in [`crate::answers`]: work is split by
//! contiguous pattern ranges, so every slot sees the exact same arithmetic
//! sequence regardless of the thread count.

use crate::answers::{AnswerEvaluator, AnswerTable, TableBackend};
use crate::error::CoreError;
use crate::pool::Pool;
use crate::{validate_pc, MAX_DENSE_FACTS};
use crowdfusion_jointdist::JointDist;

fn validate_dense(dist: &JointDist, pc: f64) -> Result<usize, CoreError> {
    validate_pc(pc)?;
    let n = dist.num_vars();
    if n > MAX_DENSE_FACTS {
        return Err(CoreError::TooManyFacts {
            requested: n,
            limit: MAX_DENSE_FACTS,
        });
    }
    Ok(n)
}

/// Computes the full answer joint distribution (Table IV) over `pool` with
/// the requested evaluator. Results are bit-identical to
/// [`crate::answers::full_answer_distribution`] for any thread count.
pub fn full_answer_distribution_pooled(
    dist: &JointDist,
    pc: f64,
    evaluator: AnswerEvaluator,
    pool: &Pool,
) -> Result<Vec<f64>, CoreError> {
    match evaluator {
        AnswerEvaluator::Naive => naive_pooled(dist, pc, pool),
        AnswerEvaluator::Butterfly => butterfly_pooled(dist, pc, pool),
    }
}

/// Builds the preprocessed [`AnswerTable`] for the requested backend:
/// dense tables are computed on `pool` (bit-identical to the serial
/// evaluators for any thread count), sparse tables are the output
/// support itself (exact, `O(|O|)`). [`TableBackend::Auto`] picks dense
/// up to [`MAX_DENSE_FACTS`] facts and sparse beyond — the routing that
/// lifts the dense `2^n` ceiling from the preprocessed selection path.
pub fn full_answer_table_pooled(
    dist: &JointDist,
    pc: f64,
    evaluator: AnswerEvaluator,
    pool: &Pool,
    backend: TableBackend,
) -> Result<AnswerTable, CoreError> {
    let dense = match backend {
        TableBackend::Auto => dist.num_vars() <= MAX_DENSE_FACTS,
        TableBackend::Dense => true,
        TableBackend::Sparse => false,
    };
    if dense {
        Ok(AnswerTable::Dense {
            n: dist.num_vars(),
            probs: full_answer_distribution_pooled(dist, pc, evaluator, pool)?,
        })
    } else {
        AnswerTable::sparse(dist, pc)
    }
}

/// Computes the full answer joint distribution with the paper's naive
/// per-pattern summation, sharded over `threads` workers.
pub fn full_answer_distribution_naive_parallel(
    dist: &JointDist,
    pc: f64,
    threads: usize,
) -> Result<Vec<f64>, CoreError> {
    naive_pooled(dist, pc, &Pool::new(threads))
}

/// Computes the full answer joint distribution with the butterfly
/// transform, parallelising each bit stage across independent pattern
/// blocks.
pub fn full_answer_distribution_butterfly_parallel(
    dist: &JointDist,
    pc: f64,
    threads: usize,
) -> Result<Vec<f64>, CoreError> {
    butterfly_pooled(dist, pc, &Pool::new(threads))
}

fn naive_pooled(dist: &JointDist, pc: f64, pool: &Pool) -> Result<Vec<f64>, CoreError> {
    let n = validate_dense(dist, pc)?;
    let patterns = 1usize << n;
    let mut out = vec![0.0f64; patterns];
    // Precompute pc^s (1-pc)^d lookups.
    let weights: Vec<f64> = (0..=n)
        .map(|d| pc.powi((n - d) as i32) * (1.0 - pc).powi(d as i32))
        .collect();
    pool.for_each_chunk(&mut out, pool.chunk_size(patterns), |base, chunk| {
        for (offset, slot) in chunk.iter_mut().enumerate() {
            let answer = (base + offset) as u64;
            let mut total = 0.0;
            for (o, p) in dist.iter() {
                let diff = (o.0 ^ answer).count_ones() as usize;
                total += p * weights[diff];
            }
            *slot = total;
        }
    });
    Ok(out)
}

fn butterfly_pooled(dist: &JointDist, pc: f64, pool: &Pool) -> Result<Vec<f64>, CoreError> {
    let n = validate_dense(dist, pc)?;
    let patterns = 1usize << n;
    let mut w = vec![0.0f64; patterns];
    for (o, p) in dist.iter() {
        w[o.0 as usize] += p;
    }
    if pc == 1.0 {
        return Ok(w);
    }
    let q = 1.0 - pc;
    for bit in 0..n {
        let block = 1usize << (bit + 1);
        // Blocks of size 2^(bit+1) are independent; shard whole blocks.
        let blocks_per_chunk = (patterns / block).div_ceil(pool.threads()).max(1);
        pool.for_each_chunk(&mut w, blocks_per_chunk * block, |_, chunk| {
            // `patterns` and the chunk size are both multiples of
            // `block`, so every chunk holds whole blocks.
            let stride = block >> 1;
            let mut base = 0;
            while base < chunk.len() {
                for i in base..base + stride {
                    let lo = chunk[i];
                    let hi = chunk[i + stride];
                    chunk[i] = pc * lo + q * hi;
                    chunk[i + stride] = q * lo + pc * hi;
                }
                base += block;
            }
        });
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::{full_answer_distribution, AnswerEvaluator};
    use crowdfusion_jointdist::presets::paper_running_example;
    use crowdfusion_jointdist::{Assignment, JointDist};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dist(n: usize, seed: u64) -> JointDist {
        let mut rng = StdRng::seed_from_u64(seed);
        JointDist::from_weights(
            n,
            (0..(1u64 << n)).map(|a| (Assignment(a), rng.gen_range(0.0..1.0))),
        )
        .unwrap()
    }

    #[test]
    fn naive_parallel_matches_serial_bit_for_bit() {
        let d = paper_running_example();
        let serial = full_answer_distribution(&d, 0.8, AnswerEvaluator::Naive).unwrap();
        for threads in [1, 2, 4, 7] {
            let par = full_answer_distribution_naive_parallel(&d, 0.8, threads).unwrap();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn butterfly_parallel_matches_serial_bit_for_bit() {
        for n in [3usize, 5, 8] {
            let d = random_dist(n, n as u64);
            let serial = full_answer_distribution(&d, 0.7, AnswerEvaluator::Butterfly).unwrap();
            for threads in [1, 3, 8] {
                let par = full_answer_distribution_butterfly_parallel(&d, 0.7, threads).unwrap();
                assert_eq!(serial, par, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn pooled_dispatch_covers_both_evaluators() {
        let d = random_dist(5, 11);
        let pool = Pool::new(3);
        for ev in [AnswerEvaluator::Naive, AnswerEvaluator::Butterfly] {
            let pooled = full_answer_distribution_pooled(&d, 0.9, ev, &pool).unwrap();
            let serial = full_answer_distribution(&d, 0.9, ev).unwrap();
            for (a, b) in serial.iter().zip(&pooled) {
                assert!((a - b).abs() < 1e-12, "{ev:?}");
            }
        }
    }

    #[test]
    fn perfect_crowd_is_identity() {
        let d = random_dist(4, 9);
        let par = full_answer_distribution_butterfly_parallel(&d, 1.0, 4).unwrap();
        for (a, p) in d.iter() {
            assert!((par[a.0 as usize] - p).abs() < 1e-12);
        }
    }

    #[test]
    fn validation() {
        let d = paper_running_example();
        assert!(matches!(
            full_answer_distribution_naive_parallel(&d, 0.2, 2),
            Err(CoreError::InvalidAccuracy(_))
        ));
        assert!(matches!(
            full_answer_distribution_butterfly_parallel(&d, 1.2, 2),
            Err(CoreError::InvalidAccuracy(_))
        ));
    }

    #[test]
    fn table_backend_routing() {
        let d = random_dist(5, 21);
        let pool = Pool::new(2);
        let auto = full_answer_table_pooled(
            &d,
            0.8,
            AnswerEvaluator::Butterfly,
            &pool,
            TableBackend::Auto,
        )
        .unwrap();
        assert!(matches!(auto, AnswerTable::Dense { .. }));
        let sparse = full_answer_table_pooled(
            &d,
            0.8,
            AnswerEvaluator::Butterfly,
            &pool,
            TableBackend::Sparse,
        )
        .unwrap();
        assert!(matches!(sparse, AnswerTable::Sparse { .. }));
        // Both backends agree on every task-set distribution.
        for bits in 0u64..(1 << 5) {
            let tasks = crowdfusion_jointdist::VarSet(bits);
            let a = auto.distribution(tasks).unwrap();
            let b = sparse.distribution(tasks).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12, "backend mismatch at {tasks}");
            }
        }
    }

    #[test]
    fn table_boundary_auto_switches_at_the_dense_limit() {
        // n == MAX_DENSE_FACTS stays dense (checked at Pc = 1 so the
        // 2^26 table is a cheap identity scatter); n == MAX_DENSE_FACTS+1
        // flips Auto to sparse, while forcing Dense reproduces the old
        // hard failure.
        use crowdfusion_jointdist::Assignment;
        let pool = Pool::serial();
        let at_limit = JointDist::certain(MAX_DENSE_FACTS, Assignment(0b101)).unwrap();
        let table = full_answer_table_pooled(
            &at_limit,
            1.0,
            AnswerEvaluator::Butterfly,
            &pool,
            TableBackend::Auto,
        )
        .unwrap();
        assert!(matches!(table, AnswerTable::Dense { .. }));
        assert_eq!(table.len(), 1usize << MAX_DENSE_FACTS);

        let past = JointDist::certain(MAX_DENSE_FACTS + 1, Assignment(0b101)).unwrap();
        let table = full_answer_table_pooled(
            &past,
            0.8,
            AnswerEvaluator::Butterfly,
            &pool,
            TableBackend::Auto,
        )
        .unwrap();
        assert!(matches!(table, AnswerTable::Sparse { .. }));
        assert_eq!(table.num_facts(), MAX_DENSE_FACTS + 1);
        assert!(matches!(
            full_answer_table_pooled(
                &past,
                0.8,
                AnswerEvaluator::Butterfly,
                &pool,
                TableBackend::Dense,
            ),
            Err(CoreError::TooManyFacts { requested, limit })
                if requested == MAX_DENSE_FACTS + 1 && limit == MAX_DENSE_FACTS
        ));
        assert!(matches!(
            full_answer_distribution_pooled(&past, 0.8, AnswerEvaluator::Naive, &pool),
            Err(CoreError::TooManyFacts { .. })
        ));
    }
}
