//! Parallel preprocessing of the answer joint distribution.
//!
//! Paper Section III-F: "the preprocessing has good property and can be
//! solved by parallel computing or the MapReduce framework … Each
//! sub-program is responsible for one single counting and calculation of
//! `Pc^#Same (1 − Pc)^#Diff`." Every answer pattern's probability is an
//! independent sum over the output support, so the table shards perfectly
//! across threads. This module implements that sharding with crossbeam
//! scoped threads, for both the paper's naive `O(|O|²)` computation and our
//! butterfly transform (whose per-bit stages shard across pattern blocks).

use crate::error::CoreError;
use crate::{validate_pc, MAX_DENSE_FACTS};
use crowdfusion_jointdist::JointDist;

/// Computes the full answer joint distribution (Table IV) with the paper's
/// naive per-pattern summation, sharded over `threads` workers.
pub fn full_answer_distribution_naive_parallel(
    dist: &JointDist,
    pc: f64,
    threads: usize,
) -> Result<Vec<f64>, CoreError> {
    validate_pc(pc)?;
    let n = dist.num_vars();
    if n > MAX_DENSE_FACTS {
        return Err(CoreError::TooManyFacts {
            requested: n,
            limit: MAX_DENSE_FACTS,
        });
    }
    let threads = threads.max(1);
    let patterns = 1usize << n;
    let mut out = vec![0.0f64; patterns];
    // Precompute pc^s (1-pc)^d lookups.
    let weights: Vec<f64> = (0..=n)
        .map(|d| pc.powi((n - d) as i32) * (1.0 - pc).powi(d as i32))
        .collect();
    let chunk = patterns.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            let weights = &weights;
            let base = c * chunk;
            scope.spawn(move |_| {
                for (offset, slot) in slice.iter_mut().enumerate() {
                    let answer = (base + offset) as u64;
                    let mut total = 0.0;
                    for (o, p) in dist.iter() {
                        let diff = (o.0 ^ answer).count_ones() as usize;
                        total += p * weights[diff];
                    }
                    *slot = total;
                }
            });
        }
    })
    .expect("worker panicked");
    Ok(out)
}

/// Computes the full answer joint distribution with the butterfly
/// transform, parallelising each bit stage across independent pattern
/// blocks.
pub fn full_answer_distribution_butterfly_parallel(
    dist: &JointDist,
    pc: f64,
    threads: usize,
) -> Result<Vec<f64>, CoreError> {
    validate_pc(pc)?;
    let n = dist.num_vars();
    if n > MAX_DENSE_FACTS {
        return Err(CoreError::TooManyFacts {
            requested: n,
            limit: MAX_DENSE_FACTS,
        });
    }
    let threads = threads.max(1);
    let patterns = 1usize << n;
    let mut w = vec![0.0f64; patterns];
    for (o, p) in dist.iter() {
        w[o.0 as usize] += p;
    }
    if pc == 1.0 {
        return Ok(w);
    }
    let q = 1.0 - pc;
    for bit in 0..n {
        let block = 1usize << (bit + 1);
        // Blocks of size 2^(bit+1) are independent; shard them.
        let blocks_per_chunk = (patterns / block).div_ceil(threads).max(1);
        let chunk_len = blocks_per_chunk * block;
        crossbeam::thread::scope(|scope| {
            for slice in w.chunks_mut(chunk_len) {
                scope.spawn(move |_| {
                    // `patterns` and `chunk_len` are both multiples of
                    // `block`, so every slice holds whole blocks.
                    let stride = block >> 1;
                    let mut base = 0;
                    while base < slice.len() {
                        for i in base..base + stride {
                            let lo = slice[i];
                            let hi = slice[i + stride];
                            slice[i] = pc * lo + q * hi;
                            slice[i + stride] = q * lo + pc * hi;
                        }
                        base += block;
                    }
                });
            }
        })
        .expect("worker panicked");
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::{full_answer_distribution, AnswerEvaluator};
    use crowdfusion_jointdist::presets::paper_running_example;
    use crowdfusion_jointdist::{Assignment, JointDist};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dist(n: usize, seed: u64) -> JointDist {
        let mut rng = StdRng::seed_from_u64(seed);
        JointDist::from_weights(
            n,
            (0..(1u64 << n)).map(|a| (Assignment(a), rng.gen_range(0.0..1.0))),
        )
        .unwrap()
    }

    #[test]
    fn naive_parallel_matches_serial() {
        let d = paper_running_example();
        let serial = full_answer_distribution(&d, 0.8, AnswerEvaluator::Naive).unwrap();
        for threads in [1, 2, 4, 7] {
            let par = full_answer_distribution_naive_parallel(&d, 0.8, threads).unwrap();
            for (a, b) in serial.iter().zip(&par) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn butterfly_parallel_matches_serial() {
        for n in [3usize, 5, 8] {
            let d = random_dist(n, n as u64);
            let serial = full_answer_distribution(&d, 0.7, AnswerEvaluator::Butterfly).unwrap();
            for threads in [1, 3, 8] {
                let par = full_answer_distribution_butterfly_parallel(&d, 0.7, threads).unwrap();
                for (a, b) in serial.iter().zip(&par) {
                    assert!((a - b).abs() < 1e-12, "n={n} threads={threads}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn perfect_crowd_is_identity() {
        let d = random_dist(4, 9);
        let par = full_answer_distribution_butterfly_parallel(&d, 1.0, 4).unwrap();
        for (a, p) in d.iter() {
            assert!((par[a.0 as usize] - p).abs() < 1e-12);
        }
    }

    #[test]
    fn validation() {
        let d = paper_running_example();
        assert!(matches!(
            full_answer_distribution_naive_parallel(&d, 0.2, 2),
            Err(CoreError::InvalidAccuracy(_))
        ));
        assert!(matches!(
            full_answer_distribution_butterfly_parallel(&d, 1.2, 2),
            Err(CoreError::InvalidAccuracy(_))
        ));
    }
}
