//! Lifting machine-fusion output into a joint prior distribution.
//!
//! "Many existing data fusion methods can be applied to CrowdFusion by
//! considering their result confidence distribution as an input … their
//! result is a (marginal) probability distribution and can be extended to
//! the joint distribution as required" (paper Section VII). This module
//! performs that extension: from per-fact marginals alone (independence) or
//! together with *correlation groups* — sets of statements that are format
//! variants of one another (equivalent) while different groups name
//! conflicting values.

use crate::error::CoreError;
use crowdfusion_jointdist::{Factor, FactorGraphBuilder, JointDist, VarSet};

/// Default penalty for two equivalent statements disagreeing.
pub const DEFAULT_EQUIV_PENALTY: f64 = 0.35;
/// Default penalty per extra true statement among conflicting groups.
pub const DEFAULT_CONFLICT_PENALTY: f64 = 0.75;

/// Builds an independent joint prior from per-fact marginals.
pub fn independent_prior(marginals: &[f64]) -> Result<JointDist, CoreError> {
    Ok(JointDist::independent(marginals)?)
}

/// Builds a correlated joint prior from marginals plus equivalence groups.
///
/// `groups` partitions `0..marginals.len()` (indices not mentioned are
/// implicitly singletons): statements inside one group are softly tied
/// together ([`Factor::Equivalent`], penalty `equiv_penalty` per
/// disagreeing member), while the *representatives* (first members) of
/// different groups are softly mutually exclusive ([`Factor::AtMostOne`],
/// penalty `conflict_penalty` per extra truth) — two different author sets
/// cannot both be the book's author list.
pub fn grouped_prior(
    marginals: &[f64],
    groups: &[Vec<usize>],
    equiv_penalty: f64,
    conflict_penalty: f64,
) -> Result<JointDist, CoreError> {
    let n = marginals.len();
    for group in groups {
        for &idx in group {
            if idx >= n {
                return Err(CoreError::TaskOutOfRange { index: idx, n });
            }
        }
    }
    let mut builder = FactorGraphBuilder::new(marginals.to_vec());
    let mut representatives = Vec::new();
    for group in groups {
        match group.as_slice() {
            [] => continue,
            [single] => representatives.push(*single),
            members => {
                builder = builder.factor(Factor::Equivalent {
                    vars: VarSet::from_vars(members.iter().copied()),
                    penalty: equiv_penalty,
                });
                representatives.push(members[0]);
            }
        }
    }
    if representatives.len() >= 2 {
        builder = builder.factor(Factor::AtMostOne {
            vars: VarSet::from_vars(representatives),
            penalty: conflict_penalty,
        });
    }
    Ok(builder.build()?)
}

/// Convenience wrapper using the default penalties.
pub fn default_grouped_prior(
    marginals: &[f64],
    groups: &[Vec<usize>],
) -> Result<JointDist, CoreError> {
    grouped_prior(
        marginals,
        groups,
        DEFAULT_EQUIV_PENALTY,
        DEFAULT_CONFLICT_PENALTY,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_prior_keeps_marginals() {
        let p = independent_prior(&[0.2, 0.9]).unwrap();
        assert!((p.marginal(0).unwrap() - 0.2).abs() < 1e-12);
        assert!((p.marginal(1).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn grouped_prior_ties_variants_together() {
        // Statements 0 and 1 are variants of each other; 2 conflicts.
        let p = grouped_prior(&[0.6, 0.55, 0.5], &[vec![0, 1], vec![2]], 0.1, 0.1).unwrap();
        // Conditioning on statement 0 true must raise statement 1 and
        // lower statement 2.
        let given_true = p.condition(0, true).unwrap();
        let given_false = p.condition(0, false).unwrap();
        assert!(given_true.marginal(1).unwrap() > given_false.marginal(1).unwrap() + 0.2);
        assert!(given_true.marginal(2).unwrap() < given_false.marginal(2).unwrap());
    }

    #[test]
    fn singleton_groups_reduce_to_conflict_only() {
        let p = grouped_prior(&[0.5, 0.5], &[vec![0], vec![1]], 0.25, 0.0).unwrap();
        // Hard conflict: both true impossible.
        assert_eq!(p.prob(crowdfusion_jointdist::Assignment(0b11)), 0.0);
    }

    #[test]
    fn empty_groups_are_ignored() {
        let p = grouped_prior(&[0.5, 0.5], &[vec![], vec![0, 1]], 0.2, 0.3).unwrap();
        assert_eq!(p.num_vars(), 2);
    }

    #[test]
    fn out_of_range_group_rejected() {
        assert!(matches!(
            grouped_prior(&[0.5], &[vec![0, 3]], 0.2, 0.3),
            Err(CoreError::TaskOutOfRange { .. })
        ));
    }

    #[test]
    fn defaults_build() {
        let p = default_grouped_prior(&[0.5, 0.5, 0.5], &[vec![0, 1], vec![2]]).unwrap();
        assert_eq!(p.num_vars(), 3);
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
    }
}
