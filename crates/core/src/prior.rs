//! Lifting machine-fusion output into a joint prior distribution.
//!
//! "Many existing data fusion methods can be applied to CrowdFusion by
//! considering their result confidence distribution as an input … their
//! result is a (marginal) probability distribution and can be extended to
//! the joint distribution as required" (paper Section VII). This module
//! performs that extension: from per-fact marginals alone (independence) or
//! together with *correlation groups* — sets of statements that are format
//! variants of one another (equivalent) while different groups name
//! conflicting values.

use crate::error::CoreError;
use crowdfusion_jointdist::{Factor, FactorGraphBuilder, JointDist, VarSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default penalty for two equivalent statements disagreeing.
pub const DEFAULT_EQUIV_PENALTY: f64 = 0.35;
/// Default penalty per extra true statement among conflicting groups.
pub const DEFAULT_CONFLICT_PENALTY: f64 = 0.75;

/// Maximum importance-sampling draws for sparse priors beyond the dense
/// limit (reached by maximally hard entities; easier entities draw less,
/// see [`adaptive_sparse_draws`]).
pub const SPARSE_PRIOR_DRAWS: usize = 8_192;

/// Minimum importance-sampling draws for sparse priors: even a trivially
/// easy entity keeps enough support to represent its residual uncertainty.
pub const SPARSE_PRIOR_MIN_DRAWS: usize = 1_024;

/// Draw budget for one entity's sparse prior, scaled by
/// [`crate::hardness::factor_hardness`]: a near-settled entity draws
/// [`SPARSE_PRIOR_MIN_DRAWS`] samples (its posterior mass concentrates on
/// a handful of assignments anyway), a maximally uncertain one the full
/// [`SPARSE_PRIOR_DRAWS`]. Entities whose marginals all sit at 0.5 — the
/// regime every stress test and the paper's large-book experiments use —
/// score hardness 1.0 exactly, so their priors are bit-identical to the
/// historical fixed-cap behaviour.
pub fn adaptive_sparse_draws(marginals: &[f64], groups: &[Vec<usize>]) -> usize {
    let hardness = crate::hardness::factor_hardness(marginals, groups);
    let span = (SPARSE_PRIOR_DRAWS - SPARSE_PRIOR_MIN_DRAWS) as f64;
    SPARSE_PRIOR_MIN_DRAWS + (hardness * span).round() as usize
}

/// Fixed base seed for sparse prior materialisation; combined with the
/// entity's fact count so priors stay a pure function of their inputs
/// (reproducible byte for byte across runs and thread counts).
const SPARSE_PRIOR_SEED: u64 = 0x0043_524F_5746_5553; // "CROWFUS"

/// Builds an independent joint prior from per-fact marginals.
pub fn independent_prior(marginals: &[f64]) -> Result<JointDist, CoreError> {
    Ok(JointDist::independent(marginals)?)
}

/// Builds a correlated joint prior from marginals plus equivalence groups.
///
/// `groups` partitions `0..marginals.len()` (indices not mentioned are
/// implicitly singletons): statements inside one group are softly tied
/// together ([`Factor::Equivalent`], penalty `equiv_penalty` per
/// disagreeing member), while the *representatives* (first members) of
/// different groups are softly mutually exclusive ([`Factor::AtMostOne`],
/// penalty `conflict_penalty` per extra truth) — two different author sets
/// cannot both be the book's author list.
///
/// Up to [`crate::MAX_DENSE_FACTS`] facts the factor graph is
/// materialised exactly by dense enumeration; beyond that (the book
/// entities with 26+ facts the paper's efficiency experiments single
/// out) it switches to the deterministic sparse importance sampler
/// ([`FactorGraphBuilder::build_sparse`], [`adaptive_sparse_draws`] draws
/// from a fixed seed — hardness-scaled between [`SPARSE_PRIOR_MIN_DRAWS`]
/// and [`SPARSE_PRIOR_DRAWS`]), so large entities get a sparse-support
/// prior instead of a hard `TooManyVariables` failure.
pub fn grouped_prior(
    marginals: &[f64],
    groups: &[Vec<usize>],
    equiv_penalty: f64,
    conflict_penalty: f64,
) -> Result<JointDist, CoreError> {
    let n = marginals.len();
    for group in groups {
        for &idx in group {
            if idx >= n {
                return Err(CoreError::TaskOutOfRange { index: idx, n });
            }
        }
    }
    let mut builder = FactorGraphBuilder::new(marginals.to_vec());
    let mut representatives = Vec::new();
    for group in groups {
        match group.as_slice() {
            [] => continue,
            [single] => representatives.push(*single),
            members => {
                builder = builder.factor(Factor::Equivalent {
                    vars: VarSet::from_vars(members.iter().copied()),
                    penalty: equiv_penalty,
                });
                representatives.push(members[0]);
            }
        }
    }
    if representatives.len() >= 2 {
        builder = builder.factor(Factor::AtMostOne {
            vars: VarSet::from_vars(representatives),
            penalty: conflict_penalty,
        });
    }
    if n <= crate::MAX_DENSE_FACTS {
        Ok(builder.build()?)
    } else {
        let draws = adaptive_sparse_draws(marginals, groups);
        let mut rng = StdRng::seed_from_u64(SPARSE_PRIOR_SEED ^ n as u64);
        let prior = builder.build_sparse(draws, &mut rng)?;
        // Growth control: the sampler dedups its draws, so today the
        // support cannot exceed the draw budget — but richer generators
        // (merged priors, future samplers) can. The within-budget guard
        // skips `thin_to`'s defensive clone on the common path.
        if prior.support_size() <= draws {
            Ok(prior)
        } else {
            Ok(prior.thin_to(draws)?)
        }
    }
}

/// Convenience wrapper using the default penalties.
pub fn default_grouped_prior(
    marginals: &[f64],
    groups: &[Vec<usize>],
) -> Result<JointDist, CoreError> {
    grouped_prior(
        marginals,
        groups,
        DEFAULT_EQUIV_PENALTY,
        DEFAULT_CONFLICT_PENALTY,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_prior_keeps_marginals() {
        let p = independent_prior(&[0.2, 0.9]).unwrap();
        assert!((p.marginal(0).unwrap() - 0.2).abs() < 1e-12);
        assert!((p.marginal(1).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn grouped_prior_ties_variants_together() {
        // Statements 0 and 1 are variants of each other; 2 conflicts.
        let p = grouped_prior(&[0.6, 0.55, 0.5], &[vec![0, 1], vec![2]], 0.1, 0.1).unwrap();
        // Conditioning on statement 0 true must raise statement 1 and
        // lower statement 2.
        let given_true = p.condition(0, true).unwrap();
        let given_false = p.condition(0, false).unwrap();
        assert!(given_true.marginal(1).unwrap() > given_false.marginal(1).unwrap() + 0.2);
        assert!(given_true.marginal(2).unwrap() < given_false.marginal(2).unwrap());
    }

    #[test]
    fn singleton_groups_reduce_to_conflict_only() {
        let p = grouped_prior(&[0.5, 0.5], &[vec![0], vec![1]], 0.25, 0.0).unwrap();
        // Hard conflict: both true impossible.
        assert_eq!(p.prob(crowdfusion_jointdist::Assignment(0b11)), 0.0);
    }

    #[test]
    fn empty_groups_are_ignored() {
        let p = grouped_prior(&[0.5, 0.5], &[vec![], vec![0, 1]], 0.2, 0.3).unwrap();
        assert_eq!(p.num_vars(), 2);
    }

    #[test]
    fn out_of_range_group_rejected() {
        assert!(matches!(
            grouped_prior(&[0.5], &[vec![0, 3]], 0.2, 0.3),
            Err(CoreError::TaskOutOfRange { .. })
        ));
    }

    #[test]
    fn defaults_build() {
        let p = default_grouped_prior(&[0.5, 0.5, 0.5], &[vec![0, 1], vec![2]]).unwrap();
        assert_eq!(p.num_vars(), 3);
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_entities_get_a_sparse_prior() {
        // 32 facts in four 8-member equivalence groups: dense enumeration
        // is impossible, the sparse importance sampler takes over — and
        // still reflects the correlation structure.
        let n = 32usize;
        let marginals = vec![0.5; n];
        let groups: Vec<Vec<usize>> = (0..4).map(|g| (g * 8..(g + 1) * 8).collect()).collect();
        let p = default_grouped_prior(&marginals, &groups).unwrap();
        assert_eq!(p.num_vars(), n);
        assert!(p.support_size() <= SPARSE_PRIOR_DRAWS);
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
        // Group members are positively tied.
        let given_true = p.condition(0, true).unwrap();
        let given_false = p.condition(0, false).unwrap();
        assert!(given_true.marginal(1).unwrap() > given_false.marginal(1).unwrap() + 0.1);
        // Deterministic: same inputs, same prior, byte for byte.
        let again = default_grouped_prior(&marginals, &groups).unwrap();
        assert_eq!(p, again);
    }

    #[test]
    fn sparse_prior_growth_control_thins_to_the_draw_budget() {
        // The routed thinning is the identity while the sampler stays
        // within budget (pinned bit-for-bit above in
        // `large_entities_get_a_sparse_prior`); this exercises the
        // control itself on an overshooting support.
        // Concentrated marginals: the support has a heavy head and a long
        // low-mass tail — the shape growth control exists for.
        let n = 32usize;
        let marginals: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 0.95 } else { 0.05 })
            .collect();
        let prior = default_grouped_prior(&marginals, &[]).unwrap();
        assert!(prior.support_size() <= SPARSE_PRIOR_DRAWS);
        let over = prior.support_size() / 2;
        let thinned = prior.thin_to(over).unwrap();
        assert_eq!(thinned.support_size(), over);
        assert!((thinned.total_mass() - 1.0).abs() < 1e-9);
        // Trimming the tail moves marginals by less than the sampler's
        // own Monte-Carlo noise floor.
        for (a, b) in prior.marginals().iter().zip(thinned.marginals()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn adaptive_draws_scale_with_hardness() {
        // Easy (near-certain) entities draw fewer samples than hard
        // (maximally uncertain) ones, monotonically, inside the bounds.
        let n = 30usize;
        let easy = adaptive_sparse_draws(&vec![0.02; n], &[]);
        let medium = adaptive_sparse_draws(&vec![0.2; n], &[]);
        let hard = adaptive_sparse_draws(&vec![0.5; n], &[]);
        assert!(easy < medium, "{easy} < {medium}");
        assert!(medium < hard, "{medium} < {hard}");
        assert!(easy >= SPARSE_PRIOR_MIN_DRAWS);
        assert_eq!(
            hard, SPARSE_PRIOR_DRAWS,
            "0.5-marginal entities keep the historical fixed cap"
        );
        // Certain facts need only the floor.
        let certain = adaptive_sparse_draws(&vec![0.0; n], &[]);
        assert_eq!(certain, SPARSE_PRIOR_MIN_DRAWS);
        // Correlation groups make an entity draw more.
        let flat = adaptive_sparse_draws(&vec![0.3; n], &[]);
        let grouped = adaptive_sparse_draws(&vec![0.3; n], &[vec![0, 1, 2]]);
        assert!(flat < grouped, "{flat} < {grouped}");
    }

    #[test]
    fn adaptive_prior_matches_fixed_cap_reference_within_epsilon() {
        use crowdfusion_jointdist::PROB_EPSILON;
        // A hard-0/1 entity collapses to a single support point whatever
        // the draw count, so the adaptive prior must match a reference
        // built with the historical fixed cap to within PROB_EPSILON.
        let n = 30usize;
        let mut marginals = vec![0.0; n];
        marginals[7] = 1.0;
        marginals[19] = 1.0;
        assert_eq!(
            adaptive_sparse_draws(&marginals, &[]),
            SPARSE_PRIOR_MIN_DRAWS
        );
        let adaptive = grouped_prior(&marginals, &[], 0.3, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(SPARSE_PRIOR_SEED ^ n as u64);
        let reference = FactorGraphBuilder::new(marginals.clone())
            .build_sparse(SPARSE_PRIOR_DRAWS, &mut rng)
            .unwrap();
        assert_eq!(adaptive.support_size(), 1);
        assert_eq!(reference.support_size(), 1);
        for (a, r) in adaptive.marginals().iter().zip(reference.marginals()) {
            assert!((a - r).abs() <= PROB_EPSILON, "{a} vs {r}");
        }
        // And the maximally hard regime *is* the fixed cap: bit-identical.
        let marginals = vec![0.5; n];
        let adaptive = grouped_prior(&marginals, &[], 0.3, 0.7).unwrap();
        let mut rng = StdRng::seed_from_u64(SPARSE_PRIOR_SEED ^ n as u64);
        let reference = FactorGraphBuilder::new(marginals)
            .build_sparse(SPARSE_PRIOR_DRAWS, &mut rng)
            .unwrap();
        assert_eq!(adaptive, reference);
    }

    #[test]
    fn boundary_between_dense_and_sparse_priors() {
        use crate::MAX_DENSE_FACTS;
        // n == MAX_DENSE_FACTS still builds densely. Hard 0/1 marginals
        // keep the check cheap: the enumeration's zero-weight early exit
        // discards almost every assignment after one factor, collapsing
        // the support to a single point mass.
        let mut marginals = vec![0.0; MAX_DENSE_FACTS];
        marginals[3] = 1.0;
        let p = grouped_prior(&marginals, &[], 0.3, 0.7).unwrap();
        assert_eq!(p.num_vars(), MAX_DENSE_FACTS);
        assert_eq!(p.support_size(), 1);
        // n == MAX_DENSE_FACTS + 1 routes to the sparse sampler instead
        // of failing.
        let marginals = vec![0.5; MAX_DENSE_FACTS + 1];
        let p = grouped_prior(&marginals, &[vec![0, 1]], 0.3, 0.7).unwrap();
        assert_eq!(p.num_vars(), MAX_DENSE_FACTS + 1);
        assert!(p.support_size() <= SPARSE_PRIOR_DRAWS);
    }
}
