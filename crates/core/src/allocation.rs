//! Global budget allocation across entities — the extension the paper's
//! error analysis calls for.
//!
//! Section V-D observes that "books with large numbers of statements are
//! more likely to be judged incorrectly" under a fixed per-book budget, and
//! suggests that "if a proper strategy can be designed to distribute budgets
//! among all subsets of facts, this can be solved". This module implements
//! that strategy: instead of spending `B` judgments on every entity, a
//! single global budget is allocated greedily by *expected utility gain per
//! judgment*.
//!
//! The gain of asking fact `f` of entity `e` is the mutual information
//! between the answer and the entity's facts,
//! `I(F_e; Ans_f) = H({f}) − H(Pc)` (the identity verified in the
//! integration tests): uncertain facts in uncertain entities earn budget,
//! already-settled entities stop receiving any.

use crate::answers::{answer_entropy, posterior, AnswerEvaluator};
use crate::error::CoreError;
use crate::metrics::{ConfusionCounts, QualityPoint};
use crate::round::EntityCase;
use crate::system::ExperimentTrace;
use crowdfusion_crowd::{AnswerModel, CrowdPlatform, Task, TaskId};
use crowdfusion_jointdist::{binary_entropy, JointDist, VarSet};
use serde::{Deserialize, Serialize};

/// Configuration of a globally budgeted run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GlobalBudgetConfig {
    /// Total number of crowd judgments across *all* entities.
    pub total_budget: usize,
    /// Judgments issued per global round (one batch = one crowdsourcing
    /// publication).
    pub batch: usize,
    /// The crowd accuracy assumed for planning and updating.
    pub pc_assumed: f64,
}

impl GlobalBudgetConfig {
    /// Validates and constructs a config.
    pub fn new(
        total_budget: usize,
        batch: usize,
        pc_assumed: f64,
    ) -> Result<GlobalBudgetConfig, CoreError> {
        if batch == 0 {
            return Err(CoreError::EmptyTaskSet);
        }
        crate::validate_pc(pc_assumed)?;
        Ok(GlobalBudgetConfig {
            total_budget,
            batch,
            pc_assumed,
        })
    }
}

/// Expected utility gain of asking one fact: `H(Ans_f) − H(Pc)` in bits.
/// Zero when the fact is already certain (the answer would be pure noise).
pub fn single_task_gain(dist: &JointDist, fact: usize, pc: f64) -> Result<f64, CoreError> {
    let h = answer_entropy(dist, VarSet::single(fact), pc, AnswerEvaluator::Butterfly)?;
    Ok((h - binary_entropy(pc)).max(0.0))
}

/// The best `(fact, gain)` for an entity, or `None` for a zero-fact entity.
pub fn best_task(dist: &JointDist, pc: f64) -> Result<Option<(usize, f64)>, CoreError> {
    let mut best: Option<(usize, f64)> = None;
    for f in 0..dist.num_vars() {
        let gain = single_task_gain(dist, f, pc)?;
        match best {
            Some((_, g)) if gain <= g => {}
            _ => best = Some((f, gain)),
        }
    }
    Ok(best)
}

/// Runs the globally budgeted refinement: each round ranks entities by the
/// expected gain of their best single task, asks the crowd the top `batch`
/// of them, and merges the answers. Produces the same quality-vs-cost
/// series as [`crate::system::Experiment::run`], so fixed-budget and
/// global-budget strategies compare point for point.
pub fn run_global<M: AnswerModel>(
    cases: &[EntityCase],
    config: GlobalBudgetConfig,
    platform: &mut CrowdPlatform<M>,
) -> Result<ExperimentTrace, CoreError> {
    for case in cases {
        case.validate()?;
    }
    let mut dists: Vec<JointDist> = cases.iter().map(|c| c.prior.clone()).collect();
    let measure = |dists: &[JointDist], cost: u64| {
        let mut utility = 0.0;
        let mut counts = ConfusionCounts::default();
        for (dist, case) in dists.iter().zip(cases) {
            utility += dist.utility();
            counts.add_marginals(&dist.marginals(), case.gold);
        }
        QualityPoint {
            cost,
            utility,
            f1: counts.f1(),
            precision: counts.precision(),
            recall: counts.recall(),
        }
    };
    let mut points = vec![measure(&dists, 0)];
    let mut spent = 0usize;
    let mut task_seq = 0u64;

    while spent < config.total_budget {
        // Rank every entity's best single task through the scheduler's
        // gain queue: highest gain first, deterministic tie-break by
        // entity index — the exact admission order `serve --budget-mode
        // global` uses across sessions.
        let mut queue = crate::sched::GainQueue::new();
        for (e, dist) in dists.iter().enumerate() {
            if let Some((fact, gain)) = best_task(dist, config.pc_assumed)? {
                queue.insert(e as u64, fact, gain);
            }
        }
        let take = config.batch.min(config.total_budget - spent);
        let mut ranked: Vec<(usize, usize, f64)> = Vec::new(); // (entity, fact, gain)
        while ranked.len() < take {
            match queue.pop_best() {
                Some(entry) => ranked.push((entry.session as usize, entry.fact, entry.gain())),
                None => break,
            }
        }
        if ranked.is_empty() || ranked.iter().all(|&(_, _, gain)| gain <= 1e-12) {
            break; // nothing left worth asking
        }

        // Publish the batch (one task per chosen entity).
        let tasks: Vec<Task> = ranked
            .iter()
            .map(|&(e, f, _)| {
                task_seq += 1;
                Task {
                    id: TaskId(task_seq),
                    prompt: cases[e].prompts[f].clone(),
                    class: cases[e].classes[f],
                }
            })
            .collect();
        let truths: Vec<bool> = ranked
            .iter()
            .map(|&(e, f, _)| cases[e].gold.get(f))
            .collect();
        let answers = platform.publish(&tasks, &truths)?;
        for (&(e, f, _), answer) in ranked.iter().zip(&answers) {
            dists[e] = posterior(&dists[e], &[f], &[answer.value], config.pc_assumed)?;
        }
        spent += ranked.len();
        points.push(measure(&dists, spent as u64));
    }

    Ok(ExperimentTrace {
        selector: format!("global-budget(batch={})", config.batch),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdfusion_crowd::{UniformAccuracy, WorkerPool};
    use crowdfusion_jointdist::presets::paper_running_example;
    use crowdfusion_jointdist::Assignment;

    fn platform(pc: f64, seed: u64) -> CrowdPlatform<UniformAccuracy> {
        CrowdPlatform::new(
            WorkerPool::uniform(8, pc).unwrap(),
            UniformAccuracy::new(pc),
            seed,
        )
    }

    fn cases() -> Vec<EntityCase> {
        vec![
            // A nearly-settled entity…
            EntityCase::simple(
                "settled",
                JointDist::independent(&[0.98, 0.02, 0.97]).unwrap(),
                Assignment(0b101),
            ),
            // …and a maximally uncertain one.
            EntityCase::simple(
                "uncertain",
                JointDist::uniform(3).unwrap(),
                Assignment(0b011),
            ),
        ]
    }

    #[test]
    fn config_validation() {
        assert!(GlobalBudgetConfig::new(10, 0, 0.8).is_err());
        assert!(GlobalBudgetConfig::new(10, 2, 0.3).is_err());
        assert!(GlobalBudgetConfig::new(10, 2, 0.8).is_ok());
    }

    #[test]
    fn single_task_gain_ordering() {
        let d = paper_running_example();
        // f1 (marginal 0.5) must have the highest single-task gain.
        let gains: Vec<f64> = (0..4)
            .map(|f| single_task_gain(&d, f, 0.8).unwrap())
            .collect();
        let max = gains.iter().cloned().fold(f64::MIN, f64::max);
        assert!((gains[0] - max).abs() < 1e-12);
        // A certain fact has zero gain.
        let certain = JointDist::certain(2, Assignment(0b01)).unwrap();
        assert!(single_task_gain(&certain, 0, 0.8).unwrap() < 1e-12);
        assert!(single_task_gain(&certain, 1, 0.8).unwrap() < 1e-12);
    }

    #[test]
    fn budget_flows_to_uncertain_entities() {
        let cases = cases();
        let config = GlobalBudgetConfig::new(6, 1, 0.9).unwrap();
        let mut p = platform(0.9, 3);
        let trace = run_global(&cases, config, &mut p).unwrap();
        assert_eq!(trace.last().cost, 6);
        // The uncertain entity's facts should have been resolved: with all
        // six judgments spent there, its marginals move far from 0.5.
        // (Indirect check: total utility improves by roughly the uncertain
        // entity's 3 bits.)
        let improvement = trace.last().utility - trace.points[0].utility;
        assert!(improvement > 1.5, "improvement {improvement}");
    }

    #[test]
    fn stops_when_nothing_worth_asking() {
        let settled = vec![EntityCase::simple(
            "done",
            JointDist::certain(2, Assignment(0b01)).unwrap(),
            Assignment(0b01),
        )];
        let config = GlobalBudgetConfig::new(10, 2, 0.8).unwrap();
        let mut p = platform(0.8, 0);
        let trace = run_global(&settled, config, &mut p).unwrap();
        assert_eq!(trace.last().cost, 0, "no judgments should be bought");
        assert_eq!(p.ledger().judgments, 0);
    }

    #[test]
    fn respects_total_budget_exactly() {
        let cases = cases();
        let config = GlobalBudgetConfig::new(7, 3, 0.8).unwrap();
        let mut p = platform(0.8, 1);
        let trace = run_global(&cases, config, &mut p).unwrap();
        assert_eq!(trace.last().cost, 7);
        assert_eq!(p.ledger().judgments, 7);
        // Each round asks at most one task per entity (2 here), so the
        // batches are 2 + 2 + 2 + 1 — four rounds plus the prior point.
        assert_eq!(trace.points.len(), 5);
    }

    #[test]
    fn beats_fixed_budget_on_heterogeneous_entities() {
        use crate::round::RoundConfig;
        use crate::selection::GreedySelector;
        use crate::system::Experiment;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        // Entity sizes 2 and 6 facts: fixed budget wastes judgments on the
        // small entity while starving the big one.
        let cases = vec![
            EntityCase::simple(
                "small",
                JointDist::independent(&[0.9, 0.1]).unwrap(),
                Assignment(0b01),
            ),
            EntityCase::simple(
                "large",
                JointDist::uniform(6).unwrap(),
                Assignment(0b101011),
            ),
        ];
        // Averaged over enough seeds that the comparison is robust to
        // ulp-level evaluation-order changes in the selector (an
        // individual seed can go either way).
        let total = 16;
        let mut global_sum = 0.0;
        let mut fixed_sum = 0.0;
        for seed in 0..32 {
            let config = GlobalBudgetConfig::new(total, 2, 0.85).unwrap();
            let mut p = platform(0.85, seed);
            global_sum += run_global(&cases, config, &mut p).unwrap().last().utility;

            let fixed = RoundConfig::new(2, total / 2, 0.85).unwrap();
            let exp = Experiment::new(cases.clone(), fixed).unwrap();
            let mut p = platform(0.85, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            fixed_sum += exp
                .run(&GreedySelector::fast(), &mut p, &mut rng)
                .unwrap()
                .last()
                .utility;
        }
        assert!(
            global_sum > fixed_sum,
            "global {global_sum} should beat fixed {fixed_sum}"
        );
    }
}
