//! Fact triples and the [`FactSet`] container.
//!
//! "A fact `f_i` is represented as a triple of {subject, predicate, object}
//! and its value is either true or false" (paper Section II-A).

use crate::error::CoreError;
use crowdfusion_jointdist::presets;
use crowdfusion_jointdist::JointDist;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A boolean fact about a real-world entity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fact {
    /// The entity, e.g. `"Hong Kong"`.
    pub subject: String,
    /// The attribute, e.g. `"Continent"`.
    pub predicate: String,
    /// The claimed value, e.g. `"Asia"`.
    pub object: String,
}

impl Fact {
    /// Builds a fact triple.
    pub fn new(
        subject: impl Into<String>,
        predicate: impl Into<String>,
        object: impl Into<String>,
    ) -> Fact {
        Fact {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }

    /// The crowdsourcing question for this fact, e.g.
    /// `Is "Hong Kong — Continent: Asia" correct?` (cf. the paper's
    /// “Is Hong Kong an Asia city?”).
    pub fn prompt(&self) -> String {
        format!(
            "Is \"{} — {}: {}\" correct?",
            self.subject, self.predicate, self.object
        )
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}, {}, {}}}",
            self.subject, self.predicate, self.object
        )
    }
}

/// A set of facts together with the joint distribution over their truth
/// values — the paper's `F` with output set `O` (Tables I–II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactSet {
    facts: Vec<Fact>,
    dist: JointDist,
}

impl FactSet {
    /// Couples facts with their joint distribution. The distribution must
    /// have exactly one variable per fact.
    pub fn new(facts: Vec<Fact>, dist: JointDist) -> Result<FactSet, CoreError> {
        if facts.len() != dist.num_vars() {
            return Err(CoreError::TaskOutOfRange {
                index: dist.num_vars(),
                n: facts.len(),
            });
        }
        Ok(FactSet { facts, dist })
    }

    /// Builds a fact set with an independent prior from per-fact marginals.
    pub fn from_marginals(facts: Vec<Fact>, marginals: &[f64]) -> Result<FactSet, CoreError> {
        let dist = JointDist::independent(marginals)?;
        FactSet::new(facts, dist)
    }

    /// The paper's running example (Tables I–II): four facts about
    /// Hong Kong with their 16-row joint distribution.
    pub fn running_example() -> FactSet {
        let facts = presets::paper_running_example_labels()
            .into_iter()
            .map(|(s, p, o)| Fact::new(s, p, o))
            .collect();
        FactSet {
            facts,
            dist: presets::paper_running_example(),
        }
    }

    /// Number of facts `n`.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The facts, in variable order.
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// The joint distribution over the facts.
    pub fn dist(&self) -> &JointDist {
        &self.dist
    }

    /// Replaces the joint distribution (e.g. after a Bayesian update).
    pub fn set_dist(&mut self, dist: JointDist) -> Result<(), CoreError> {
        if dist.num_vars() != self.facts.len() {
            return Err(CoreError::TaskOutOfRange {
                index: dist.num_vars(),
                n: self.facts.len(),
            });
        }
        self.dist = dist;
        Ok(())
    }

    /// The utility `Q(F) = −H(F)` (Definition 1).
    pub fn utility(&self) -> f64 {
        self.dist.utility()
    }

    /// Marginal `P(f_i)` per fact (Table I's last column).
    pub fn marginals(&self) -> Vec<f64> {
        self.dist.marginals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fact_display_and_prompt() {
        let f = Fact::new("Hong Kong", "Continent", "Asia");
        assert_eq!(f.to_string(), "{Hong Kong, Continent, Asia}");
        assert!(f.prompt().contains("Hong Kong"));
        assert!(f.prompt().contains("Asia"));
    }

    #[test]
    fn running_example_shape() {
        let fs = FactSet::running_example();
        assert_eq!(fs.len(), 4);
        assert!(!fs.is_empty());
        assert_eq!(fs.facts()[3].object, "Europe");
        let m = fs.marginals();
        assert!((m[0] - 0.50).abs() < 1e-9);
        assert!((m[1] - 0.63).abs() < 1e-9);
    }

    #[test]
    fn new_validates_arity() {
        let dist = JointDist::uniform(3).unwrap();
        let facts = vec![Fact::new("a", "b", "c")];
        assert!(matches!(
            FactSet::new(facts, dist),
            Err(CoreError::TaskOutOfRange { .. })
        ));
    }

    #[test]
    fn from_marginals_independent() {
        let facts = vec![Fact::new("x", "p", "1"), Fact::new("x", "p", "2")];
        let fs = FactSet::from_marginals(facts, &[0.3, 0.9]).unwrap();
        assert!((fs.marginals()[1] - 0.9).abs() < 1e-9);
        assert!(fs.utility() <= 0.0);
    }

    #[test]
    fn set_dist_checks_arity() {
        let mut fs = FactSet::running_example();
        assert!(fs.set_dist(JointDist::uniform(3).unwrap()).is_err());
        let u4 = JointDist::uniform(4).unwrap();
        fs.set_dist(u4.clone()).unwrap();
        assert_eq!(fs.dist(), &u4);
        assert!((fs.utility() + 4.0).abs() < 1e-9);
    }
}
