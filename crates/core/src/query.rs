//! Query-based CrowdFusion (paper Section IV).
//!
//! When users only care about a subset `I ⊆ F` of facts (the *facts of
//! interest*, FOI), the utility becomes `Q(I|T) = H(T) − H(I, T)` — the
//! negative conditional entropy `−H(I | Ans_T)` of the interesting facts
//! given the crowd answers. Facts outside `I` can still be worth asking
//! because they are correlated with facts inside `I` (the paper's
//! continent/population example).
//!
//! The objective remains monotone and submodular in `T` (conditioning on
//! independent noisy observations has diminishing returns), so the same
//! greedy framework achieves the `(1 − 1/e)` rate. Note the paper's
//! Equation 7 displays the monotonicity inequality with the direction
//! reversed; the implemented direction (`Q(I|T) ≤ Q(I|T')` for `T ⊆ T'`,
//! "information never hurts") is the one its own proof sketch supports.

use crate::answers::{bsc_transform_in_place, posterior_in_place};
use crate::error::CoreError;
use crate::round::{prepare_round, EntityCase, RoundConfig};
use crate::selection::{validate_selection, TaskSelector};
use crate::MAX_DENSE_FACTS;
use crowdfusion_crowd::{AnswerModel, CrowdPlatform};
use crowdfusion_jointdist::{JointDist, VarSet};
use rand::RngCore;
use std::collections::BTreeMap;

/// Gains below this threshold terminate the greedy loop early. Unlike the
/// general case (Theorem 2), zero gains are *common* here: a fact
/// uncorrelated with `I` contributes exactly nothing.
const GAIN_EPSILON: f64 = 1e-9;

/// Joint entropy `H(I, T)` of the interesting facts' ground truth and the
/// crowd answers on `tasks`, in bits.
pub fn truth_answer_joint_entropy(
    dist: &JointDist,
    interest: VarSet,
    tasks: VarSet,
    pc: f64,
) -> Result<f64, CoreError> {
    crate::validate_pc(pc)?;
    let n = dist.num_vars();
    if let Some(bad) = interest
        .union(tasks)
        .difference(VarSet::all(n))
        .iter()
        .next()
    {
        return Err(CoreError::TaskOutOfRange { index: bad, n });
    }
    if interest.is_empty() {
        return Err(CoreError::EmptyInterestSet);
    }
    let t = tasks.len();
    if t > MAX_DENSE_FACTS {
        return Err(CoreError::TooManyFacts {
            requested: t,
            limit: MAX_DENSE_FACTS,
        });
    }
    // Group outputs by their restriction to I; per group, scatter onto the
    // task-pattern lattice and push through the answer channel. The map is
    // ordered: the entropy accumulation below folds f64s in group order,
    // and hash order would make the rounding (hence the trace) vary per
    // process.
    let mut groups: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    let patterns = 1usize << t;
    for (o, p) in dist.iter() {
        let key = o.extract(interest);
        let w = groups.entry(key).or_insert_with(|| vec![0.0; patterns]);
        w[o.extract(tasks) as usize] += p;
    }
    let mut h = 0.0;
    for w in groups.values_mut() {
        bsc_transform_in_place(w, t, pc);
        for &p in w.iter() {
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
    }
    Ok(h.max(0.0))
}

/// The query-based utility `Q(I|T) = H(T) − H(I, T) = −H(I | Ans_T)`
/// (Definition 5 restricted to the FOI). Always `≤ 0`; higher is better.
pub fn query_utility(
    dist: &JointDist,
    interest: VarSet,
    tasks: VarSet,
    pc: f64,
) -> Result<f64, CoreError> {
    let h_t = crate::answers::answer_entropy(
        dist,
        tasks,
        pc,
        crate::answers::AnswerEvaluator::Butterfly,
    )?;
    let h_it = truth_answer_joint_entropy(dist, interest, tasks, pc)?;
    Ok(h_t - h_it)
}

/// Greedy task selection maximising the query-based utility (Section IV-B):
/// Algorithm 1 with the gain `ρ_j = Q(I|T ∪ {j}) − Q(I|T)`.
#[derive(Debug, Clone, Copy)]
pub struct QueryGreedySelector {
    interest: VarSet,
}

impl QueryGreedySelector {
    /// Creates a selector for the given facts-of-interest set.
    pub fn new(interest: VarSet) -> QueryGreedySelector {
        QueryGreedySelector { interest }
    }

    /// The facts of interest.
    pub fn interest(&self) -> VarSet {
        self.interest
    }
}

impl TaskSelector for QueryGreedySelector {
    fn name(&self) -> String {
        format!("query-greedy[I={}]", self.interest)
    }

    fn select(
        &self,
        dist: &JointDist,
        pc: f64,
        k: usize,
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<usize>, CoreError> {
        let k_eff = validate_selection(dist, pc, k)?;
        if self.interest.is_empty() {
            return Err(CoreError::EmptyInterestSet);
        }
        let n = dist.num_vars();
        let mut selected = Vec::with_capacity(k_eff);
        let mut selected_set = VarSet::EMPTY;
        let mut q_current = query_utility(dist, self.interest, VarSet::EMPTY, pc)?;

        for _ in 0..k_eff {
            let mut best: Option<(usize, f64)> = None;
            for f in 0..n {
                if selected_set.contains(f) {
                    continue;
                }
                let q = query_utility(dist, self.interest, selected_set.insert(f), pc)?;
                match best {
                    Some((_, best_q)) if q <= best_q => {}
                    _ => best = Some((f, q)),
                }
            }
            let Some((f, q)) = best else { break };
            if q - q_current <= GAIN_EPSILON {
                break; // no fact improves knowledge of the FOI
            }
            selected.push(f);
            selected_set = selected_set.insert(f);
            q_current = q;
        }
        Ok(selected)
    }
}

/// One point of a budgeted quality curve in query mode: how much the FOI
/// is known after `cost` judgments.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryCurvePoint {
    /// Cumulative judgments spent.
    pub cost: usize,
    /// The *planned* utility `Q(I|T)` of the cumulative task set against
    /// the prior — monotone non-decreasing along the curve (information
    /// never hurts), independent of what the crowd actually answered.
    pub plan_utility: f64,
    /// Entropy `H(I)` of the FOI under the current posterior, in bits.
    pub entropy: f64,
    /// Fraction of FOI facts whose posterior marginal rounds to the gold
    /// truth.
    pub accuracy: f64,
}

/// The FOI-aware round driver: runs the select–collect–update loop of
/// Figure 1 with [`QueryGreedySelector`] steering every round toward the
/// facts of interest, and records a budget → quality curve.
///
/// Each round re-plans on the evolving posterior (so answers steer later
/// selections), spends `min(k, n, remaining)` judgments, and appends a
/// [`QueryCurvePoint`]: `plan_utility` is evaluated against the *prior*
/// over the cumulative task set — a growing chain, so the planned curve is
/// monotone by the corrected Equation 7 — while `entropy`/`accuracy` track
/// the realised posterior. The loop stops early when no fact still informs
/// the FOI (`GAIN_EPSILON`) or when the cumulative task set would exceed
/// the dense answer-lattice width ([`MAX_DENSE_FACTS`]); the first point
/// is always the zero-cost prior.
pub fn run_query_rounds<M: AnswerModel>(
    case: &EntityCase,
    interest: VarSet,
    config: RoundConfig,
    platform: &mut CrowdPlatform<M>,
    rng: &mut dyn RngCore,
    task_seq: &mut u64,
) -> Result<Vec<QueryCurvePoint>, CoreError> {
    case.validate()?;
    if interest.is_empty() {
        return Err(CoreError::EmptyInterestSet);
    }
    let selector = QueryGreedySelector::new(interest);
    let mut dist = case.prior.clone();
    let mut cumulative = VarSet::EMPTY;
    let mut remaining = config.budget;
    let mut spent = 0usize;

    let measure = |dist: &JointDist, cumulative: VarSet, spent: usize| -> Result<_, CoreError> {
        let mut correct = 0usize;
        for f in interest.iter() {
            let truth = dist.marginal(f)? >= 0.5;
            correct += usize::from(truth == case.gold.get(f));
        }
        Ok(QueryCurvePoint {
            cost: spent,
            plan_utility: query_utility(&case.prior, interest, cumulative, config.pc_assumed)?,
            entropy: dist.restrict(interest)?.entropy(),
            accuracy: correct as f64 / interest.len() as f64,
        })
    };

    let mut points = vec![measure(&dist, cumulative, 0)?];
    while remaining > 0 {
        let Some(pending) =
            prepare_round(case, config, &dist, remaining, &selector, rng, task_seq)?
        else {
            break; // FOI settled or budget gone
        };
        let next_cumulative = cumulative.union(VarSet::from_vars(pending.tasks.iter().copied()));
        if next_cumulative.len() > MAX_DENSE_FACTS {
            break; // planned curve would leave the dense answer lattice
        }
        let answers = platform.publish(&pending.crowd_tasks, &pending.truths)?;
        let judgments: Vec<bool> = answers.iter().map(|a| a.value).collect();
        posterior_in_place(&mut dist, &pending.tasks, &judgments, config.pc_assumed)?;
        spent += pending.tasks.len();
        remaining -= pending.tasks.len();
        cumulative = next_cumulative;
        points.push(measure(&dist, cumulative, spent)?);
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::{answer_entropy, AnswerEvaluator};
    use crate::selection::GreedySelector;
    use crowdfusion_jointdist::presets::paper_running_example;
    use crowdfusion_jointdist::{binary_entropy, Factor, FactorGraphBuilder, JointDist};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn joint_entropy_decomposes_for_full_interest() {
        // H(F, T) = H(F) + |T| · H(Pc) when T ⊆ F (answers are
        // conditionally independent given the truth).
        let d = paper_running_example();
        let interest = VarSet::all(4);
        for tasks in [VarSet::single(0), VarSet::from_vars([1, 3]), VarSet::all(4)] {
            let h = truth_answer_joint_entropy(&d, interest, tasks, 0.8).unwrap();
            let expected = d.entropy() + tasks.len() as f64 * binary_entropy(0.8);
            assert!(
                (h - expected).abs() < 1e-9,
                "H(F,{tasks}) = {h}, expected {expected}"
            );
        }
    }

    #[test]
    fn joint_entropy_is_bit_identical_to_sorted_order_reference() {
        // Regression for a nondeterminism bug: the group fold used to run
        // in `HashMap` iteration order, so the f64 rounding — and hence
        // the refinement trace — could differ between processes (the
        // hasher is seeded per process). The fold must match a reference
        // that accumulates in ascending group-key order, bit for bit.
        let d = paper_running_example();
        let interest = VarSet::from_vars([0, 2]);
        let tasks = VarSet::from_vars([1, 2, 3]);
        let pc = 0.8;

        let t = tasks.len();
        let patterns = 1usize << t;
        let mut groups: Vec<(u64, Vec<f64>)> = Vec::new();
        for (o, p) in d.iter() {
            let key = o.extract(interest);
            let idx = match groups.binary_search_by_key(&key, |g| g.0) {
                Ok(i) => i,
                Err(i) => {
                    groups.insert(i, (key, vec![0.0; patterns]));
                    i
                }
            };
            groups[idx].1[o.extract(tasks) as usize] += p;
        }
        let mut expected = 0.0f64;
        for (_, w) in groups.iter_mut() {
            bsc_transform_in_place(w, t, pc);
            for &p in w.iter() {
                if p > 0.0 {
                    expected -= p * p.log2();
                }
            }
        }
        let expected = expected.max(0.0);

        let h = truth_answer_joint_entropy(&d, interest, tasks, pc).unwrap();
        assert_eq!(
            h.to_bits(),
            expected.to_bits(),
            "group fold must accumulate in ascending key order \
             (got {h:e}, reference {expected:e})"
        );
    }

    #[test]
    fn empty_task_set_gives_negative_interest_entropy() {
        let d = paper_running_example();
        let interest = VarSet::from_vars([1, 2]);
        let q = query_utility(&d, interest, VarSet::EMPTY, 0.8).unwrap();
        let h_i = d.restrict(interest).unwrap().entropy();
        assert!((q + h_i).abs() < 1e-9, "Q(I|∅) should equal −H(I)");
    }

    #[test]
    fn utility_is_monotone_in_tasks() {
        // Q(I|T) ≤ Q(I|T') for T ⊆ T' — the corrected Equation 7.
        let d = paper_running_example();
        let interest = VarSet::from_vars([1, 2]);
        let t1 = VarSet::single(0);
        let t2 = VarSet::from_vars([0, 3]);
        let q0 = query_utility(&d, interest, VarSet::EMPTY, 0.8).unwrap();
        let q1 = query_utility(&d, interest, t1, 0.8).unwrap();
        let q2 = query_utility(&d, interest, t2, 0.8).unwrap();
        assert!(q1 >= q0 - 1e-12);
        assert!(q2 >= q1 - 1e-12);
    }

    #[test]
    fn full_interest_reduces_to_general_selection() {
        // With I = F the query-based gain differs from ΔH(T) by the
        // constant H(Pc), so the selected sets must match the general
        // greedy (paper Section IV-B: "query based CrowdFusion is a general
        // case of CrowdFusion").
        let d = paper_running_example();
        let general = GreedySelector::fast()
            .select(&d, 0.8, 2, &mut rng())
            .unwrap();
        let query = QueryGreedySelector::new(VarSet::all(4))
            .select(&d, 0.8, 2, &mut rng())
            .unwrap();
        assert_eq!(general, query);
    }

    #[test]
    fn correlated_outside_fact_is_worth_asking() {
        // Three facts: 0 and 1 strongly tied, 2 independent. With
        // I = {1}, asking fact 0 must beat asking the unrelated fact 2 —
        // the continent/population story of Section IV.
        let d = FactorGraphBuilder::new(vec![0.5, 0.5, 0.5])
            .factor(Factor::Equivalent {
                vars: VarSet::from_vars([0, 1]),
                penalty: 0.05,
            })
            .build()
            .unwrap();
        let interest = VarSet::single(1);
        let q_outside = query_utility(&d, interest, VarSet::single(0), 0.8).unwrap();
        let q_unrelated = query_utility(&d, interest, VarSet::single(2), 0.8).unwrap();
        assert!(
            q_outside > q_unrelated + 1e-6,
            "correlated fact not preferred: {q_outside} vs {q_unrelated}"
        );
        // And greedy with k = 1 picks fact 0 or 1, never fact 2.
        let picked = QueryGreedySelector::new(interest)
            .select(&d, 0.8, 1, &mut rng())
            .unwrap();
        assert_ne!(picked, vec![2]);
    }

    #[test]
    fn uninformative_facts_terminate_selection_early() {
        // I = {0}; facts 1 and 2 are independent of fact 0, so once fact 0
        // is maximally informative the greedy should stop before k.
        let d = JointDist::independent(&[0.5, 0.5, 0.5]).unwrap();
        let picked = QueryGreedySelector::new(VarSet::single(0))
            .select(&d, 0.9, 3, &mut rng())
            .unwrap();
        // Fact 0 itself is asked; the unrelated ones are skipped.
        assert_eq!(picked, vec![0]);
    }

    #[test]
    fn validation_errors() {
        let d = paper_running_example();
        assert!(matches!(
            QueryGreedySelector::new(VarSet::EMPTY).select(&d, 0.8, 2, &mut rng()),
            Err(CoreError::EmptyInterestSet)
        ));
        assert!(matches!(
            truth_answer_joint_entropy(&d, VarSet::from_vars([9]), VarSet::single(0), 0.8),
            Err(CoreError::TaskOutOfRange { .. })
        ));
        assert!(matches!(
            truth_answer_joint_entropy(&d, VarSet::single(0), VarSet::single(1), 1.5),
            Err(CoreError::InvalidAccuracy(_))
        ));
        assert!(matches!(
            truth_answer_joint_entropy(&d, VarSet::EMPTY, VarSet::single(1), 0.8),
            Err(CoreError::EmptyInterestSet)
        ));
    }

    #[test]
    fn query_mode_handles_entities_beyond_the_dense_limit() {
        // 32 facts, sparse support: the query-based utilities group by
        // interest pattern and scatter onto the *task* lattice only, so
        // entity size never triggers the dense ceiling.
        let n = 32usize;
        let entries = (0..64u64).map(|i| {
            (
                crowdfusion_jointdist::Assignment(
                    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << n) - 1),
                ),
                1.0 + (i % 5) as f64,
            )
        });
        let d = JointDist::from_weights(n, entries).unwrap();
        let interest = VarSet::from_vars([3, 17, 30]);
        let q_empty = query_utility(&d, interest, VarSet::EMPTY, 0.8).unwrap();
        let q_inside = query_utility(&d, interest, VarSet::single(17), 0.8).unwrap();
        assert!(
            q_inside >= q_empty - 1e-12,
            "asking an FOI fact never hurts"
        );
        let picked = QueryGreedySelector::new(interest)
            .select(&d, 0.8, 3, &mut rng())
            .unwrap();
        assert!(!picked.is_empty());
        assert!(picked.iter().all(|&f| f < n));
    }

    #[test]
    fn task_width_boundary_at_max_dense_facts() {
        // The dense ceiling in query mode is about the *task set* width:
        // |T| == MAX_DENSE_FACTS is accepted (cheap at Pc = 1 where the
        // channel is the identity), |T| == MAX_DENSE_FACTS + 1 rejected —
        // on an entity wider than both.
        use crate::MAX_DENSE_FACTS;
        let n = MAX_DENSE_FACTS + 2;
        let d = JointDist::certain(n, crowdfusion_jointdist::Assignment(0b1)).unwrap();
        let interest = VarSet::single(n - 1);
        let at_limit = VarSet::all(MAX_DENSE_FACTS);
        let h = truth_answer_joint_entropy(&d, interest, at_limit, 1.0).unwrap();
        assert!(h.abs() < 1e-9, "certain truth through a perfect channel");
        let past_limit = VarSet::all(MAX_DENSE_FACTS + 1);
        assert!(matches!(
            truth_answer_joint_entropy(&d, interest, past_limit, 1.0),
            Err(CoreError::TooManyFacts { requested, limit })
                if requested == MAX_DENSE_FACTS + 1 && limit == MAX_DENSE_FACTS
        ));
    }

    #[test]
    fn query_round_driver_emits_a_monotone_planned_curve() {
        use crate::round::EntityCase;
        use crowdfusion_crowd::{UniformAccuracy, WorkerPool};
        let case = EntityCase::simple(
            "Hong Kong",
            paper_running_example(),
            crowdfusion_jointdist::Assignment(0b0111),
        );
        let interest = VarSet::from_vars([1, 2]);
        let config = crate::round::RoundConfig::new(2, 10, 0.9).unwrap();
        let mut platform = CrowdPlatform::new(
            WorkerPool::uniform(8, 0.9).unwrap(),
            UniformAccuracy::new(0.9),
            11,
        );
        let mut seq = 0u64;
        let points = run_query_rounds(
            &case,
            interest,
            config,
            &mut platform,
            &mut StdRng::seed_from_u64(4),
            &mut seq,
        )
        .unwrap();
        assert!(points.len() >= 2, "at least prior + one round");
        assert_eq!(points[0].cost, 0);
        for w in points.windows(2) {
            assert!(w[1].cost > w[0].cost, "costs strictly increase");
            assert!(
                w[1].plan_utility >= w[0].plan_utility - 1e-12,
                "planned curve must be monotone: {} then {}",
                w[0].plan_utility,
                w[1].plan_utility
            );
        }
        for p in &points {
            assert!((0.0..=1.0).contains(&p.accuracy));
            assert!(p.entropy >= -1e-12);
        }
        // A reliable crowd leaves the FOI better known than the prior did.
        let last = points.last().unwrap();
        assert!(last.entropy < points[0].entropy);
        assert_eq!(last.accuracy, 1.0, "0.9-accurate crowd settles 2 facts");

        // Determinism: identical inputs, identical curve.
        let mut platform = CrowdPlatform::new(
            WorkerPool::uniform(8, 0.9).unwrap(),
            UniformAccuracy::new(0.9),
            11,
        );
        let mut seq = 0u64;
        let again = run_query_rounds(
            &case,
            interest,
            config,
            &mut platform,
            &mut StdRng::seed_from_u64(4),
            &mut seq,
        )
        .unwrap();
        assert_eq!(points, again);
    }

    #[test]
    fn query_round_driver_stops_when_foi_is_settled() {
        use crate::round::EntityCase;
        use crowdfusion_crowd::{UniformAccuracy, WorkerPool};
        // Independent facts, FOI already certain: nothing informs it, so
        // no budget is spent and the curve is the single prior point.
        let d = FactorGraphBuilder::new(vec![1.0, 0.5, 0.5])
            .build()
            .unwrap();
        let case = EntityCase::simple("settled", d, crowdfusion_jointdist::Assignment(0b001));
        let config = crate::round::RoundConfig::new(2, 10, 0.9).unwrap();
        let mut platform = CrowdPlatform::new(
            WorkerPool::uniform(8, 0.9).unwrap(),
            UniformAccuracy::new(0.9),
            0,
        );
        let mut seq = 0u64;
        let points = run_query_rounds(
            &case,
            VarSet::single(0),
            config,
            &mut platform,
            &mut StdRng::seed_from_u64(0),
            &mut seq,
        )
        .unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(platform.ledger().judgments, 0);
        assert_eq!(points[0].accuracy, 1.0);
        // And an empty interest set is rejected up front.
        assert!(matches!(
            run_query_rounds(
                &case,
                VarSet::EMPTY,
                config,
                &mut platform,
                &mut StdRng::seed_from_u64(0),
                &mut seq,
            ),
            Err(CoreError::EmptyInterestSet)
        ));
    }

    #[test]
    fn h_t_consistency_between_modules() {
        // H(T) from answers.rs equals H(I,T) − H(I | Ans_T)… simpler:
        // verify H(I,T) ≥ H(T) and H(I,T) ≥ H(I).
        let d = paper_running_example();
        let interest = VarSet::from_vars([1, 2]);
        let tasks = VarSet::from_vars([0, 3]);
        let h_it = truth_answer_joint_entropy(&d, interest, tasks, 0.8).unwrap();
        let h_t = answer_entropy(&d, tasks, 0.8, AnswerEvaluator::Butterfly).unwrap();
        let h_i = d.restrict(interest).unwrap().entropy();
        assert!(h_it >= h_t - 1e-12);
        assert!(h_it >= h_i - 1e-12);
        assert!(h_it <= h_t + h_i + 1e-12);
    }
}
