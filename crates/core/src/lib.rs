//! CrowdFusion — crowdsourced data fusion refinement (Chen, Chen & Zhang,
//! ICDE 2017).
//!
//! This crate implements the paper's primary contribution: given a joint
//! prior over boolean facts (from any machine-only fusion method) and a
//! noisy crowd with accuracy `Pc`, repeatedly select the size-`k` task set
//! maximising the entropy of the crowd-answer distribution (NP-hard;
//! Theorem 1), ask the crowd, and merge the answers with Bayes' rule until
//! the budget runs out (Figure 1).
//!
//! Layout:
//!
//! * [`model`] — fact triples and the [`model::FactSet`] container;
//! * [`answers`] — the answer distribution of Equation 2 (naive and
//!   butterfly evaluators) and the Bayesian merge of Equation 3;
//! * [`selection`] — OPT, the `(1 − 1/e)` greedy (Algorithm 1), Theorem 3
//!   pruning, Algorithm 2 preprocessing and the random baseline;
//! * [`query`] — the query-based extension (Section IV);
//! * [`prior`] — lifting fusion marginals (+ correlation groups) into a
//!   joint prior;
//! * [`round`] / [`system`] — the select–collect–update round driver and
//!   multi-entity experiment orchestration (serial and entity-sharded);
//! * [`metrics`] — utility and F1 bookkeeping;
//! * [`pool`] — the fork–join worker pool every sharded computation runs
//!   on (greedy candidates, preprocessing, entity rounds);
//! * [`parallel`] — pool-sharded preprocessing (the paper notes the step
//!   is MapReduce-friendly);
//! * [`selection::engine`] — the cached-scatter incremental evaluator
//!   behind the fast greedy configurations;
//! * [`sched`] — the cross-session budget scheduler primitives (marginal
//!   gain, deterministic gain queue, budget ledger) the serving daemon's
//!   global budget mode is built on.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod allocation;
pub mod answers;
pub mod error;
pub mod hardness;
pub mod metrics;
pub mod model;
pub mod parallel;
pub mod pool;
pub mod prior;
pub mod query;
pub mod round;
pub mod sched;
pub mod selection;
pub mod session;
pub mod shard;
pub mod system;

pub use allocation::{run_global, GlobalBudgetConfig};
pub use answers::{
    answer_distribution, answer_entropy, posterior, AnswerEvaluator, AnswerTable, TableBackend,
};
pub use error::CoreError;
pub use metrics::{ConfusionCounts, QualityPoint};
pub use model::{Fact, FactSet};
pub use pool::Pool;
pub use query::{run_query_rounds, QueryCurvePoint, QueryGreedySelector};
pub use round::{EntityCase, EntityTrace, RoundConfig, RoundPoint};
pub use sched::{BudgetLedger, GainEntry, GainQueue};
pub use selection::{
    GreedySelector, OptSelector, PruneBound, RandomSelector, SelectorKind, TaskSelector,
};
pub use session::{
    AbsorbReport, EntitySpec, OpenedSession, PublishedRound, PublishedTask, RegistryMetrics,
    RegistrySnapshot, SelectOutcome, SessionRegistry, SessionSnapshot, SessionState,
};
pub use shard::ShardedRegistry;
pub use system::{assemble_trace, EntitySeries, Experiment, ExperimentTrace, RoundQuality};

/// Maximum number of facts per entity for which dense answer-space
/// operations are permitted (the same bound as
/// [`crowdfusion_jointdist::MAX_DENSE_VARS`]).
pub const MAX_DENSE_FACTS: usize = crowdfusion_jointdist::MAX_DENSE_VARS;

/// Validates a crowd accuracy against the paper's model range `[0.5, 1]`
/// (Definition 2).
pub fn validate_pc(pc: f64) -> Result<(), CoreError> {
    if (0.5..=1.0).contains(&pc) {
        Ok(())
    } else {
        Err(CoreError::InvalidAccuracy(pc))
    }
}
