//! Quality metrics: the paper evaluates with summed utility (Definition 1)
//! and F1-score against the gold standard (Section V-C).

use crowdfusion_jointdist::Assignment;
use serde::{Deserialize, Serialize};

/// Confusion-matrix counts for thresholded truth predictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionCounts {
    /// Predicted true, gold true.
    pub tp: u64,
    /// Predicted true, gold false.
    pub fp: u64,
    /// Predicted false, gold false.
    pub tn: u64,
    /// Predicted false, gold true.
    pub fn_: u64,
}

impl ConfusionCounts {
    /// Accumulates predictions from per-fact marginals against a gold
    /// assignment: fact `i` is predicted true when `marginals[i] ≥ 0.5`.
    pub fn add_marginals(&mut self, marginals: &[f64], gold: Assignment) {
        for (i, &p) in marginals.iter().enumerate() {
            let predicted = p >= 0.5;
            let actual = gold.get(i);
            match (predicted, actual) {
                (true, true) => self.tp += 1,
                (true, false) => self.fp += 1,
                (false, false) => self.tn += 1,
                (false, true) => self.fn_ += 1,
            }
        }
    }

    /// Merges another count set into this one.
    pub fn merge(&mut self, other: ConfusionCounts) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }

    /// Total number of judged facts.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Precision `TP / (TP + FP)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall `TP / (TP + FN)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall); 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Simple accuracy `(TP + TN) / total`; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// One point on a quality-vs-cost curve (the paper's Figures 2–4 series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityPoint {
    /// Cumulative number of crowd judgments spent ("Cost/#Tasks").
    pub cost: u64,
    /// Summed utility `Σ Q(F)` over all entities (Definition 1; the paper
    /// "simply sum\[s\] up the utility scores of all data instances").
    pub utility: f64,
    /// Micro-averaged F1 against the gold standard.
    pub f1: f64,
    /// Micro-averaged precision.
    pub precision: f64,
    /// Micro-averaged recall.
    pub recall: f64,
}

/// Serialises a quality series as CSV (`cost,utility,f1,precision,recall`
/// header plus one row per point) — the format plotting scripts consume.
pub fn quality_points_to_csv(points: &[QualityPoint]) -> String {
    let mut out = String::from("cost,utility,f1,precision,recall\n");
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            p.cost, p.utility, p.f1, p.precision, p.recall
        ));
    }
    out
}

/// Parses a quality series from the CSV produced by
/// [`quality_points_to_csv`]. Returns `None` on any malformed row.
pub fn quality_points_from_csv(csv: &str) -> Option<Vec<QualityPoint>> {
    let mut lines = csv.lines();
    let header = lines.next()?;
    if header.trim() != "cost,utility,f1,precision,recall" {
        return None;
    }
    let mut points = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let cost = fields.next()?.trim().parse().ok()?;
        let utility = fields.next()?.trim().parse().ok()?;
        let f1 = fields.next()?.trim().parse().ok()?;
        let precision = fields.next()?.trim().parse().ok()?;
        let recall = fields.next()?.trim().parse().ok()?;
        if fields.next().is_some() {
            return None;
        }
        points.push(QualityPoint {
            cost,
            utility,
            f1,
            precision,
            recall,
        });
    }
    Some(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_from_marginals() {
        let mut c = ConfusionCounts::default();
        let gold = Assignment(0b0101); // facts 0, 2 true
        c.add_marginals(&[0.9, 0.8, 0.3, 0.1], gold);
        // predictions: T T F F vs gold T F T F
        assert_eq!(
            c,
            ConfusionCounts {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.f1() - 0.5).abs() < 1e-12);
        assert!((c.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionCounts {
            tp: 1,
            fp: 2,
            tn: 3,
            fn_: 4,
        };
        a.merge(ConfusionCounts {
            tp: 10,
            fp: 20,
            tn: 30,
            fn_: 40,
        });
        assert_eq!(a.total(), 110);
        assert_eq!(a.tp, 11);
    }

    #[test]
    fn degenerate_metrics_are_zero() {
        let c = ConfusionCounts::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn perfect_predictions() {
        let mut c = ConfusionCounts::default();
        c.add_marginals(&[0.99, 0.01, 0.8], Assignment(0b101));
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn threshold_is_inclusive_at_half() {
        let mut c = ConfusionCounts::default();
        c.add_marginals(&[0.5], Assignment(0b1));
        assert_eq!(c.tp, 1);
    }

    #[test]
    fn csv_roundtrip() {
        let points = vec![
            QualityPoint {
                cost: 0,
                utility: -12.5,
                f1: 0.25,
                precision: 0.5,
                recall: 1.0 / 6.0,
            },
            QualityPoint {
                cost: 60,
                utility: -1.75,
                f1: 0.9,
                precision: 0.95,
                recall: 0.855,
            },
        ];
        let csv = quality_points_to_csv(&points);
        assert!(csv.starts_with("cost,utility,f1,precision,recall\n"));
        let parsed = quality_points_from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].cost, 0);
        assert!((parsed[1].recall - 0.855).abs() < 1e-12);
        assert!((parsed[0].recall - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(quality_points_from_csv("nope\n1,2,3,4,5\n").is_none());
        assert!(quality_points_from_csv("cost,utility,f1,precision,recall\n1,2,3\n").is_none());
        assert!(
            quality_points_from_csv("cost,utility,f1,precision,recall\n1,2,3,4,5,6\n").is_none()
        );
        assert_eq!(
            quality_points_from_csv("cost,utility,f1,precision,recall\n")
                .unwrap()
                .len(),
            0
        );
    }
}
