//! The select–collect–update round driver for one entity (paper Figure 1).
//!
//! "We call a selection-collection-updating cycle as a round … As long as we
//! have budget, we run another round" (Section III). Per entity (book) the
//! paper gives a budget `B`; each round asks `min(k, n, remaining)` tasks
//! ("If a book has n ≥ k facts, we will ask k tasks in every round …
//! Otherwise, we will ask n tasks in each round instead", Section V-A).

use crate::answers::posterior_in_place;
use crate::error::CoreError;
use crate::selection::TaskSelector;
use crowdfusion_crowd::{AnswerModel, CrowdPlatform, Task, TaskClass};
use crowdfusion_jointdist::{Assignment, JointDist};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Parameters of a budgeted CrowdFusion run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundConfig {
    /// Number of tasks per round (`k`).
    pub k: usize,
    /// Total budget `B` in crowd judgments per entity (the paper uses 60).
    pub budget: usize,
    /// The crowd accuracy the *algorithm* assumes when planning and
    /// updating. May differ from the simulator's true accuracy — the
    /// paper's Pc-setting experiments (Figure 4) explore exactly that gap.
    pub pc_assumed: f64,
}

impl RoundConfig {
    /// Creates a config after validating `k` and `pc`.
    pub fn new(k: usize, budget: usize, pc_assumed: f64) -> Result<RoundConfig, CoreError> {
        if k == 0 {
            return Err(CoreError::EmptyTaskSet);
        }
        crate::validate_pc(pc_assumed)?;
        Ok(RoundConfig {
            k,
            budget,
            pc_assumed,
        })
    }
}

/// One entity (book) in an experiment: its prior, hidden gold truth and the
/// task metadata shown to crowd workers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityCase {
    /// Display name (book title, country name, …).
    pub name: String,
    /// The machine-fusion prior over the entity's facts.
    pub prior: JointDist,
    /// Hidden gold truth (drives the simulated crowd).
    pub gold: Assignment,
    /// Per-fact crowd prompts.
    pub prompts: Vec<String>,
    /// Per-fact confusion classes (drive difficulty-aware answer models).
    pub classes: Vec<TaskClass>,
}

impl EntityCase {
    /// Builds a case with generic prompts and clean classes.
    pub fn simple(name: impl Into<String>, prior: JointDist, gold: Assignment) -> EntityCase {
        let n = prior.num_vars();
        let name = name.into();
        EntityCase {
            prompts: (0..n)
                .map(|i| format!("Is fact {i} of \"{name}\" true?"))
                .collect(),
            classes: vec![TaskClass::Clean; n],
            name,
            prior,
            gold,
        }
    }

    /// Number of facts.
    pub fn num_facts(&self) -> usize {
        self.prior.num_vars()
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), CoreError> {
        let n = self.num_facts();
        if self.prompts.len() != n || self.classes.len() != n {
            return Err(CoreError::AnswerLengthMismatch {
                tasks: n,
                answers: self.prompts.len().min(self.classes.len()),
            });
        }
        Ok(())
    }
}

/// The record of one round on one entity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundPoint {
    /// Round number (1-based).
    pub round: usize,
    /// Cumulative judgments spent on this entity after the round.
    pub cost: usize,
    /// Utility `Q(F)` after merging this round's answers.
    pub utility: f64,
    /// The facts asked this round.
    pub tasks: Vec<usize>,
    /// The crowd's judgments, parallel to `tasks`.
    pub answers: Vec<bool>,
}

/// The full trace of a budgeted run on one entity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityTrace {
    /// Entity name.
    pub name: String,
    /// Utility of the prior before any crowdsourcing.
    pub prior_utility: f64,
    /// Per-round records.
    pub points: Vec<RoundPoint>,
    /// The posterior after the budget is exhausted.
    pub posterior: JointDist,
}

impl EntityTrace {
    /// Total judgments spent.
    pub fn total_cost(&self) -> usize {
        self.points.last().map_or(0, |p| p.cost)
    }

    /// Final utility (prior utility when no round ran).
    pub fn final_utility(&self) -> f64 {
        self.points.last().map_or(self.prior_utility, |p| p.utility)
    }
}

/// Runs the full budget loop of Figure 1 on one entity.
///
/// `task_seq` supplies globally unique task ids across entities/rounds.
pub fn run_entity<M: AnswerModel>(
    case: &EntityCase,
    selector: &dyn TaskSelector,
    config: RoundConfig,
    platform: &mut CrowdPlatform<M>,
    rng: &mut dyn RngCore,
    task_seq: &mut u64,
) -> Result<EntityTrace, CoreError> {
    case.validate()?;
    let mut state = EntityState::new(case, config);
    let mut points = Vec::new();
    while state.remaining > 0 {
        match state.step(selector, platform, rng, task_seq)? {
            Some(point) => points.push(point),
            None => break,
        }
    }
    Ok(EntityTrace {
        name: case.name.clone(),
        prior_utility: case.prior.utility(),
        points,
        posterior: state.dist,
    })
}

/// Incremental per-entity state, stepped one round at a time. Used directly
/// by [`crate::system::Experiment`] to interleave rounds across entities.
pub(crate) struct EntityState<'a> {
    pub(crate) case: &'a EntityCase,
    pub(crate) config: RoundConfig,
    pub(crate) dist: JointDist,
    pub(crate) remaining: usize,
    pub(crate) round: usize,
    pub(crate) spent: usize,
}

/// A round that has been selected but not yet answered: the output of
/// [`EntityState::prepare`], consumed by [`EntityState::absorb`] once the
/// crowd's judgments are in. Splitting the round at the publish boundary
/// is what lets [`crate::system::Experiment::run_sharded`] collect every
/// entity's pending round into one [`crowdfusion_crowd::RoundBatch`] and
/// pay a single platform round trip per global round.
pub(crate) struct PendingRound {
    /// Selected fact indices.
    pub(crate) tasks: Vec<usize>,
    /// The crowd-facing tasks (globally unique ids, prompts, classes).
    pub(crate) crowd_tasks: Vec<Task>,
    /// Hidden ground truths, parallel to `tasks`.
    pub(crate) truths: Vec<bool>,
}

/// The shared *select* phase of one round: picks the task set under the
/// remaining budget and builds the crowd-facing batch, without publishing
/// it. Returns `None` when the budget is exhausted or the selector yields
/// no tasks (`K* = 0`). This single code path backs both the borrowing
/// [`EntityState`] used by the offline experiment runners and the owning
/// [`crate::session::SessionState`] behind the service — so a service
/// session and an offline run fed the same RNG streams select bit-identical
/// rounds by construction.
pub(crate) fn prepare_round(
    case: &EntityCase,
    config: RoundConfig,
    dist: &JointDist,
    remaining: usize,
    selector: &dyn TaskSelector,
    rng: &mut dyn RngCore,
    task_seq: &mut u64,
) -> Result<Option<PendingRound>, CoreError> {
    if remaining == 0 {
        return Ok(None);
    }
    let ask = config.k.min(case.num_facts()).min(remaining);
    let tasks = selector.select(dist, config.pc_assumed, ask, rng)?;
    if tasks.is_empty() {
        return Ok(None);
    }
    let crowd_tasks: Vec<Task> = tasks
        .iter()
        .map(|&f| {
            let id = *task_seq;
            *task_seq += 1;
            Task {
                id: crowdfusion_crowd::TaskId(id),
                prompt: case.prompts[f].clone(),
                class: case.classes[f],
            }
        })
        .collect();
    let truths: Vec<bool> = tasks.iter().map(|&f| case.gold.get(f)).collect();
    Ok(Some(PendingRound {
        tasks,
        crowd_tasks,
        truths,
    }))
}

impl<'a> EntityState<'a> {
    pub(crate) fn new(case: &'a EntityCase, config: RoundConfig) -> EntityState<'a> {
        EntityState {
            case,
            config,
            dist: case.prior.clone(),
            remaining: config.budget,
            round: 0,
            spent: 0,
        }
    }

    /// The *select* phase of one round ([`prepare_round`]). Returns `None`
    /// — and pins `remaining` to 0 so later calls stay `None` — when the
    /// budget is exhausted or the selector yields no tasks (`K* = 0`).
    pub(crate) fn prepare(
        &mut self,
        selector: &dyn TaskSelector,
        rng: &mut dyn RngCore,
        task_seq: &mut u64,
    ) -> Result<Option<PendingRound>, CoreError> {
        let pending = prepare_round(
            self.case,
            self.config,
            &self.dist,
            self.remaining,
            selector,
            rng,
            task_seq,
        )?;
        if pending.is_none() {
            self.remaining = 0;
        }
        Ok(pending)
    }

    /// The *update* phase of one round: merges the crowd's `judgments`
    /// (parallel to `pending.tasks`) into the posterior and closes the
    /// round's bookkeeping.
    pub(crate) fn absorb(
        &mut self,
        pending: PendingRound,
        judgments: Vec<bool>,
    ) -> Result<RoundPoint, CoreError> {
        // In-place merge: the posterior's support is a (reweighted) subset
        // of the current support, so the sorted entry vector is reused. On
        // error the run aborts, so a poisoned `dist` is never observed.
        posterior_in_place(
            &mut self.dist,
            &pending.tasks,
            &judgments,
            self.config.pc_assumed,
        )?;
        self.remaining -= pending.tasks.len();
        self.spent += pending.tasks.len();
        self.round += 1;
        Ok(RoundPoint {
            round: self.round,
            cost: self.spent,
            utility: self.dist.utility(),
            tasks: pending.tasks,
            answers: judgments,
        })
    }

    /// Runs one full select–collect–update round against `platform`;
    /// returns `None` when the selector yields no tasks (`K* = 0`) or the
    /// budget is exhausted. This is [`EntityState::prepare`] +
    /// [`CrowdPlatform::publish`] + [`EntityState::absorb`] — the
    /// per-entity protocol; the batched protocol replaces the middle step
    /// with one global `publish_batch`.
    pub(crate) fn step<M: AnswerModel>(
        &mut self,
        selector: &dyn TaskSelector,
        platform: &mut CrowdPlatform<M>,
        rng: &mut dyn RngCore,
        task_seq: &mut u64,
    ) -> Result<Option<RoundPoint>, CoreError> {
        let Some(pending) = self.prepare(selector, rng, task_seq)? else {
            return Ok(None);
        };
        let answers = platform.publish(&pending.crowd_tasks, &pending.truths)?;
        let judgments: Vec<bool> = answers.iter().map(|a| a.value).collect();
        self.absorb(pending, judgments).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::{GreedySelector, RandomSelector};
    use crowdfusion_crowd::{UniformAccuracy, WorkerPool};
    use crowdfusion_jointdist::presets::paper_running_example;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn platform(pc: f64, seed: u64) -> CrowdPlatform<UniformAccuracy> {
        CrowdPlatform::new(
            WorkerPool::uniform(8, pc).unwrap(),
            UniformAccuracy::new(pc),
            seed,
        )
    }

    fn example_case() -> EntityCase {
        EntityCase::simple(
            "Hong Kong",
            paper_running_example(),
            Assignment(0b0111), // f1, f2, f3 true; f4 (Europe) false
        )
    }

    #[test]
    fn config_validation() {
        assert!(RoundConfig::new(0, 10, 0.8).is_err());
        assert!(RoundConfig::new(2, 10, 0.4).is_err());
        assert!(RoundConfig::new(2, 10, 0.8).is_ok());
    }

    #[test]
    fn budget_is_respected_exactly() {
        let case = example_case();
        let config = RoundConfig::new(3, 10, 0.8).unwrap();
        let mut platform = platform(0.8, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seq = 0;
        let trace = run_entity(
            &case,
            &GreedySelector::fast(),
            config,
            &mut platform,
            &mut rng,
            &mut seq,
        )
        .unwrap();
        assert_eq!(trace.total_cost(), 10);
        assert_eq!(platform.ledger().judgments, 10);
        // Rounds: 3+3+3+1.
        assert_eq!(trace.points.len(), 4);
        assert_eq!(trace.points[3].tasks.len(), 1);
        assert_eq!(seq, 10);
    }

    #[test]
    fn k_larger_than_facts_asks_all_facts_each_round() {
        let case = example_case();
        let config = RoundConfig::new(9, 8, 0.8).unwrap();
        let mut platform = platform(0.8, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seq = 0;
        let trace = run_entity(
            &case,
            &RandomSelector,
            config,
            &mut platform,
            &mut rng,
            &mut seq,
        )
        .unwrap();
        assert_eq!(trace.points[0].tasks.len(), 4);
        assert_eq!(trace.points[1].tasks.len(), 4);
        assert_eq!(trace.total_cost(), 8);
    }

    #[test]
    fn reliable_crowd_improves_utility_and_recovers_truth() {
        let case = example_case();
        let config = RoundConfig::new(2, 40, 0.9).unwrap();
        let mut platform = platform(0.9, 7);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seq = 0;
        let trace = run_entity(
            &case,
            &GreedySelector::fast(),
            config,
            &mut platform,
            &mut rng,
            &mut seq,
        )
        .unwrap();
        assert!(trace.final_utility() > trace.prior_utility + 0.5);
        // The posterior should recover the hidden gold truth.
        assert_eq!(trace.posterior.map_truth(), case.gold);
    }

    #[test]
    fn perfect_crowd_with_certain_prior_stops_early() {
        let prior = JointDist::certain(3, Assignment(0b010)).unwrap();
        let case = EntityCase::simple("done", prior, Assignment(0b010));
        let config = RoundConfig::new(2, 10, 1.0).unwrap();
        let mut platform = platform(1.0, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seq = 0;
        let trace = run_entity(
            &case,
            &GreedySelector::paper_approx(),
            config,
            &mut platform,
            &mut rng,
            &mut seq,
        )
        .unwrap();
        assert!(trace.points.is_empty());
        assert_eq!(trace.total_cost(), 0);
        assert_eq!(platform.ledger().judgments, 0);
    }

    #[test]
    fn case_validation_catches_mismatched_metadata() {
        let mut case = example_case();
        case.prompts.pop();
        assert!(case.validate().is_err());
        let config = RoundConfig::new(2, 4, 0.8).unwrap();
        let mut p = platform(0.8, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let mut seq = 0;
        assert!(run_entity(&case, &RandomSelector, config, &mut p, &mut rng, &mut seq).is_err());
    }

    #[test]
    fn trace_round_points_are_monotone_in_cost() {
        let case = example_case();
        let config = RoundConfig::new(1, 6, 0.7).unwrap();
        let mut p = platform(0.7, 5);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seq = 0;
        let trace = run_entity(
            &case,
            &GreedySelector::fast(),
            config,
            &mut p,
            &mut rng,
            &mut seq,
        )
        .unwrap();
        let costs: Vec<usize> = trace.points.iter().map(|pt| pt.cost).collect();
        assert_eq!(costs, vec![1, 2, 3, 4, 5, 6]);
        for pt in &trace.points {
            assert_eq!(pt.tasks.len(), pt.answers.len());
        }
    }
}
