//! Error type for the CrowdFusion core.

use crowdfusion_crowd::CrowdError;
use crowdfusion_jointdist::JointError;
use std::fmt;

/// Errors produced by task selection, answer merging and the round driver.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A crowd accuracy outside the paper's `[0.5, 1]` model range.
    InvalidAccuracy(f64),
    /// `k` (or a task index) exceeded the number of facts.
    TaskOutOfRange {
        /// Offending index or requested size.
        index: usize,
        /// Number of facts available.
        n: usize,
    },
    /// Too many facts/tasks for dense answer-space operations.
    TooManyFacts {
        /// Requested fact count.
        requested: usize,
        /// Supported maximum.
        limit: usize,
    },
    /// An empty task set where at least one task is required.
    EmptyTaskSet,
    /// Duplicate task indices in one batch (within a round each fact may be
    /// selected at most once).
    DuplicateTask(usize),
    /// Mismatched answers/tasks lengths.
    AnswerLengthMismatch {
        /// Number of tasks.
        tasks: usize,
        /// Number of answers.
        answers: usize,
    },
    /// The facts-of-interest set is empty (query-based mode).
    EmptyInterestSet,
    /// An answer was absorbed while no round is open on the session.
    NoOpenRound,
    /// An absorbed answer names a task id this session never published.
    UnknownAnswerTask {
        /// The offending task id.
        task: u64,
    },
    /// A session id the registry does not know.
    UnknownSession {
        /// The offending session id.
        session: u64,
    },
    /// A session snapshot violates its own invariants (corrupt or
    /// hand-edited snapshot file).
    InvalidSnapshot(String),
    /// An underlying probability error.
    Joint(JointError),
    /// An underlying crowd-simulation error.
    Crowd(CrowdError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidAccuracy(pc) => {
                write!(f, "crowd accuracy {pc} outside the model range [0.5, 1]")
            }
            CoreError::TaskOutOfRange { index, n } => {
                write!(f, "task index/size {index} out of range for {n} facts")
            }
            CoreError::TooManyFacts { requested, limit } => {
                write!(f, "{requested} facts exceed the dense limit of {limit}")
            }
            CoreError::EmptyTaskSet => write!(f, "task set is empty"),
            CoreError::DuplicateTask(i) => write!(f, "task {i} selected twice in one round"),
            CoreError::AnswerLengthMismatch { tasks, answers } => {
                write!(f, "{tasks} tasks but {answers} answers")
            }
            CoreError::EmptyInterestSet => write!(f, "facts-of-interest set is empty"),
            CoreError::NoOpenRound => write!(f, "no round is open on this session"),
            CoreError::UnknownAnswerTask { task } => {
                write!(f, "answer names unpublished task id {task}")
            }
            CoreError::UnknownSession { session } => {
                write!(f, "unknown session id {session}")
            }
            CoreError::InvalidSnapshot(reason) => {
                write!(f, "invalid session snapshot: {reason}")
            }
            CoreError::Joint(e) => write!(f, "probability error: {e}"),
            CoreError::Crowd(e) => write!(f, "crowd error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Joint(e) => Some(e),
            CoreError::Crowd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JointError> for CoreError {
    fn from(e: JointError) -> CoreError {
        CoreError::Joint(e)
    }
}

impl From<CrowdError> for CoreError {
    fn from(e: CrowdError) -> CoreError {
        CoreError::Crowd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::InvalidAccuracy(0.2);
        assert!(e.to_string().contains("0.2"));
        assert!(e.source().is_none());
        let e: CoreError = JointError::ZeroMass.into();
        assert!(e.source().is_some());
        let e: CoreError = CrowdError::NoWorkers.into();
        assert!(e.to_string().contains("crowd"));
    }
}
