//! Lock-striped session registry: the scale-out serving substrate.
//!
//! [`ShardedRegistry`] splits the session map of a
//! [`SessionRegistry`](crate::session::SessionRegistry) into N shards,
//! each behind its own mutex, so select/absorb traffic on different
//! sessions proceeds in parallel. Sessions are hashed to shards by the
//! cheapest stable function there is — `session_id % shard_count` — which
//! the determinism story depends on *not at all*: shard placement only
//! decides which lock serialises a session's operations, never what those
//! operations compute.
//!
//! **Determinism contract.** Everything observable is assembled in
//! ascending *global session-id* order, exactly the iteration order of the
//! single-map registry's `BTreeMap`:
//!
//! * [`ShardedRegistry::snapshot`] merges per-shard sessions into one
//!   globally id-sorted [`RegistrySnapshot`] — byte-identical to the
//!   single-registry snapshot, and therefore **shard-count independent**:
//!   a snapshot taken at 8 shards restores into 2 (or 1) without loss;
//! * [`ShardedRegistry::trace`] and [`ShardedRegistry::metrics`] fold
//!   sessions in id order, so floating-point sums associate identically;
//! * the master RNG and session-id counter stay global (one mutex): seeds
//!   are drawn in open order, the same schedule the offline
//!   `run_sharded` and the single registry produce.
//!
//! Lock hierarchy (a cycle-free acquisition order): `master` → shard
//! mutexes in ascending index. Per-session operations take only the
//! owning shard's lock; opens take `master` and then touch shards one at
//! a time; whole-registry reads (snapshot/trace/metrics) take `master`
//! followed by every shard in index order.

use crate::pool::Pool;
use crate::round::RoundConfig;
use crate::selection::TaskSelector;
use crate::session::{
    AbsorbReport, EntitySpec, NumberedSnapshot, OpenedSession, RegistryMetrics, RegistrySnapshot,
    SelectOutcome, SessionState,
};
use crate::system::{assemble_trace, EntitySeries, ExperimentTrace};
use crate::CoreError;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// The global (un-sharded) half of the registry: the seed schedule.
struct Master {
    rng: StdRng,
    next_index: u64,
}

/// One shard: the sessions whose id hashes here.
type Shard = BTreeMap<u64, SessionState>;

/// A session registry striped over N locks. See the module docs for the
/// determinism contract and lock hierarchy.
pub struct ShardedRegistry {
    pool: Pool,
    defaults: RoundConfig,
    master: Mutex<Master>,
    shards: Vec<Mutex<Shard>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic mid-apply can only come from a library bug (session apply is
    // pure computation); propagating the poison as a panic is the honest
    // failure mode.
    m.lock().expect("sharded registry lock poisoned")
}

impl ShardedRegistry {
    /// Creates a registry striped over `shard_count` locks (clamped to at
    /// least 1) with the given master seed, defaults and worker pool.
    pub fn new(
        seed: u64,
        defaults: RoundConfig,
        pool: Pool,
        shard_count: usize,
    ) -> ShardedRegistry {
        let shard_count = shard_count.max(1);
        ShardedRegistry {
            pool,
            defaults,
            master: Mutex::new(Master {
                rng: StdRng::seed_from_u64(seed),
                next_index: 0,
            }),
            shards: (0..shard_count).map(|_| Mutex::new(Shard::new())).collect(),
        }
    }

    /// The registry's worker pool.
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// The default round configuration.
    pub fn defaults(&self) -> RoundConfig {
        self.defaults
    }

    /// Number of shards (lock stripes).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns a session id.
    fn shard_of(&self, session: u64) -> &Mutex<Shard> {
        &self.shards[(session % self.shards.len() as u64) as usize]
    }

    /// Opens one session per spec: priors built in parallel on the pool,
    /// then ids and `(answer_seed, selector_seed)` pairs drawn from the
    /// global master RNG in spec order — the identical schedule a
    /// single-map registry produces. Atomic: a failing spec opens nothing
    /// and draws no seed.
    pub fn open_batch(
        &self,
        specs: Vec<EntitySpec>,
        config: Option<RoundConfig>,
    ) -> Result<Vec<OpenedSession>, CoreError> {
        for spec in &specs {
            spec.validate()?;
        }
        let config = config.unwrap_or(self.defaults);
        let cases = self.pool.map_reduce(
            specs.len(),
            |i| specs[i].clone().into_case(),
            Ok(Vec::with_capacity(specs.len())),
            |acc: Result<Vec<_>, CoreError>, case| {
                let mut acc = acc?;
                acc.push(case?);
                Ok(acc)
            },
        )?;
        let mut master = lock(&self.master);
        let mut opened = Vec::with_capacity(cases.len());
        for case in cases {
            let answer_seed = master.rng.next_u64();
            let selector_seed = master.rng.next_u64();
            let id = master.next_index;
            master.next_index += 1;
            let state = SessionState::new(case, config, selector_seed, id << 32)?;
            opened.push(OpenedSession {
                session: id,
                name: state.name().to_string(),
                facts: state.num_facts(),
                answer_seed,
                utility: state.utility(),
                entropy: state.entropy(),
            });
            lock(self.shard_of(id)).insert(id, state);
        }
        Ok(opened)
    }

    /// Runs the *select* phase on one session (owning shard lock only).
    pub fn select(
        &self,
        session: u64,
        selector: &dyn TaskSelector,
    ) -> Result<SelectOutcome, CoreError> {
        self.select_capped(session, selector, None)
    }

    /// Runs the *select* phase on one session under an external task cap
    /// (see [`SessionState::select_capped`]; owning shard lock only).
    pub fn select_capped(
        &self,
        session: u64,
        selector: &dyn TaskSelector,
        cap: Option<usize>,
    ) -> Result<SelectOutcome, CoreError> {
        let mut shard = lock(self.shard_of(session));
        shard
            .get_mut(&session)
            .ok_or(CoreError::UnknownSession { session })?
            .select_capped(selector, cap)
    }

    /// Ingests answers into one session (owning shard lock only).
    pub fn absorb(&self, session: u64, answers: &[(u64, bool)]) -> Result<AbsorbReport, CoreError> {
        let mut shard = lock(self.shard_of(session));
        shard
            .get_mut(&session)
            .ok_or(CoreError::UnknownSession { session })?
            .absorb(answers)
    }

    /// Removes a session, returning its final state. The master RNG is
    /// untouched: the seed schedule continues as if the session lived.
    pub fn evict(&self, session: u64) -> Result<SessionState, CoreError> {
        lock(self.shard_of(session))
            .remove(&session)
            .ok_or(CoreError::UnknownSession { session })
    }

    /// Reads one session under its shard lock.
    pub fn with_session<R>(
        &self,
        session: u64,
        f: impl FnOnce(&SessionState) -> R,
    ) -> Result<R, CoreError> {
        let shard = lock(self.shard_of(session));
        shard
            .get(&session)
            .map(f)
            .ok_or(CoreError::UnknownSession { session })
    }

    /// Number of live sessions (sums shard sizes).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Whether no session is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Session ids in ascending global order.
    pub fn ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| lock(s).keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// The registry-wide quality-vs-cost trace, assembled over sessions in
    /// ascending id order — bit-identical to the single-map registry's.
    pub fn trace(&self, selector: String) -> ExperimentTrace {
        let mut series: Vec<(u64, EntitySeries)> = Vec::new();
        for shard in &self.shards {
            let shard = lock(shard);
            series.extend(shard.iter().map(|(&id, s)| (id, s.series().clone())));
        }
        series.sort_by_key(|(id, _)| *id);
        let series: Vec<EntitySeries> = series.into_iter().map(|(_, s)| s).collect();
        assemble_trace(&series, selector)
    }

    /// Aggregate metrics, folded in ascending session-id order so the
    /// floating-point utility sum matches the single-map registry exactly.
    pub fn metrics(&self) -> RegistryMetrics {
        // (open round?, rounds, spent, remaining, utility) per session id.
        type Counters = (bool, usize, usize, usize, f64);
        let mut rows: Vec<(u64, Counters)> = Vec::new();
        for shard in &self.shards {
            let shard = lock(shard);
            rows.extend(shard.iter().map(|(&id, s)| {
                (
                    id,
                    (
                        s.has_open_round(),
                        s.rounds(),
                        s.spent(),
                        s.remaining(),
                        s.utility(),
                    ),
                )
            }));
        }
        rows.sort_by_key(|(id, _)| *id);
        let mut m = RegistryMetrics {
            sessions: rows.len() as u64,
            open_rounds: 0,
            rounds: 0,
            judgments: 0,
            remaining: 0,
            utility: 0.0,
        };
        for (_, (open, rounds, spent, remaining, utility)) in rows {
            m.open_rounds += u64::from(open);
            m.rounds += rounds as u64;
            m.judgments += spent as u64;
            m.remaining += remaining as u64;
            m.utility += utility;
        }
        m
    }

    /// Serialises the whole registry. The snapshot is the *single-map*
    /// wire format ([`RegistrySnapshot`], sessions globally id-sorted):
    /// shard count is a runtime tuning knob, never a persistence concern,
    /// so a snapshot taken at any shard count restores at any other.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let master = lock(&self.master);
        let mut sessions: Vec<NumberedSnapshot> = Vec::new();
        for shard in &self.shards {
            let shard = lock(shard);
            sessions.extend(shard.iter().map(|(&session, state)| NumberedSnapshot {
                session,
                snapshot: state.snapshot(),
            }));
        }
        sessions.sort_by_key(|n| n.session);
        RegistrySnapshot {
            master_state: master.rng.state(),
            next_index: master.next_index,
            defaults: self.defaults,
            sessions,
        }
    }

    /// Rebuilds a registry from a snapshot, striping sessions over
    /// `shard_count` locks — which need not match the count the snapshot
    /// was taken under.
    pub fn from_snapshot(
        snap: RegistrySnapshot,
        pool: Pool,
        shard_count: usize,
    ) -> Result<ShardedRegistry, CoreError> {
        let registry = ShardedRegistry::new(0, snap.defaults, pool, shard_count);
        {
            let mut master = lock(&registry.master);
            master.rng = StdRng::from_state(snap.master_state);
            master.next_index = snap.next_index;
        }
        for numbered in snap.sessions {
            let state = SessionState::from_snapshot(numbered.snapshot)?;
            lock(registry.shard_of(numbered.session)).insert(numbered.session, state);
        }
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::GreedySelector;
    use crate::session::SessionRegistry;

    fn specs() -> Vec<EntitySpec> {
        vec![
            EntitySpec::simple("a", vec![0.5, 0.6, 0.7], vec![true, false, true]),
            EntitySpec::simple("b", vec![0.3, 0.8], vec![false, true]),
            EntitySpec::simple(
                "c",
                vec![0.55, 0.45, 0.6, 0.7],
                vec![true, true, false, true],
            ),
        ]
    }

    fn config() -> RoundConfig {
        RoundConfig::new(2, 6, 0.8).unwrap()
    }

    /// Drives both registries through the same workload and compares every
    /// observable surface.
    #[test]
    fn sharded_registry_matches_the_single_map_registry_bit_for_bit() {
        let selector = GreedySelector::fast();
        for shard_count in [1usize, 2, 3, 8] {
            let mut single = SessionRegistry::new(42, config(), Pool::serial());
            let sharded = ShardedRegistry::new(42, config(), Pool::serial(), shard_count);

            let a = single.open_batch(specs(), None).unwrap();
            let b = sharded.open_batch(specs(), None).unwrap();
            assert_eq!(a, b, "open summaries must match at {shard_count} shards");

            for &id in &[0u64, 1, 2] {
                loop {
                    let s1 = single.select(id, &selector).unwrap();
                    let s2 = sharded.select(id, &selector).unwrap();
                    let round = match (&s1, &s2) {
                        (SelectOutcome::Exhausted, SelectOutcome::Exhausted) => break,
                        (SelectOutcome::Round(r1), SelectOutcome::Round(r2)) => {
                            assert_eq!(r1, r2);
                            r1.clone()
                        }
                        other => panic!("outcomes diverged: {other:?}"),
                    };
                    let answers: Vec<(u64, bool)> = round
                        .tasks
                        .iter()
                        .map(|t| (t.id, t.fact % 2 == 0))
                        .collect();
                    let r1 = single.absorb(id, &answers).unwrap();
                    let r2 = sharded.absorb(id, &answers).unwrap();
                    assert_eq!(r1, r2);
                }
            }

            assert_eq!(single.metrics(), sharded.metrics());
            assert_eq!(
                single.trace("greedy".into()),
                sharded.trace("greedy".into())
            );
            assert_eq!(single.snapshot(), sharded.snapshot());
            assert_eq!(single.ids(), sharded.ids());
        }
    }

    #[test]
    fn snapshots_are_shard_count_independent() {
        let selector = GreedySelector::fast();
        let sharded = ShardedRegistry::new(7, config(), Pool::serial(), 8);
        sharded.open_batch(specs(), None).unwrap();
        for id in [0u64, 1, 2] {
            if let SelectOutcome::Round(round) = sharded.select(id, &selector).unwrap() {
                // Absorb only half the round: the open partial round must
                // survive the re-striping.
                let half: Vec<(u64, bool)> =
                    round.tasks.iter().take(1).map(|t| (t.id, true)).collect();
                sharded.absorb(id, &half).unwrap();
            }
        }
        let snap = sharded.snapshot();
        // Restore at a different stripe width, then confirm the restored
        // registry re-snapshots to the identical bytes.
        let restored = ShardedRegistry::from_snapshot(snap.clone(), Pool::serial(), 2).unwrap();
        assert_eq!(restored.shard_count(), 2);
        assert_eq!(restored.snapshot(), snap);
        // And future opens continue the master seed schedule identically.
        let more_a = restored.open_batch(vec![specs()[0].clone()], None).unwrap();
        let from_eight = ShardedRegistry::from_snapshot(snap, Pool::serial(), 8).unwrap();
        let more_b = from_eight
            .open_batch(vec![specs()[0].clone()], None)
            .unwrap();
        assert_eq!(more_a, more_b);
    }

    #[test]
    fn eviction_keeps_the_seed_schedule() {
        let sharded = ShardedRegistry::new(11, config(), Pool::serial(), 4);
        let shadow = ShardedRegistry::new(11, config(), Pool::serial(), 4);
        sharded.open_batch(specs(), None).unwrap();
        shadow.open_batch(specs(), None).unwrap();
        sharded.evict(1).unwrap();
        assert!(sharded.evict(1).is_err());
        assert_eq!(sharded.len(), 2);
        assert_eq!(sharded.ids(), vec![0, 2]);
        // The next open draws the same seeds whether or not an eviction
        // happened in between.
        let a = sharded.open_batch(vec![specs()[1].clone()], None).unwrap();
        let b = shadow.open_batch(vec![specs()[1].clone()], None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_cross_shard_traffic_is_safe_and_deterministic() {
        use std::sync::Arc;
        let sharded = Arc::new(ShardedRegistry::new(3, config(), Pool::serial(), 4));
        let many: Vec<EntitySpec> = (0..16)
            .map(|i| {
                EntitySpec::simple(
                    format!("e{i}"),
                    vec![0.4, 0.6, 0.55],
                    vec![true, false, true],
                )
            })
            .collect();
        sharded.open_batch(many, None).unwrap();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let registry = Arc::clone(&sharded);
            handles.push(std::thread::spawn(move || {
                let selector = GreedySelector::fast();
                // Each thread drives a disjoint quarter of the sessions.
                for id in (t..16).step_by(4) {
                    while let SelectOutcome::Round(round) = registry.select(id, &selector).unwrap()
                    {
                        let answers: Vec<(u64, bool)> =
                            round.tasks.iter().map(|x| (x.id, true)).collect();
                        registry.absorb(id, &answers).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Reference: the same workload, serially, on a single-map registry.
        let mut single = SessionRegistry::new(3, config(), Pool::serial());
        let many: Vec<EntitySpec> = (0..16)
            .map(|i| {
                EntitySpec::simple(
                    format!("e{i}"),
                    vec![0.4, 0.6, 0.55],
                    vec![true, false, true],
                )
            })
            .collect();
        single.open_batch(many, None).unwrap();
        let selector = GreedySelector::fast();
        for id in 0..16u64 {
            while let SelectOutcome::Round(round) = single.select(id, &selector).unwrap() {
                let answers: Vec<(u64, bool)> = round.tasks.iter().map(|x| (x.id, true)).collect();
                single.absorb(id, &answers).unwrap();
            }
        }
        assert_eq!(
            single.trace("greedy".into()),
            sharded.trace("greedy".into())
        );
        assert_eq!(single.snapshot(), sharded.snapshot());
    }
}
