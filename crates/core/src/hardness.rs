//! Theorem 1: NP-hardness of task selection, as an executable reduction.
//!
//! The paper proves `DTaskSelect` (is there a size-`k` task set with
//! `H(T) ≥ H_t`?) NP-complete by reducing PARTITION to it: given numbers
//! `c_1..c_s`, normalise `x_i = c_i / Σc`, build a distribution over
//! `n = 2^s` facts whose outputs `o_1..o_{2^s}` have `P(o_i) = x_i` — where
//! output `o_i`'s judgment of fact `f_I` is the `I`-th bit pattern — and ask
//! for one fact (`k = 1`, `Pc = 1`) with `H(T) = 1`. Fact `f_I` then splits
//! the outputs into the two subsets encoded by the binary index `I`, and
//! `H(f_I) = 1` holds exactly when the two subsets have equal sums, i.e.
//! when a perfect partition exists.
//!
//! This module implements the instance construction and the decision check,
//! making the reduction testable. Fact counts are bounded by the dense
//! limits, so it is a *demonstration* (NP-hardness is about asymptotics),
//! but every step of the paper's proof is exercised for real.
//!
//! It also hosts the practical face of the same idea: [`factor_hardness`],
//! a cheap `[0, 1]` difficulty score for an entity computed from its fusion
//! marginals, which the sparse-prior builder uses to scale its sampling
//! effort with how hard the entity actually is.

use crate::answers::{answer_entropy, AnswerEvaluator};
use crate::error::CoreError;
use crowdfusion_jointdist::{binary_entropy, Assignment, JointDist, VarSet};

/// How hard an entity is to refine, in `[0, 1]`, from its fusion marginals
/// and correlation groups — *before* any joint prior is materialised.
///
/// The base score is the mean binary entropy of the marginals: an entity
/// whose facts are all near 0 or 1 scores ~0 (a handful of judgments
/// settles it), one whose facts sit at 0.5 scores 1 (every judgment
/// fights maximal uncertainty). Correlation groups inflate the score by up
/// to 50% of the fraction of facts entangled in multi-member groups,
/// because correlated facts make the posterior landscape multimodal and
/// need a richer sample to capture. The result drives the adaptive
/// sparse-prior draw count in [`crate::prior`].
pub fn factor_hardness(marginals: &[f64], groups: &[Vec<usize>]) -> f64 {
    if marginals.is_empty() {
        return 0.0;
    }
    let base = marginals
        .iter()
        .map(|&m| binary_entropy(m.clamp(0.0, 1.0)))
        .sum::<f64>()
        / marginals.len() as f64;
    let grouped: usize = groups
        .iter()
        .filter(|g| g.len() > 1)
        .map(|g| g.iter().filter(|&&f| f < marginals.len()).count())
        .sum();
    let density = grouped as f64 / marginals.len() as f64;
    (base * (1.0 + 0.5 * density)).min(1.0)
}

/// Maximum number of PARTITION items the dense construction supports:
/// the reduction needs `2^s` facts, and fact masks are 64-bit.
pub const MAX_PARTITION_ITEMS: usize = 6;

/// A DTaskSelect instance produced by the PARTITION reduction.
#[derive(Debug, Clone)]
pub struct PartitionInstance {
    /// The joint distribution over `2^s` facts with `s`-item outputs.
    pub dist: JointDist,
    /// The normalised weights `x_i` (for reporting).
    pub weights: Vec<f64>,
}

/// Builds the paper's reduction instance from PARTITION numbers.
///
/// Fact `f_I` (for `I ∈ 0..2^s`) is judged true in output `o_i` exactly
/// when bit `i` of `I` is set — so the facts enumerate every possible
/// subset of the `s` outputs, and selecting fact `f_I` with `Pc = 1`
/// observes the indicator of the subset encoded by `I`.
pub fn partition_to_task_selection(numbers: &[u64]) -> Result<PartitionInstance, CoreError> {
    let s = numbers.len();
    if s == 0 || s > MAX_PARTITION_ITEMS {
        return Err(CoreError::TooManyFacts {
            requested: 1usize << s.max(1),
            limit: 1usize << MAX_PARTITION_ITEMS,
        });
    }
    let total: u64 = numbers.iter().sum();
    if total == 0 {
        return Err(CoreError::EmptyTaskSet);
    }
    let n_facts = 1usize << s;
    let weights: Vec<f64> = numbers.iter().map(|&c| c as f64 / total as f64).collect();
    // Output o_i (i in 0..s): fact f_I true iff bit i of I is set.
    let entries = (0..s).map(|i| {
        let mut judgment = Assignment::ALL_FALSE;
        for fact_index in 0..n_facts {
            if (fact_index >> i) & 1 == 1 {
                judgment = judgment.with(fact_index, true);
            }
        }
        (judgment, weights[i])
    });
    let dist = JointDist::from_weights(n_facts, entries)?;
    Ok(PartitionInstance { dist, weights })
}

/// Decides DTaskSelect for the reduction instance: is there a single fact
/// with `H({f}) ≥ 1 − tolerance` at `Pc = 1`? Returns the witness subset
/// (as item indices) when one exists.
pub fn find_equal_partition(
    instance: &PartitionInstance,
    tolerance: f64,
) -> Result<Option<Vec<usize>>, CoreError> {
    let n_facts = instance.dist.num_vars();
    for fact in 0..n_facts {
        let h = answer_entropy(
            &instance.dist,
            VarSet::single(fact),
            1.0,
            AnswerEvaluator::Butterfly,
        )?;
        if h >= 1.0 - tolerance {
            // Decode the witness: items whose bit is set in the fact index.
            let items = (0..instance.weights.len())
                .filter(|i| (fact >> i) & 1 == 1)
                .collect();
            return Ok(Some(items));
        }
    }
    Ok(None)
}

/// Convenience: solves PARTITION through the reduction. Returns one side of
/// an equal-sum split when it exists.
pub fn solve_partition(numbers: &[u64]) -> Result<Option<Vec<usize>>, CoreError> {
    let instance = partition_to_task_selection(numbers)?;
    // An exactly equal split gives marginal exactly 0.5; floating-point
    // noise stays far below this tolerance for u64 inputs of sane size.
    let witness = find_equal_partition(&instance, 1e-9)?;
    Ok(witness.filter(|items| {
        // Verify exactly (integers), guarding against borderline entropy.
        let side: u64 = items.iter().map(|&i| numbers[i]).sum();
        let total: u64 = numbers.iter().sum();
        2 * side == total
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardness_orders_easy_below_hard() {
        let easy = factor_hardness(&[0.01, 0.99, 0.02], &[]);
        let medium = factor_hardness(&[0.2, 0.8, 0.3], &[]);
        let hard = factor_hardness(&[0.5, 0.5, 0.5], &[]);
        assert!(easy < medium, "{easy} < {medium}");
        assert!(medium < hard, "{medium} < {hard}");
        assert!((hard - 1.0).abs() < 1e-12, "all-0.5 marginals max out");
        assert!(easy < 0.2, "near-certain facts are easy: {easy}");
    }

    #[test]
    fn hardness_bounds_and_degenerate_inputs() {
        assert_eq!(factor_hardness(&[], &[]), 0.0);
        assert_eq!(factor_hardness(&[0.0, 1.0], &[]), 0.0);
        // Out-of-range marginals are clamped, not NaN.
        let h = factor_hardness(&[-0.5, 1.5, 0.5], &[]);
        assert!(h.is_finite() && (0.0..=1.0).contains(&h));
        // Cap at 1 even with group inflation.
        let h = factor_hardness(&[0.5, 0.5], &[vec![0, 1]]);
        assert!((h - 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_groups_inflate_hardness() {
        let marginals = [0.1, 0.9, 0.15, 0.85];
        let flat = factor_hardness(&marginals, &[]);
        let singleton = factor_hardness(&marginals, &[vec![0]]);
        assert_eq!(flat, singleton, "singleton groups don't correlate");
        let grouped = factor_hardness(&marginals, &[vec![0, 1]]);
        let dense = factor_hardness(&marginals, &[vec![0, 1], vec![2, 3]]);
        assert!(flat < grouped, "{flat} < {grouped}");
        assert!(grouped < dense, "{grouped} < {dense}");
        // Out-of-range fact indices in a group are ignored.
        let oob = factor_hardness(&marginals, &[vec![0, 99]]);
        assert!(oob > flat && oob < grouped);
    }

    #[test]
    fn instance_shape_follows_proof() {
        let inst = partition_to_task_selection(&[1, 2, 3]).unwrap();
        assert_eq!(inst.dist.num_vars(), 8); // 2^3 facts
        assert_eq!(inst.dist.support_size(), 3); // one output per item
        assert!((inst.dist.total_mass() - 1.0).abs() < 1e-12);
        // Fact f_0 is false everywhere (empty subset) => marginal 0.
        assert_eq!(inst.dist.marginal(0).unwrap(), 0.0);
        // Fact f_{2^s - 1} is true everywhere (full subset) => marginal 1.
        assert!((inst.dist.marginal(7).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn yes_instances_yield_witnesses() {
        // {1, 2, 3}: {1, 2} vs {3}.
        let witness = solve_partition(&[1, 2, 3]).unwrap().unwrap();
        let side: u64 = witness.iter().map(|&i| [1u64, 2, 3][i]).sum();
        assert_eq!(side, 3);
        // {4, 4}: trivial split.
        assert!(solve_partition(&[4, 4]).unwrap().is_some());
        // {2, 2, 2, 2, 3, 3}: e.g. {2, 2, 3} both sides.
        let numbers = [2u64, 2, 2, 2, 3, 3];
        let witness = solve_partition(&numbers).unwrap().unwrap();
        let side: u64 = witness.iter().map(|&i| numbers[i]).sum();
        assert_eq!(side * 2, numbers.iter().sum::<u64>());
    }

    #[test]
    fn no_instances_yield_none() {
        assert!(solve_partition(&[1, 2, 4]).unwrap().is_none());
        assert!(solve_partition(&[1]).unwrap().is_none());
        assert!(solve_partition(&[3, 5, 7]).unwrap().is_none());
    }

    #[test]
    fn odd_total_is_always_no() {
        assert!(solve_partition(&[1, 1, 1]).unwrap().is_none());
    }

    #[test]
    fn size_limits_enforced() {
        assert!(partition_to_task_selection(&[]).is_err());
        assert!(partition_to_task_selection(&[1; 7]).is_err());
        assert!(partition_to_task_selection(&[0, 0]).is_err());
    }

    #[test]
    fn entropy_of_witness_fact_is_one_bit() {
        // The core of the proof: the witness fact has H = 1 exactly.
        let inst = partition_to_task_selection(&[1, 2, 3]).unwrap();
        let witness_fact = 0b011; // items {0, 1} -> sum 3 = half
        let h = answer_entropy(
            &inst.dist,
            VarSet::single(witness_fact),
            1.0,
            AnswerEvaluator::Naive,
        )
        .unwrap();
        assert!((h - 1.0).abs() < 1e-12);
        // A non-witness fact has H < 1.
        let h = answer_entropy(
            &inst.dist,
            VarSet::single(0b001),
            1.0,
            AnswerEvaluator::Naive,
        )
        .unwrap();
        assert!(h < 1.0 - 1e-6);
    }
}
