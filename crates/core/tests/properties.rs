//! Property-based tests for the CrowdFusion core algorithms.

use crowdfusion_core::answers::{
    answer_distribution, answer_entropy, posterior, AnswerEvaluator, AnswerTable, TableBackend,
};
use crowdfusion_core::query::{query_utility, truth_answer_joint_entropy};
use crowdfusion_core::selection::{
    GreedySelector, OptSelector, PruneBound, RandomSelector, TaskSelector,
};
use crowdfusion_jointdist::{binary_entropy, Assignment, JointDist, VarSet};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

/// Random dense distribution over 2..=6 variables.
fn arb_dist() -> impl Strategy<Value = JointDist> {
    (2usize..=6).prop_flat_map(|n| {
        proptest::collection::vec(0.0f64..1.0, 1usize << n).prop_filter_map(
            "positive mass",
            move |w| {
                JointDist::from_weights(
                    n,
                    w.iter()
                        .enumerate()
                        .map(|(a, &x)| (Assignment(a as u64), x)),
                )
                .ok()
            },
        )
    })
}

fn arb_pc() -> impl Strategy<Value = f64> {
    0.5f64..=1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn answer_distribution_is_stochastic((d, pc) in (arb_dist(), arb_pc())) {
        let n = d.num_vars();
        for bits in 1u64..(1u64 << n) {
            let tasks = VarSet(bits);
            let a = answer_distribution(&d, tasks, pc, AnswerEvaluator::Butterfly).unwrap();
            prop_assert_eq!(a.len(), 1usize << tasks.len());
            let total: f64 = a.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert!(a.iter().all(|&p| p >= -1e-12));
        }
    }

    #[test]
    fn evaluators_agree((d, pc) in (arb_dist(), arb_pc())) {
        let n = d.num_vars();
        for bits in 1u64..(1u64 << n) {
            let tasks = VarSet(bits);
            let a = answer_distribution(&d, tasks, pc, AnswerEvaluator::Naive).unwrap();
            let b = answer_distribution(&d, tasks, pc, AnswerEvaluator::Butterfly).unwrap();
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn answer_entropy_bounds((d, pc) in (arb_dist(), arb_pc())) {
        // H(T) is between the channel noise floor |T|·H(Pc) … wait, the
        // floor only holds jointly; the safe bounds are 0 ≤ H(T) ≤ |T|.
        let n = d.num_vars();
        let tasks = VarSet::all(n);
        let h = answer_entropy(&d, tasks, pc, AnswerEvaluator::Butterfly).unwrap();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= n as f64 + 1e-9);
        // The answer channel can only *add* randomness on top of the fact
        // distribution pushed through it: H(T) >= H(facts)·(channel
        // data-processing direction) is not generally true, but
        // H(T) >= |T| · H(Pc) holds: conditioned on the truth the answers
        // are |T| independent Pc-coins.
        let floor = tasks.len() as f64 * binary_entropy(pc);
        prop_assert!(h >= floor - 1e-9, "H(T)={h} < noise floor {floor}");
    }

    #[test]
    fn answer_entropy_monotone_in_tasks((d, pc) in (arb_dist(), arb_pc())) {
        // Adding a task never decreases H(T) (Theorem 2's engine).
        let n = d.num_vars();
        let mut tasks = VarSet::EMPTY;
        let mut prev = 0.0;
        for v in 0..n {
            tasks = tasks.insert(v);
            let h = answer_entropy(&d, tasks, pc, AnswerEvaluator::Butterfly).unwrap();
            prop_assert!(h >= prev - 1e-9);
            prev = h;
        }
    }

    #[test]
    fn answer_entropy_submodular((d, pc) in (arb_dist(), arb_pc())) {
        // ρ_f(T) = H(T ∪ {f}) − H(T) shrinks as T grows — the property
        // behind the (1 − 1/e) guarantee.
        let n = d.num_vars();
        if n < 3 {
            return Ok(());
        }
        let small = VarSet::single(0);
        let large = VarSet::from_vars([0, 1]);
        let f = n - 1;
        let h = |t: VarSet| answer_entropy(&d, t, pc, AnswerEvaluator::Butterfly).unwrap();
        let gain_small = h(small.insert(f)) - h(small);
        let gain_large = h(large.insert(f)) - h(large);
        prop_assert!(gain_large <= gain_small + 1e-9,
            "submodularity violated: {gain_large} > {gain_small}");
    }

    #[test]
    fn posterior_is_normalised((d, pc) in (arb_dist(), 0.55f64..1.0)) {
        let n = d.num_vars();
        let tasks: Vec<usize> = (0..n.min(3)).collect();
        let answers: Vec<bool> = tasks.iter().map(|&t| t % 2 == 0).collect();
        let post = posterior(&d, &tasks, &answers, pc).unwrap();
        prop_assert!((post.total_mass() - 1.0).abs() < 1e-9);
        prop_assert!(post.support_size() <= d.support_size());
    }

    #[test]
    fn posterior_agrees_with_answer_distribution((d, pc) in (arb_dist(), 0.55f64..0.99)) {
        // Bayes consistency: P(o | ans) · P(ans) == P(o) · P(ans | o).
        let tasks = VarSet::single(0);
        let ans_dist = answer_distribution(&d, tasks, pc, AnswerEvaluator::Naive).unwrap();
        let post_true = posterior(&d, &[0], &[true], pc).unwrap();
        for (o, p) in d.iter() {
            let like = if o.get(0) { pc } else { 1.0 - pc };
            let lhs = post_true.prob(o) * ans_dist[1];
            let rhs = p * like;
            prop_assert!((lhs - rhs).abs() < 1e-9, "Bayes mismatch at {o:?}");
        }
    }

    #[test]
    fn greedy_variants_identical((d, pc) in (arb_dist(), arb_pc())) {
        let k = 3;
        let reference = GreedySelector::paper_approx()
            .select(&d, pc, k, &mut rng()).unwrap();
        for sel in [
            GreedySelector::paper_approx().with_prune(PruneBound::Safe),
            GreedySelector::paper_approx().with_preprocess(),
            GreedySelector::paper_approx().with_prune(PruneBound::Safe).with_preprocess(),
            GreedySelector::paper_approx().with_evaluator(AnswerEvaluator::Butterfly),
        ] {
            let got = sel.select(&d, pc, k, &mut rng()).unwrap();
            prop_assert_eq!(got, reference.clone(), "{} diverged", sel.name());
        }
    }

    #[test]
    fn greedy_respects_approximation_guarantee((d, pc) in (arb_dist(), arb_pc())) {
        // H(greedy) ≥ (1 − 1/e) · H(OPT) for k = 2. Entropy is
        // nonnegative, so the classical guarantee applies directly.
        let k = 2;
        let opt = OptSelector::new(AnswerEvaluator::Butterfly)
            .select(&d, pc, k, &mut rng()).unwrap();
        let greedy = GreedySelector::fast().select(&d, pc, k, &mut rng()).unwrap();
        if greedy.len() < k {
            // Early exit only happens when nothing improves utility.
            return Ok(());
        }
        let h = |t: &[usize]| {
            answer_entropy(&d, VarSet::from_vars(t.iter().copied()), pc,
                AnswerEvaluator::Butterfly).unwrap()
        };
        prop_assert!(h(&greedy) >= (1.0 - 1.0 / std::f64::consts::E) * h(&opt) - 1e-9);
        prop_assert!(h(&opt) >= h(&greedy) - 1e-9);
    }

    #[test]
    fn sparse_and_dense_answer_tables_agree((d, pc) in (arb_dist(), arb_pc())) {
        // The sparse support-backed table must reproduce the dense
        // Table-IV marginals exactly (within PROB_EPSILON) for every
        // task set and both dense evaluators.
        let n = d.num_vars();
        let sparse = AnswerTable::sparse(&d, pc).unwrap();
        for evaluator in [AnswerEvaluator::Naive, AnswerEvaluator::Butterfly] {
            let dense = AnswerTable::dense(&d, pc, evaluator).unwrap();
            for bits in 0u64..(1u64 << n) {
                let tasks = VarSet(bits);
                let a = dense.distribution(tasks).unwrap();
                let b = sparse.distribution(tasks).unwrap();
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    prop_assert!(
                        (x - y).abs() < crowdfusion_jointdist::PROB_EPSILON,
                        "{:?} diverged at {}: {} vs {}", evaluator, tasks, x, y
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_tables_agree_with_the_direct_evaluators((d, pc) in (arb_dist(), arb_pc())) {
        let n = d.num_vars();
        let sparse = AnswerTable::sparse(&d, pc).unwrap();
        for bits in 1u64..(1u64 << n) {
            let tasks = VarSet(bits);
            let direct = answer_distribution(&d, tasks, pc, AnswerEvaluator::Butterfly).unwrap();
            let via_table = sparse.distribution(tasks).unwrap();
            for (x, y) in direct.iter().zip(&via_table) {
                prop_assert!((x - y).abs() < crowdfusion_jointdist::PROB_EPSILON);
            }
            let h = sparse.entropy(tasks).unwrap();
            let want = answer_entropy(&d, tasks, pc, AnswerEvaluator::Butterfly).unwrap();
            prop_assert!((h - want).abs() < 1e-10);
        }
    }

    #[test]
    fn greedy_selections_identical_across_table_backends((d, pc) in (arb_dist(), 0.55f64..=1.0)) {
        // Where both backends apply (n ≤ MAX_DENSE_FACTS), forcing the
        // sparse answer table must not change any greedy selection. (At
        // exactly Pc = 0.5 every candidate ties at H = |T| bits and the
        // two backends' different floating-point routes may break the tie
        // differently — a pure-noise crowd carries no signal, so the
        // degenerate point is excluded.)
        let k = 3;
        for base in [GreedySelector::fast(), GreedySelector::paper_approx()] {
            let dense = base.clone()
                .with_preprocess()
                .with_table_backend(TableBackend::Dense)
                .select(&d, pc, k, &mut rng()).unwrap();
            let sparse = base
                .with_preprocess()
                .with_table_backend(TableBackend::Sparse)
                .select(&d, pc, k, &mut rng()).unwrap();
            prop_assert_eq!(&dense, &sparse,
                "backends diverged: dense {:?} vs sparse {:?}", dense, sparse);
        }
    }

    #[test]
    fn random_selector_valid((d, pc) in (arb_dist(), arb_pc())) {
        let n = d.num_vars();
        let tasks = RandomSelector.select(&d, pc, n + 2, &mut rng()).unwrap();
        prop_assert_eq!(tasks.len(), n);
        let mut sorted = tasks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), n);
    }

    #[test]
    fn query_utility_monotone_and_bounded((d, pc) in (arb_dist(), arb_pc())) {
        let n = d.num_vars();
        let interest = VarSet::single(0);
        let h_i = d.restrict(interest).unwrap().entropy();
        let mut tasks = VarSet::EMPTY;
        let mut prev = query_utility(&d, interest, tasks, pc).unwrap();
        prop_assert!((prev + h_i).abs() < 1e-9, "Q(I|∅) must be −H(I)");
        for v in (0..n).rev() {
            tasks = tasks.insert(v);
            let q = query_utility(&d, interest, tasks, pc).unwrap();
            prop_assert!(q >= prev - 1e-9, "query utility decreased");
            prop_assert!(q <= 1e-9, "query utility must stay ≤ 0, got {q}");
            prev = q;
        }
    }

    #[test]
    fn joint_entropy_chain_consistency((d, pc) in (arb_dist(), arb_pc())) {
        // H(I, T) = H(T) + H(I | Ans_T) ≥ H(T); and with I = all facts,
        // H(F, T) = H(F) + |T| H(Pc).
        let n = d.num_vars();
        let interest = VarSet::all(n);
        let tasks = VarSet::single(n - 1);
        let h_it = truth_answer_joint_entropy(&d, interest, tasks, pc).unwrap();
        let expected = d.entropy() + binary_entropy(pc);
        prop_assert!((h_it - expected).abs() < 1e-9);
    }
}

/// Non-proptest determinism check: selection is a pure function of its
/// inputs (no hidden global state).
#[test]
fn selection_is_deterministic() {
    let d = crowdfusion_jointdist::presets::paper_running_example();
    let a = GreedySelector::fast()
        .select(&d, 0.8, 3, &mut rng())
        .unwrap();
    let b = GreedySelector::fast()
        .select(&d, 0.8, 3, &mut rng())
        .unwrap();
    assert_eq!(a, b);
}
