//! Property tests for the selection engine's determinism guarantees.
//!
//! The engine's contract is *bit-for-bit* reproducibility across thread
//! counts: (a) pooled greedy returns the identical selection to serial
//! greedy for every evaluator, every [`PruneBound`] and every preprocess
//! setting, because candidates are scored into per-index slots and
//! reduced serially in fact order; (b) [`Experiment::run_sharded`]
//! produces the identical trace for 1 and N threads from the same master
//! seed, because every entity's random streams are a pure function of the
//! entity index and the master RNG state on entry.

use crowdfusion_core::pool::Pool;
use crowdfusion_core::round::{EntityCase, RoundConfig};
use crowdfusion_core::selection::{GreedySelector, PruneBound, TaskSelector};
use crowdfusion_core::system::Experiment;
use crowdfusion_core::AnswerEvaluator;
use crowdfusion_crowd::{CrowdPlatform, UniformAccuracy, WorkerPool};
use crowdfusion_jointdist::{Assignment, JointDist};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random dense distribution over 2..=6 variables.
fn arb_dist() -> impl Strategy<Value = JointDist> {
    (2usize..=6).prop_flat_map(|n| {
        proptest::collection::vec(0.0f64..1.0, 1usize << n).prop_filter_map(
            "positive mass",
            move |w| {
                JointDist::from_weights(
                    n,
                    w.iter()
                        .enumerate()
                        .map(|(a, &x)| (Assignment(a as u64), x)),
                )
                .ok()
            },
        )
    })
}

fn arb_pc() -> impl Strategy<Value = f64> {
    0.5f64..=1.0
}

/// Every greedy configuration axis: evaluator × prune bound × preprocess.
fn all_configs() -> Vec<GreedySelector> {
    let mut configs = Vec::new();
    for evaluator in [AnswerEvaluator::Naive, AnswerEvaluator::Butterfly] {
        for prune in [
            None,
            Some(PruneBound::Safe),
            Some(PruneBound::PaperAggressive),
            Some(PruneBound::Dominance),
        ] {
            for preprocess in [false, true] {
                let mut sel = GreedySelector::paper_approx().with_evaluator(evaluator);
                if let Some(bound) = prune {
                    sel = sel.with_prune(bound);
                }
                if preprocess {
                    sel = sel.with_preprocess();
                }
                configs.push(sel);
            }
        }
    }
    configs
}

fn rng() -> StdRng {
    StdRng::seed_from_u64(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pooled_greedy_is_bit_identical_to_serial((d, pc) in (arb_dist(), arb_pc())) {
        // (a) Across every configuration and thread count, the pooled
        // selection must equal the serial one exactly — same facts, same
        // order.
        let k = 3;
        for sel in all_configs() {
            let serial = sel.clone().with_threads(1).select(&d, pc, k, &mut rng()).unwrap();
            for threads in [2usize, 4, 7] {
                let pooled = sel.clone().with_threads(threads)
                    .select(&d, pc, k, &mut rng()).unwrap();
                prop_assert_eq!(
                    &pooled, &serial,
                    "{} diverged at {} threads", sel.name(), threads
                );
            }
        }
    }

    #[test]
    fn engine_matches_naive_reference((d, pc) in (arb_dist(), arb_pc())) {
        // The cached-scatter engine is a different floating-point route to
        // the same mathematics; on random (tie-free) distributions it must
        // pick the same facts as the paper's brute-force evaluation.
        let reference = GreedySelector::paper_approx()
            .select(&d, pc, 3, &mut rng()).unwrap();
        for threads in [1usize, 4] {
            let engine = GreedySelector::engine(threads)
                .select(&d, pc, 3, &mut rng()).unwrap();
            prop_assert_eq!(&engine, &reference, "threads = {}", threads);
        }
    }

    #[test]
    fn sharded_experiment_is_thread_count_invariant(
        (seed, pc) in (0u64..1000, 0.6f64..=0.95),
    ) {
        // (b) Same master seed ⇒ identical traces for 1 vs N threads.
        let mut gen = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let cases: Vec<EntityCase> = (0..4)
            .map(|e| {
                let n = 2 + (e + seed as usize) % 3;
                let marginals: Vec<f64> =
                    (0..n).map(|_| gen.gen_range(0.05..0.95)).collect();
                let gold = Assignment(gen.gen_range(0..(1u64 << n)));
                EntityCase::simple(
                    format!("e{e}"),
                    JointDist::independent(&marginals).unwrap(),
                    gold,
                )
            })
            .collect();
        let config = RoundConfig::new(2, 6, pc).unwrap();
        let exp = Experiment::new(cases, config).unwrap();
        let run = |threads: usize| {
            let mut platform = CrowdPlatform::new(
                WorkerPool::uniform(8, pc).unwrap(),
                UniformAccuracy::new(pc),
                seed,
            );
            let mut master = StdRng::seed_from_u64(seed ^ 0xdead_beef);
            let pool = Pool::new(threads);
            let trace = exp
                .run_sharded(
                    &GreedySelector::fast().with_pool(pool.clone()),
                    &mut platform,
                    &mut master,
                    &pool,
                )
                .unwrap();
            (trace, platform.ledger())
        };
        let (serial_trace, serial_ledger) = run(1);
        for threads in [2usize, 5] {
            let (trace, ledger) = run(threads);
            prop_assert_eq!(&trace.points, &serial_trace.points, "threads = {}", threads);
            prop_assert_eq!(ledger, serial_ledger);
        }
    }
}

/// Non-proptest sanity check: the engine at many threads still reproduces
/// the paper's running-example selection.
#[test]
fn engine_reproduces_running_example_at_any_thread_count() {
    let d = crowdfusion_jointdist::presets::paper_running_example();
    for threads in [1usize, 2, 4, 16] {
        let tasks = GreedySelector::engine(threads)
            .select(&d, 0.8, 2, &mut rng())
            .unwrap();
        assert_eq!(tasks, vec![0, 3], "threads = {threads}");
    }
}
