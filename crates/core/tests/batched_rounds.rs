//! Property tests for the batched crowd round-trip protocol.
//!
//! Two equalities pin down the tentpole's determinism contract:
//!
//! 1. **Batched == per-entity publishing.** [`Experiment::run_sharded`]
//!    (one [`RoundBatch`]/`publish_batch` round trip per global round,
//!    answers demuxed from per-entity streams) must produce the
//!    bit-identical quality-vs-cost trace to
//!    [`Experiment::run_sharded_per_entity`] (one platform fork per
//!    entity, one round trip per entity per round — the pre-batching
//!    protocol, and therefore also the behaviour of the old scoped
//!    fork–join pool). Only the ledger's `batches` count may differ:
//!    exactly one per *global* round versus one per *entity* round.
//! 2. **Thread invariance on the persistent pool.** Both protocols return
//!    the identical trace for every thread count, because every random
//!    stream (selector and crowd) is a pure function of the entity index
//!    and the master RNG's state on entry — never of scheduling order.
//!
//! Both properties are exercised over the full selector matrix the CLI
//! exposes — `greedy`, `greedy-pre`, `random` — at 1, 2 and 4 threads.

use crowdfusion_core::pool::Pool;
use crowdfusion_core::round::{EntityCase, RoundConfig};
use crowdfusion_core::selection::{GreedySelector, RandomSelector, TaskSelector};
use crowdfusion_core::system::Experiment;
use crowdfusion_crowd::{CostLedger, CrowdPlatform, UniformAccuracy, WorkerPool};
use crowdfusion_jointdist::{Assignment, JointDist};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The CLI's selector matrix (`refine --selector greedy|greedy-pre|random`),
/// each built on the given pool so its own candidate scans shard too.
fn selectors(pool: &Pool) -> Vec<(&'static str, Box<dyn TaskSelector>)> {
    vec![
        (
            "greedy",
            Box::new(GreedySelector::fast().with_pool(pool.clone())),
        ),
        (
            "greedy-pre",
            Box::new(
                GreedySelector::fast()
                    .with_preprocess()
                    .with_pool(pool.clone()),
            ),
        ),
        ("random", Box::new(RandomSelector)),
    ]
}

/// A deterministic multi-entity experiment derived from `seed`: 3–4 small
/// independent-fact entities with distinct sizes and gold truths.
fn experiment_from_seed(seed: u64, pc: f64) -> Experiment {
    let mut gen = StdRng::seed_from_u64(seed);
    let entities = 3 + (seed as usize) % 2;
    let cases: Vec<EntityCase> = (0..entities)
        .map(|e| {
            let n = 2 + (e + seed as usize) % 3;
            let marginals: Vec<f64> = (0..n).map(|_| gen.gen_range(0.05..0.95)).collect();
            let gold = Assignment(gen.gen_range(0..(1u64 << n)));
            EntityCase::simple(
                format!("e{e}"),
                JointDist::independent(&marginals).unwrap(),
                gold,
            )
        })
        .collect();
    let config = RoundConfig::new(2, 6, pc).unwrap();
    Experiment::new(cases, config).unwrap()
}

fn platform(pc: f64, seed: u64) -> CrowdPlatform<UniformAccuracy> {
    CrowdPlatform::new(
        WorkerPool::uniform(8, pc).unwrap(),
        UniformAccuracy::new(pc),
        seed,
    )
}

/// One protocol run: trace points + final ledger.
type RunOutcome = (Vec<crowdfusion_core::metrics::QualityPoint>, CostLedger);

fn run_protocol(
    exp: &Experiment,
    selector: &dyn TaskSelector,
    pc: f64,
    seed: u64,
    pool: &Pool,
    batched: bool,
) -> RunOutcome {
    let mut p = platform(pc, seed);
    let mut master = StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
    let trace = if batched {
        exp.run_sharded(selector, &mut p, &mut master, pool)
            .unwrap()
    } else {
        exp.run_sharded_per_entity(selector, &mut p, &mut master, pool)
            .unwrap()
    };
    (trace.points, p.ledger())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_and_per_entity_protocols_are_bit_identical(
        (seed, pc) in (0u64..1000, 0.6f64..=0.95),
    ) {
        let exp = experiment_from_seed(seed, pc);
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            for (name, selector) in selectors(&pool) {
                let (batched, batched_ledger) =
                    run_protocol(&exp, selector.as_ref(), pc, seed, &pool, true);
                let (per_entity, per_entity_ledger) =
                    run_protocol(&exp, selector.as_ref(), pc, seed, &pool, false);
                // Identical quality-vs-cost series and judgment spend...
                prop_assert_eq!(
                    &batched, &per_entity,
                    "{} diverged between protocols at {} threads", name, threads
                );
                prop_assert_eq!(batched_ledger.judgments, per_entity_ledger.judgments);
                // ...while the batched protocol pays exactly one round trip
                // per global round (= trace points minus the prior point)
                // and the per-entity protocol at least that many.
                prop_assert_eq!(batched_ledger.batches as usize, batched.len() - 1);
                prop_assert!(per_entity_ledger.batches >= batched_ledger.batches);
            }
        }
    }

    #[test]
    fn batched_traces_are_thread_count_invariant(
        (seed, pc) in (0u64..1000, 0.6f64..=0.95),
    ) {
        let exp = experiment_from_seed(seed, pc);
        let reference_pool = Pool::serial();
        let reference: Vec<RunOutcome> = selectors(&reference_pool)
            .iter()
            .map(|(_, s)| run_protocol(&exp, s.as_ref(), pc, seed, &reference_pool, true))
            .collect();
        for threads in [2usize, 4] {
            let pool = Pool::new(threads);
            for ((name, selector), expect) in selectors(&pool).iter().zip(&reference) {
                let got = run_protocol(&exp, selector.as_ref(), pc, seed, &pool, true);
                prop_assert_eq!(
                    &got, expect,
                    "{} not thread-invariant at {} threads", name, threads
                );
            }
        }
    }
}

/// Non-proptest sanity check on the paper's running example: the batched
/// protocol reproduces the per-entity trace point for point, and one pool
/// serves nested submissions (sharded entities whose selectors also shard
/// their candidate scans on the same workers).
#[test]
fn running_example_batched_rounds_reuse_one_pool() {
    let cases = vec![
        EntityCase::simple(
            "hk",
            crowdfusion_jointdist::presets::paper_running_example(),
            Assignment(0b0111),
        ),
        EntityCase::simple("coin", JointDist::uniform(3).unwrap(), Assignment(0b101)),
    ];
    let config = RoundConfig::new(2, 8, 0.8).unwrap();
    let exp = Experiment::new(cases, config).unwrap();
    let pool = Pool::new(4);
    let selector = GreedySelector::fast().with_pool(pool.clone());
    let (batched, batched_ledger) = run_protocol(&exp, &selector, 0.8, 3, &pool, true);
    let (per_entity, per_entity_ledger) = run_protocol(&exp, &selector, 0.8, 3, &pool, false);
    assert_eq!(batched, per_entity);
    assert_eq!(batched_ledger.judgments, 16);
    assert_eq!(batched_ledger.batches, 4); // one per global round
    assert_eq!(per_entity_ledger.batches, 8); // one per entity per round
}
