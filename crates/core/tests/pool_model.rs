//! Model-checking the pool's job lifecycle with the vendored loom-style
//! checker (see `vendor/loom`): every sequentially consistent interleaving
//! of the lifecycle is explored for a small configuration, which is how
//! the cursor race, the completion latch, and panic poisoning are argued
//! correct beyond what stress tests can show.
//!
//! `ModelJob` mirrors `crowdfusion_core`'s `pool::Job` algorithm on the
//! checker's shim primitives, op for op: the chunk cursor is claimed with
//! `fetch_add`, `remaining` counts down with `fetch_sub`, the first error
//! poisons the job and stores its payload once, and the final decrement
//! flips the `done` latch under its mutex and notifies the condvar. The
//! task closure returns `Result<(), &'static str>` standing in for the
//! real pool's `catch_unwind` payload — same control flow, no unwind
//! noise. Instrumentation counters (per-chunk execution counts) use plain
//! `std` atomics so they do not add yield points to the explored model.

use loom::channel;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicUsize as StdAtomicUsize;
use std::sync::atomic::Ordering::Relaxed;

/// Schedule budget per exploration. The lifecycle models below are sized
/// so exhaustive exploration fits comfortably; the budget is a backstop,
/// not the expected stopping rule.
const BUDGET: usize = 60_000;

type Task<'a> = dyn Fn(usize) -> Result<(), &'static str> + Sync + 'a;

struct ModelJob {
    next: AtomicUsize,
    num_chunks: usize,
    remaining: AtomicUsize,
    poisoned: AtomicBool,
    payload: Mutex<Option<&'static str>>,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl ModelJob {
    fn new(num_chunks: usize) -> ModelJob {
        ModelJob {
            next: AtomicUsize::new(0),
            num_chunks,
            remaining: AtomicUsize::new(num_chunks),
            poisoned: AtomicBool::new(false),
            payload: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    /// `pool::Job::run`: steal chunks off the cursor until exhausted.
    fn run(&self, task: &Task<'_>) {
        loop {
            let c = self.next.fetch_add(1, Ordering::SeqCst);
            if c >= self.num_chunks {
                return;
            }
            if let Err(msg) = task(c) {
                self.poisoned.store(true, Ordering::SeqCst);
                let mut payload = self.payload.lock();
                if payload.is_none() {
                    *payload = Some(msg);
                }
            }
            if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                *self.done.lock() = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// `pool::Job::wait`: the caller participates, then blocks on the
    /// completion latch and re-raises the first captured failure.
    fn wait(&self, task: &Task<'_>) -> Result<(), &'static str> {
        self.run(task);
        let mut done = self.done.lock();
        while !*done {
            done = self.done_cv.wait(done);
        }
        drop(done);
        if self.poisoned.load(Ordering::SeqCst) {
            Err(self
                .payload
                .lock()
                .take()
                .expect("poisoned job must hold a payload exactly once"))
        } else {
            Ok(())
        }
    }
}

#[test]
fn cursor_race_runs_every_chunk_exactly_once() {
    const CHUNKS: usize = 2;
    let report = loom::explore(BUDGET, || {
        let executions: std::sync::Arc<[StdAtomicUsize; CHUNKS]> =
            std::sync::Arc::new([StdAtomicUsize::new(0), StdAtomicUsize::new(0)]);
        let job = Arc::new(ModelJob::new(CHUNKS));
        let (job2, exec2) = (Arc::clone(&job), std::sync::Arc::clone(&executions));
        let helper = loom::thread::spawn(move || {
            job2.run(&|c| {
                exec2[c].fetch_add(1, Relaxed);
                Ok(())
            });
        });
        let result = job.wait(&|c| {
            executions[c].fetch_add(1, Relaxed);
            Ok(())
        });
        helper.join();
        assert_eq!(result, Ok(()));
        for (c, count) in executions.iter().enumerate() {
            assert_eq!(
                count.load(Relaxed),
                1,
                "chunk {c} must run exactly once: no lost chunks, no double execution"
            );
        }
        assert_eq!(job.remaining.load(Ordering::SeqCst), 0);
    });
    assert!(
        report.complete,
        "lifecycle model must be exhaustible within {BUDGET} schedules (ran {})",
        report.schedules
    );
    assert!(
        report.schedules >= 1_000,
        "the two-thread cursor race should need well over 1k interleavings, got {}",
        report.schedules
    );
}

#[test]
fn submit_steal_shutdown_loses_no_work() {
    // The pool's submission path: the job flows to a persistent worker
    // over a channel, the submitting caller participates in it and waits,
    // and dropping the sender is shutdown, after which the worker's recv
    // loop must terminate. Every interleaving of worker-steals-the-chunk
    // vs caller-claims-it-first must execute the chunk exactly once and
    // join the worker cleanly.
    let report = loom::explore(BUDGET, || {
        let executions = std::sync::Arc::new(StdAtomicUsize::new(0));
        let (tx, rx) = channel::unbounded::<Arc<ModelJob>>();
        let exec2 = std::sync::Arc::clone(&executions);
        let worker = loom::thread::spawn(move || {
            while let Ok(job) = rx.recv() {
                job.run(&|_c| {
                    exec2.fetch_add(1, Relaxed);
                    Ok(())
                });
            }
        });
        let job = Arc::new(ModelJob::new(1));
        assert!(
            tx.send(Arc::clone(&job)).is_ok(),
            "worker must still be receiving"
        );
        let result = job.wait(&|_c| {
            executions.fetch_add(1, Relaxed);
            Ok(())
        });
        assert_eq!(result, Ok(()));
        drop(tx);
        worker.join();
        assert_eq!(
            executions.load(Relaxed),
            1,
            "the submitted chunk must run exactly once, by whichever side wins the steal"
        );
    });
    assert!(report.complete, "ran {} schedules", report.schedules);
    assert!(report.schedules >= 100, "got {}", report.schedules);
}

#[test]
fn panic_poisoning_propagates_once_and_still_drains() {
    let report = loom::explore(BUDGET, || {
        const CHUNKS: usize = 2;
        let executions: std::sync::Arc<[StdAtomicUsize; CHUNKS]> =
            std::sync::Arc::new([StdAtomicUsize::new(0), StdAtomicUsize::new(0)]);
        let job = Arc::new(ModelJob::new(CHUNKS));
        // Chunk 0 fails; chunk 1 must still be claimed and executed so the
        // latch fires — a poisoned job drains, it does not wedge.
        let task = |exec: &std::sync::Arc<[StdAtomicUsize; CHUNKS]>| {
            let exec = std::sync::Arc::clone(exec);
            move |c: usize| {
                exec[c].fetch_add(1, Relaxed);
                if c == 0 {
                    Err("chunk boom")
                } else {
                    Ok(())
                }
            }
        };
        let (job2, task2) = (Arc::clone(&job), task(&executions));
        let helper = loom::thread::spawn(move || {
            job2.run(&task2);
        });
        let result = job.wait(&task(&executions));
        helper.join();
        assert_eq!(result, Err("chunk boom"), "failure must reach the caller");
        assert!(
            job.payload.lock().is_none(),
            "payload is surrendered exactly once"
        );
        for (c, count) in executions.iter().enumerate() {
            assert_eq!(count.load(Relaxed), 1, "chunk {c} must still run once");
        }
        assert_eq!(job.remaining.load(Ordering::SeqCst), 0, "job must drain");
    });
    assert!(report.complete, "ran {} schedules", report.schedules);
}

#[test]
fn checker_catches_a_lost_completion_signal() {
    // Sanity check that the harness has teeth: replace the atomic
    // `remaining` countdown with a load-then-store. Some interleaving
    // loses a decrement, the latch never fires, and the caller blocks
    // forever — which the checker must surface as a deadlock.
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::explore(BUDGET, || {
            let job = Arc::new(ModelJob::new(2));
            let job2 = Arc::clone(&job);
            let broken_run = |job: &ModelJob| loop {
                let c = job.next.fetch_add(1, Ordering::SeqCst);
                if c >= job.num_chunks {
                    return;
                }
                let left = job.remaining.load(Ordering::SeqCst);
                job.remaining.store(left - 1, Ordering::SeqCst);
                if left == 1 {
                    *job.done.lock() = true;
                    job.done_cv.notify_all();
                }
            };
            let helper = loom::thread::spawn(move || broken_run(&job2));
            broken_run(&job);
            let mut done = job.done.lock();
            while !*done {
                done = job.done_cv.wait(done);
            }
            drop(done);
            helper.join();
        });
    }));
    let payload = result.expect_err("the lost-decrement interleaving must be found");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}
