//! Author-list text utilities.
//!
//! The paper's gold standard treats an author-list statement as **true** when
//! it names exactly the right set of people, regardless of author order or
//! "Last, First" formatting (Section V-A: both `Adams, Tyrone; Scollard,
//! Sharon` and `Tyrone Adams, Sharon Scollard` are true). Statements are
//! **false** when they misspell a name, add organisation information, or
//! drop/add authors (Section V-D error classes).
//!
//! These utilities implement that equivalence plus a token-level Jaccard
//! similarity used by TruthFinder's implication function.

use std::collections::BTreeSet;

/// Splits an author-list string into individual author name strings.
///
/// Separators: `;` always splits. `,` splits only when the list does not use
/// `;` (in `Last, First; Last, First` lists the comma is part of a name) —
/// and when every comma chunk is a single token, consecutive chunks are
/// re-paired as `Last, First` names (so a lone `"Lovelace, Ada"` stays one
/// author). `" and "` and `&` also split.
pub fn split_authors(list: &str) -> Vec<String> {
    let primary: Vec<String> = if list.contains(';') {
        list.split(';').map(str::to_string).collect()
    } else if list.contains(',') {
        let chunks: Vec<&str> = list.split(',').map(str::trim).collect();
        let all_single_token = chunks
            .iter()
            .all(|c| c.split_whitespace().count() == 1 && !c.is_empty());
        if all_single_token && chunks.len().is_multiple_of(2) {
            // "Last, First, Last, First" — re-pair consecutive chunks.
            chunks
                .chunks_exact(2)
                .map(|pair| format!("{}, {}", pair[0], pair[1]))
                .collect()
        } else {
            chunks.into_iter().map(str::to_string).collect()
        }
    } else {
        vec![list.to_string()]
    };
    let mut out = Vec::new();
    for chunk in primary {
        for part in chunk.split(" and ") {
            for name in part.split('&') {
                let name = name.trim();
                if !name.is_empty() {
                    out.push(name.to_string());
                }
            }
        }
    }
    out
}

/// Canonicalises a single author name into a sorted, lowercased token set:
/// `"Scollard, Sharon"`, `"Sharon Scollard"` and `"SCOLLARD, SHARON"` all map
/// to `{"scollard", "sharon"}`. Parenthesised additions (e.g. organisations)
/// are **kept** as tokens, so they break equality — matching the gold rule
/// that organisation info makes a statement false.
pub fn canonical_name(name: &str) -> BTreeSet<String> {
    name.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// The canonical form of a whole author list: the multiset of canonical
/// names, represented as a sorted vector so equal lists compare equal.
pub fn canonical_list(list: &str) -> Vec<BTreeSet<String>> {
    let mut names: Vec<BTreeSet<String>> = split_authors(list)
        .iter()
        .map(|n| canonical_name(n))
        .filter(|s| !s.is_empty())
        .collect();
    names.sort();
    names
}

/// Whether two author-list statements are equivalent under the paper's gold
/// standard: the same set of people, ignoring order and name format.
pub fn lists_equivalent(a: &str, b: &str) -> bool {
    let ca = canonical_list(a);
    !ca.is_empty() && ca == canonical_list(b)
}

/// Token-level Jaccard similarity between two statements, in `[0, 1]`.
/// Used as TruthFinder's statement-similarity kernel.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let ta: BTreeSet<String> = canonical_name(a).into_iter().collect();
    let tb: BTreeSet<String> = canonical_name(b).into_iter().collect();
    if ta.is_empty() && tb.is_empty() {
        return 0.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_handles_semicolons_commas_and_and() {
        assert_eq!(
            split_authors("Tyrone Adams, Sharon Scollard"),
            vec!["Tyrone Adams", "Sharon Scollard"]
        );
        assert_eq!(
            split_authors("Adams, Tyrone; Scollard, Sharon"),
            vec!["Adams, Tyrone", "Scollard, Sharon"]
        );
        assert_eq!(
            split_authors("Ada Lovelace and Alan Turing"),
            vec!["Ada Lovelace", "Alan Turing"]
        );
        assert_eq!(
            split_authors("Ada Lovelace & Alan Turing"),
            vec!["Ada Lovelace", "Alan Turing"]
        );
        assert!(split_authors("  ").is_empty());
    }

    #[test]
    fn canonical_name_normalises_format_and_case() {
        assert_eq!(
            canonical_name("Scollard, Sharon"),
            canonical_name("Sharon Scollard")
        );
        assert_eq!(
            canonical_name("SCOLLARD, SHARON"),
            canonical_name("sharon scollard")
        );
        assert_ne!(
            canonical_name("Pete Loshin"),
            canonical_name("Peter Loshin")
        );
    }

    #[test]
    fn paper_example_order_variants_are_equivalent() {
        // Section V-A: both statements are true for ISBN 0321304292.
        assert!(lists_equivalent(
            "Adams, Tyrone; Scollard, Sharon",
            "Tyrone Adams, Sharon Scollard"
        ));
        // Section V-D "Wrong Order": reordered authors still equivalent.
        assert!(lists_equivalent(
            "Catherine Courage; Kathy Baxter",
            "BAXTER, KATHY; COURAGE, CATHERINE"
        ));
    }

    #[test]
    fn paper_error_classes_break_equivalence() {
        // Additional information (organisation) — false per gold standard.
        assert!(!lists_equivalent(
            "Rucker, Rudy",
            "RUCKER, RUDY (SAN JOSE STATE UNIVERSITY, USA)"
        ));
        // Misspelling — false.
        assert!(!lists_equivalent("Pete Loshin", "Loshin, Peter"));
        // Missing author — false.
        assert!(!lists_equivalent(
            "Catherine Courage; Kathy Baxter",
            "Catherine Courage"
        ));
    }

    #[test]
    fn empty_lists_never_equivalent() {
        assert!(!lists_equivalent("", ""));
        assert!(!lists_equivalent("", "Ada Lovelace"));
    }

    #[test]
    fn jaccard_bounds_and_examples() {
        assert!((jaccard("Ada Lovelace", "Ada Lovelace") - 1.0).abs() < 1e-12);
        assert_eq!(jaccard("Ada Lovelace", "Grace Hopper"), 0.0);
        let j = jaccard("Ada Lovelace", "Ada Hopper");
        assert!(j > 0.0 && j < 1.0);
        assert_eq!(jaccard("", ""), 0.0);
    }

    #[test]
    fn canonical_list_sorted_and_stable() {
        let a = canonical_list("B Bb; A Aa");
        let b = canonical_list("A Aa; B Bb");
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }
}
