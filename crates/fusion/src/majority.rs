//! Majority voting — the simplest fusion baseline.

use crate::error::FusionError;
use crate::model::{Dataset, StatementId};
use crate::result::{FusionMethod, FusionResult};

/// Majority voting: the probability of a statement is the fraction of the
/// entity's claiming sources that assert it.
///
/// Also provides the *top-fraction marking* used by the paper's modified CRH
/// initialisation ("we firstly mark top 50 % of author lists for each book as
/// the correct author lists by majority voting", Section V-A).
#[derive(Debug, Clone, Copy)]
pub struct MajorityVote;

impl MajorityVote {
    /// Vote share of each statement: `|supporters| / |sources on entity|`.
    pub fn vote_shares(dataset: &Dataset) -> Vec<f64> {
        let mut shares = vec![0.0; dataset.statements().len()];
        for entity in dataset.entities() {
            let voters = dataset.sources_on(entity.id).len();
            if voters == 0 {
                continue;
            }
            for &s in &entity.statements {
                shares[s.0 as usize] = dataset.supporters(s).len() as f64 / voters as f64;
            }
        }
        shares
    }

    /// Marks the top `fraction` of each entity's statements (by vote count,
    /// ties broken toward lower statement id) as true.
    ///
    /// At least one statement per non-empty entity is always marked. This is
    /// the paper's "top 50 % by majority voting" step with `fraction = 0.5`.
    pub fn mark_top_fraction(dataset: &Dataset, fraction: f64) -> Vec<bool> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let mut marked = vec![false; dataset.statements().len()];
        for entity in dataset.entities() {
            if entity.statements.is_empty() {
                continue;
            }
            let mut ranked: Vec<StatementId> = entity.statements.clone();
            ranked.sort_by_key(|s| (std::cmp::Reverse(dataset.supporters(*s).len()), s.0));
            let take = ((entity.statements.len() as f64 * fraction).round() as usize).max(1);
            for s in ranked.into_iter().take(take) {
                marked[s.0 as usize] = true;
            }
        }
        marked
    }
}

impl FusionMethod for MajorityVote {
    fn name(&self) -> &'static str {
        "majority"
    }

    fn fuse(&self, dataset: &Dataset) -> Result<FusionResult, FusionError> {
        if dataset.claims().is_empty() {
            return Err(FusionError::NoClaims);
        }
        Ok(FusionResult::from_entity_shares(
            self.name(),
            Self::vote_shares(dataset),
            dataset,
            0.9,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::two_book_dataset;
    use crate::model::DatasetBuilder;

    #[test]
    fn vote_shares_normalise_per_entity() {
        let d = two_book_dataset();
        let shares = MajorityVote::vote_shares(&d);
        // Book 0 has 3 claiming sources, one claim per statement.
        assert!((shares[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((shares[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((shares[2] - 1.0 / 3.0).abs() < 1e-12);
        // Book 1: s3 has 2/3 supporters, s4 has 1/3.
        assert!((shares[3] - 2.0 / 3.0).abs() < 1e-12);
        assert!((shares[4] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fuse_produces_clamped_result() {
        let d = two_book_dataset();
        let r = MajorityVote.fuse(&d).unwrap();
        assert_eq!(r.method(), "majority");
        assert!(r.prob(StatementId(3)) > r.prob(StatementId(4)));
    }

    #[test]
    fn fuse_rejects_empty_claims() {
        let mut b = DatasetBuilder::new();
        let e = b.add_entity("x");
        b.add_statement(e, "v").unwrap();
        assert_eq!(
            MajorityVote.fuse(&b.build()).unwrap_err(),
            FusionError::NoClaims
        );
    }

    #[test]
    fn mark_top_half_marks_best_supported() {
        let d = two_book_dataset();
        let marked = MajorityVote::mark_top_fraction(&d, 0.5);
        // Book 0: 3 statements, take round(1.5)=2 -> s0, s1 (tie by id).
        assert!(marked[0] && marked[1] && !marked[2]);
        // Book 1: 2 statements, take 1 -> s3 (2 supporters).
        assert!(marked[3] && !marked[4]);
    }

    #[test]
    fn mark_always_keeps_at_least_one() {
        let d = two_book_dataset();
        let marked = MajorityVote::mark_top_fraction(&d, 0.0);
        // Every entity keeps exactly one marked statement.
        assert_eq!(marked.iter().filter(|&&m| m).count(), 2);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn mark_rejects_bad_fraction() {
        let d = two_book_dataset();
        MajorityVote::mark_top_fraction(&d, 1.5);
    }
}
