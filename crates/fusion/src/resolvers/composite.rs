//! The composite strategy: attribute → resolver mapping over a registered
//! fallback method — PyDI's `DataFusionStrategy` shape on our dataset model.

use super::{attribute_groups, calibrate_group, ConflictResolver};
use crate::error::FusionError;
use crate::model::Dataset;
use crate::provenance::{statement_record, ProvenanceLedger};
use crate::result::{FusionMethod, FusionResult};
use std::collections::BTreeMap;

/// A per-attribute fusion strategy: each mapped attribute is scored by its
/// own [`ConflictResolver`]; every other statement (unmapped attributes and
/// the default attribute) keeps the probability the fallback
/// [`FusionMethod`] assigns.
///
/// The fallback runs once over the whole dataset — including mapped
/// statements, whose probabilities are then overwritten group-by-group with
/// the resolver's calibrated scores. Provenance records carry the resolver
/// name per statement, so a report shows exactly which strategy decided
/// each fact.
pub struct DataFusionStrategy {
    name: &'static str,
    mapping: BTreeMap<String, Box<dyn ConflictResolver>>,
    fallback: Box<dyn FusionMethod>,
}

impl DataFusionStrategy {
    /// An empty mapping over `fallback`, registered under `name`.
    pub fn new(name: &'static str, fallback: Box<dyn FusionMethod>) -> DataFusionStrategy {
        DataFusionStrategy {
            name,
            mapping: BTreeMap::new(),
            fallback,
        }
    }

    /// Routes `attribute` to `resolver`.
    pub fn with_resolver(
        mut self,
        attribute: impl Into<String>,
        resolver: Box<dyn ConflictResolver>,
    ) -> DataFusionStrategy {
        self.mapping.insert(attribute.into(), resolver);
        self
    }

    /// The standard composite registered as `per-attribute`: author lists by
    /// union coverage, page counts by median closeness, publication dates by
    /// recency — the attribute names the book generator emits — with
    /// modified CRH as fallback for everything else.
    pub fn standard() -> DataFusionStrategy {
        DataFusionStrategy::new(
            "per-attribute",
            Box::new(crate::crh::ModifiedCrh::default()),
        )
        .with_resolver("authors", Box::new(super::ListUnion))
        .with_resolver("pages", Box::new(super::NumericMedian))
        .with_resolver("published", Box::new(super::MostRecent))
    }

    /// Source weights per mapped attribute, computed once per fuse.
    fn resolver_weights(&self, dataset: &Dataset) -> BTreeMap<&str, Vec<f64>> {
        self.mapping
            .iter()
            .map(|(attr, r)| (attr.as_str(), r.source_weights(dataset)))
            .collect()
    }

    /// Overwrites mapped groups of `probs` with calibrated resolver scores;
    /// calls `on_group` for each rewritten group so provenance can follow.
    fn apply_resolvers(
        &self,
        dataset: &Dataset,
        probs: &mut [f64],
        weights: &BTreeMap<&str, Vec<f64>>,
        mut on_group: impl FnMut(&str, &[crate::model::StatementId], &[f64]),
    ) {
        for entity in dataset.entities() {
            for (attr, group) in attribute_groups(dataset, entity) {
                let Some(attr) = attr else { continue };
                let Some(resolver) = self.mapping.get(attr) else {
                    continue;
                };
                let w = &weights[attr];
                let mut scores = resolver.resolve(dataset, &group, w);
                calibrate_group(&mut scores, 0.9);
                for (&s, &score) in group.iter().zip(&scores) {
                    probs[s.0 as usize] = score;
                }
                on_group(resolver.name(), &group, w);
            }
        }
    }
}

impl std::fmt::Debug for DataFusionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataFusionStrategy")
            .field("name", &self.name)
            .field("attributes", &self.mapping.keys().collect::<Vec<_>>())
            .field("fallback", &self.fallback.name())
            .finish()
    }
}

impl FusionMethod for DataFusionStrategy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fuse(&self, dataset: &Dataset) -> Result<FusionResult, FusionError> {
        let base = self.fallback.fuse(dataset)?;
        let mut probs = base.probs().to_vec();
        let weights = self.resolver_weights(dataset);
        self.apply_resolvers(dataset, &mut probs, &weights, |_, _, _| {});
        Ok(FusionResult::new(self.name(), probs))
    }

    fn fuse_with_provenance(
        &self,
        dataset: &Dataset,
    ) -> Result<(FusionResult, ProvenanceLedger), FusionError> {
        let (base, mut ledger) = self.fallback.fuse_with_provenance(dataset)?;
        let mut probs = base.probs().to_vec();
        let weights = self.resolver_weights(dataset);
        let mut rewritten = Vec::new();
        self.apply_resolvers(dataset, &mut probs, &weights, |resolver, group, w| {
            rewritten.push((resolver.to_string(), group.to_vec(), w.to_vec()));
        });
        let result = FusionResult::new(self.name(), probs);
        ledger.method = self.name().to_string();
        for (resolver, group, w) in rewritten {
            for s in group {
                ledger
                    .statements
                    .insert(s.0, statement_record(dataset, &resolver, &w, &result, s));
            }
        }
        Ok((result, ledger))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::attributed_dataset;
    use super::*;
    use crate::model::StatementId;

    #[test]
    fn mapped_attributes_use_their_resolver_and_the_rest_use_the_fallback() {
        let d = attributed_dataset();
        let composite = DataFusionStrategy::standard();
        let r = composite.fuse(&d).unwrap();
        let fallback = crate::crh::ModifiedCrh::default().fuse(&d).unwrap();
        // The default-attribute author statements keep fallback scores.
        for s in [0u32, 1, 7, 8] {
            assert_eq!(r.prob(StatementId(s)), fallback.prob(StatementId(s)));
        }
        // pages rerouted to median closeness: the outlier 1200 is crushed.
        assert!(r.prob(StatementId(2)) > r.prob(StatementId(4)));
        // published rerouted to recency: the newer date wins.
        assert!(r.prob(StatementId(5)) > r.prob(StatementId(6)));
        assert_eq!(r.method(), "per-attribute");
    }

    #[test]
    fn provenance_names_the_deciding_resolver_per_statement() {
        let d = attributed_dataset();
        let (result, ledger) = DataFusionStrategy::standard()
            .fuse_with_provenance(&d)
            .unwrap();
        assert_eq!(result, DataFusionStrategy::standard().fuse(&d).unwrap());
        assert_eq!(ledger.method, "per-attribute");
        assert_eq!(ledger.statements[&0].resolver, "modified-crh");
        assert_eq!(ledger.statements[&2].resolver, "numeric-median");
        assert_eq!(ledger.statements[&5].resolver, "most-recent");
    }

    #[test]
    fn unmapped_composite_equals_its_fallback() {
        let d = attributed_dataset();
        let bare = DataFusionStrategy::new("bare", Box::new(crate::majority::MajorityVote));
        let r = bare.fuse(&d).unwrap();
        let mv = crate::majority::MajorityVote.fuse(&d).unwrap();
        assert_eq!(r.probs(), mv.probs());
    }
}
