//! Typed resolvers for numeric and date attributes: closeness to the
//! claim-weighted average or median, and most-recent-date preference.
//!
//! All three parse statement text leniently (first numeric token /
//! `YYYY[-MM[-DD]]` prefix) and fall back to plain vote shares for groups
//! where nothing parses, so they degrade gracefully on non-typed data.

use super::{weighted_group_vote, ConflictResolver};
use crate::model::{Dataset, StatementId};

/// Extracts the first numeric token of a statement's text: `"320"`,
/// `"320 pages"` and `"approx 320.5"` all parse to a value; text without a
/// digit does not.
pub(crate) fn parse_number(text: &str) -> Option<f64> {
    for token in text.split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-')) {
        if token.chars().any(|c| c.is_ascii_digit()) {
            if let Ok(v) = token.parse::<f64>() {
                return Some(v);
            }
        }
    }
    None
}

/// Parses a date written as `YYYY`, `YYYY-MM` or `YYYY-MM-DD` (also with
/// `/` separators) into approximate days-since-year-0, good enough for
/// ordering and age differences.
pub(crate) fn parse_date_days(text: &str) -> Option<f64> {
    let mut parts = text
        .trim()
        .split(['-', '/'])
        .map(|p| p.trim().parse::<u32>());
    let year = match parts.next() {
        Some(Ok(y)) if (1000..=9999).contains(&y) => y,
        _ => return None,
    };
    let month = match parts.next() {
        None => 1,
        Some(Ok(m)) if (1..=12).contains(&m) => m,
        _ => return None,
    };
    let day = match parts.next() {
        None => 1,
        Some(Ok(d)) if (1..=31).contains(&d) => d,
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(year as f64 * 365.25 + (month - 1) as f64 * 30.44 + day as f64)
}

/// The claim-weighted sequence of parsed values in a group: every claim on a
/// parseable statement contributes one sample carrying its source's weight.
fn claimed_samples(
    dataset: &Dataset,
    group: &[StatementId],
    weights: &[f64],
    parse: impl Fn(&str) -> Option<f64>,
) -> Vec<(f64, f64)> {
    let mut samples = Vec::new();
    for &s in group {
        if let Some(v) = parse(dataset.statement_text(s)) {
            for src in dataset.supporters(s) {
                samples.push((v, weights[src.0 as usize]));
            }
        }
    }
    samples
}

/// Scores a parseable value by closeness to `center`:
/// `1 / (1 + |v − center| / scale)` with `scale = max(|center|, 1)` — the
/// consensus value scores 1, a value off by 100 % of the center scores 0.5.
/// Unparseable statements score 0.
fn closeness_scores(
    dataset: &Dataset,
    group: &[StatementId],
    center: f64,
    parse: impl Fn(&str) -> Option<f64>,
) -> Vec<f64> {
    let scale = center.abs().max(1.0);
    group
        .iter()
        .map(|&s| match parse(dataset.statement_text(s)) {
            Some(v) => 1.0 / (1.0 + (v - center).abs() / scale),
            None => 0.0,
        })
        .collect()
}

/// Numeric resolver scoring closeness to the claim-weighted *mean* of the
/// group's claimed values.
#[derive(Debug, Clone, Copy, Default)]
pub struct NumericAverage;

impl ConflictResolver for NumericAverage {
    fn name(&self) -> &'static str {
        "numeric-average"
    }

    fn resolve(&self, dataset: &Dataset, group: &[StatementId], weights: &[f64]) -> Vec<f64> {
        let samples = claimed_samples(dataset, group, weights, parse_number);
        let total_w: f64 = samples.iter().map(|(_, w)| w).sum();
        if total_w <= 0.0 {
            return weighted_group_vote(dataset, group, weights);
        }
        let mean = samples.iter().map(|(v, w)| v * w).sum::<f64>() / total_w;
        closeness_scores(dataset, group, mean, parse_number)
    }
}

/// Numeric resolver scoring closeness to the *median* claimed value
/// (claim-expanded; even counts average the two middles) — robust to a
/// single wild outlier source.
#[derive(Debug, Clone, Copy, Default)]
pub struct NumericMedian;

impl ConflictResolver for NumericMedian {
    fn name(&self) -> &'static str {
        "numeric-median"
    }

    fn resolve(&self, dataset: &Dataset, group: &[StatementId], weights: &[f64]) -> Vec<f64> {
        let mut values: Vec<f64> = claimed_samples(dataset, group, weights, parse_number)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        if values.is_empty() {
            return weighted_group_vote(dataset, group, weights);
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        let median = if n % 2 == 1 {
            values[n / 2]
        } else {
            (values[n / 2 - 1] + values[n / 2]) / 2.0
        };
        closeness_scores(dataset, group, median, parse_number)
    }
}

/// Date resolver preferring the most recent claimed date: the latest date
/// scores 1, older dates decay as `1 / (1 + age_in_years)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MostRecent;

impl ConflictResolver for MostRecent {
    fn name(&self) -> &'static str {
        "most-recent"
    }

    fn resolve(&self, dataset: &Dataset, group: &[StatementId], weights: &[f64]) -> Vec<f64> {
        let latest = claimed_samples(dataset, group, weights, parse_date_days)
            .into_iter()
            .map(|(v, _)| v)
            .fold(f64::NEG_INFINITY, f64::max);
        if !latest.is_finite() {
            return weighted_group_vote(dataset, group, weights);
        }
        group
            .iter()
            .map(|&s| match parse_date_days(dataset.statement_text(s)) {
                Some(d) if d <= latest => 1.0 / (1.0 + (latest - d) / 365.25),
                // A date newer than every *claimed* date (unclaimed
                // statement): treat as exactly current.
                Some(_) => 1.0,
                None => 0.0,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::attributed_dataset;
    use super::super::ResolverMethod;
    use super::*;
    use crate::result::FusionMethod;

    #[test]
    fn number_and_date_parsing() {
        assert_eq!(parse_number("320"), Some(320.0));
        assert_eq!(parse_number("320 pages"), Some(320.0));
        assert_eq!(parse_number("approx 12.5"), Some(12.5));
        assert_eq!(parse_number("no digits"), None);
        assert_eq!(parse_date_days("2001"), parse_date_days("2001-01-01"));
        assert!(parse_date_days("2001-05-20") > parse_date_days("1999/01/02"));
        assert_eq!(parse_date_days("Ada Lovelace"), None);
        assert_eq!(parse_date_days("2001-13-01"), None);
        assert_eq!(parse_date_days("2001-01-01-01"), None);
    }

    #[test]
    fn median_shrugs_off_the_outlier() {
        let d = attributed_dataset();
        let r = ResolverMethod::new(NumericMedian).fuse(&d).unwrap();
        // pages: 320 (×2 claims), 318, 1200. Median = 320; 318 is close,
        // the 1200 outlier scores low.
        assert!(r.prob(StatementId(2)) > r.prob(StatementId(4)));
        assert!(r.prob(StatementId(3)) > r.prob(StatementId(4)));
    }

    #[test]
    fn average_is_pulled_by_the_outlier_but_still_ranks_consensus_first() {
        let d = attributed_dataset();
        let r = ResolverMethod::new(NumericAverage).fuse(&d).unwrap();
        assert!(r.prob(StatementId(2)) > r.prob(StatementId(4)));
    }

    #[test]
    fn most_recent_prefers_the_later_date() {
        let d = attributed_dataset();
        let r = ResolverMethod::new(MostRecent).fuse(&d).unwrap();
        // published: 2001-05-20 vs 1999-01-02.
        assert!(r.prob(StatementId(5)) > r.prob(StatementId(6)));
    }

    #[test]
    fn unparseable_groups_fall_back_to_voting() {
        let d = attributed_dataset();
        // Author statements carry no numbers or dates, so the numeric and
        // date resolvers degrade to vote shares there: the corroborated
        // author list still wins.
        for r in [
            ResolverMethod::new(NumericAverage).fuse(&d).unwrap(),
            ResolverMethod::new(NumericMedian).fuse(&d).unwrap(),
            ResolverMethod::new(MostRecent).fuse(&d).unwrap(),
        ] {
            assert!(r.prob(StatementId(0)) > r.prob(StatementId(1)));
        }
    }
}
