//! The voting family of resolvers: plain, claim-weighted, trust-weighted
//! and source-preference voting. All four score a group with
//! [`weighted_group_vote`](super::weighted_group_vote) and differ only in
//! how they weight sources.

use super::{weighted_group_vote, ConflictResolver};
use crate::model::{Dataset, StatementId};

/// Plain voting: every source weighs 1, a statement's score is the fraction
/// of the group's voters asserting it.
#[derive(Debug, Clone, Copy, Default)]
pub struct Voting;

impl ConflictResolver for Voting {
    fn name(&self) -> &'static str {
        "vote"
    }

    fn resolve(&self, dataset: &Dataset, group: &[StatementId], weights: &[f64]) -> Vec<f64> {
        weighted_group_vote(dataset, group, weights)
    }
}

/// Claim-weighted voting: prolific sources count more. A source asserting
/// `n` claims weighs `1 + ln(1 + n)` — coverage earns logarithmically
/// diminishing credit, so one encyclopedic source cannot silence the field.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedVoting;

impl ConflictResolver for WeightedVoting {
    fn name(&self) -> &'static str {
        "weighted-vote"
    }

    fn source_weights(&self, dataset: &Dataset) -> Vec<f64> {
        dataset
            .claims_per_source()
            .into_iter()
            .map(|n| 1.0 + (1.0 + n as f64).ln())
            .collect()
    }

    fn resolve(&self, dataset: &Dataset, group: &[StatementId], weights: &[f64]) -> Vec<f64> {
        weighted_group_vote(dataset, group, weights)
    }
}

/// Trust voting: source weights are bootstrapped agreement rates. A
/// statement is *majority-backed* when its supporter count is the maximum in
/// its entity; a source's trust is the Laplace-smoothed fraction of its
/// claims that land on majority-backed statements, `(agree + 1) /
/// (claims + 2)`. Sources that habitually dissent from the per-entity
/// majority are discounted in every group they vote in.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrustVoting;

impl ConflictResolver for TrustVoting {
    fn name(&self) -> &'static str {
        "trust-vote"
    }

    fn source_weights(&self, dataset: &Dataset) -> Vec<f64> {
        let mut majority_backed = vec![false; dataset.statements().len()];
        for entity in dataset.entities() {
            let max = entity
                .statements
                .iter()
                .map(|&s| dataset.supporters(s).len())
                .max()
                .unwrap_or(0);
            if max == 0 {
                continue;
            }
            for &s in &entity.statements {
                if dataset.supporters(s).len() == max {
                    majority_backed[s.0 as usize] = true;
                }
            }
        }
        let mut agree = vec![0usize; dataset.sources().len()];
        let mut claims = vec![0usize; dataset.sources().len()];
        for c in dataset.claims() {
            claims[c.source.0 as usize] += 1;
            if majority_backed[c.statement.0 as usize] {
                agree[c.source.0 as usize] += 1;
            }
        }
        agree
            .iter()
            .zip(&claims)
            .map(|(&a, &n)| (a as f64 + 1.0) / (n as f64 + 2.0))
            .collect()
    }

    fn resolve(&self, dataset: &Dataset, group: &[StatementId], weights: &[f64]) -> Vec<f64> {
        weighted_group_vote(dataset, group, weights)
    }
}

/// Preference voting: sources earlier in a configured preference order
/// dominate later ones. A listed source at rank `r` (0-based, `k` listed)
/// weighs `(k − r + 1) · |sources|` — any listed source outvotes every
/// unlisted source combined; unlisted sources weigh 1. With an empty
/// preference list the preference order is every source name in
/// lexicographic order — a deterministic default that keeps the registered
/// method meaningful on any dataset.
#[derive(Debug, Clone, Default)]
pub struct FavourSources {
    /// Source names in decreasing order of preference. Names not present in
    /// the dataset are ignored.
    pub preferred: Vec<String>,
}

impl FavourSources {
    /// Prefers the given source names, most trusted first.
    pub fn new(preferred: Vec<String>) -> FavourSources {
        FavourSources { preferred }
    }
}

impl ConflictResolver for FavourSources {
    fn name(&self) -> &'static str {
        "favour-sources"
    }

    fn source_weights(&self, dataset: &Dataset) -> Vec<f64> {
        let order: Vec<&str> = if self.preferred.is_empty() {
            let mut names: Vec<&str> = dataset.sources().iter().map(|s| s.name.as_str()).collect();
            names.sort_unstable();
            names
        } else {
            self.preferred.iter().map(String::as_str).collect()
        };
        let k = order.len();
        let n = dataset.sources().len() as f64;
        dataset
            .sources()
            .iter()
            .map(|s| match order.iter().position(|&n| n == s.name) {
                Some(r) => (k - r + 1) as f64 * n,
                None => 1.0,
            })
            .collect()
    }

    fn resolve(&self, dataset: &Dataset, group: &[StatementId], weights: &[f64]) -> Vec<f64> {
        weighted_group_vote(dataset, group, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::attributed_dataset;
    use super::super::ResolverMethod;
    use super::*;
    use crate::model::DatasetBuilder;
    use crate::result::FusionMethod;

    #[test]
    fn plain_vote_favours_corroboration() {
        let d = attributed_dataset();
        let r = ResolverMethod::new(Voting).fuse(&d).unwrap();
        // Authors of book 0: a0 has 3 supporters, a1 has 1.
        assert!(r.prob(StatementId(0)) > r.prob(StatementId(1)));
        // pages: 320 (2 supporters) beats both single-supporter variants.
        assert!(r.prob(StatementId(2)) > r.prob(StatementId(3)));
        assert!(r.prob(StatementId(2)) > r.prob(StatementId(4)));
    }

    #[test]
    fn weighted_vote_weights_grow_with_claims() {
        let d = attributed_dataset();
        let w = WeightedVoting.source_weights(&d);
        // good (4 claims) outweighs lone (3 claims).
        assert!(w[0] > w[3]);
        assert!(w.iter().all(|&x| x > 1.0));
    }

    #[test]
    fn trust_vote_discounts_dissenters() {
        let d = attributed_dataset();
        let w = TrustVoting.source_weights(&d);
        // noisy.org (index 2) always dissents from the majority; good.com
        // (index 0) always agrees.
        assert!(w[0] > w[2]);
        // Trust is a smoothed rate in (0, 1).
        assert!(w.iter().all(|&t| t > 0.0 && t < 1.0));
    }

    #[test]
    fn trust_vote_flips_a_contested_majority() {
        // Two habitual dissenters outnumber one corroborated source on the
        // last entity; trust voting sides with the corroborated source.
        let mut b = DatasetBuilder::new();
        let good = b.add_source("good");
        let okay = b.add_source("okay");
        let bad1 = b.add_source("bad1");
        let bad2 = b.add_source("bad2");
        for i in 0..4 {
            let e = b.add_entity(format!("e{i}"));
            let t = b.add_statement(e, format!("t{i}")).unwrap();
            let f1 = b.add_statement(e, format!("f1-{i}")).unwrap();
            let f2 = b.add_statement(e, format!("f2-{i}")).unwrap();
            b.add_claim(good, t).unwrap();
            b.add_claim(okay, t).unwrap();
            b.add_claim(bad1, f1).unwrap();
            b.add_claim(bad2, f2).unwrap();
        }
        let e = b.add_entity("contested");
        let t = b.add_statement(e, "true").unwrap();
        let f = b.add_statement(e, "false").unwrap();
        b.add_claim(good, t).unwrap();
        b.add_claim(bad1, f).unwrap();
        b.add_claim(bad2, f).unwrap();
        let d = b.build();
        let plain = ResolverMethod::new(Voting).fuse(&d).unwrap();
        let trust = ResolverMethod::new(TrustVoting).fuse(&d).unwrap();
        assert!(plain.prob(f) > plain.prob(t));
        assert!(trust.prob(t) > trust.prob(f));
    }

    #[test]
    fn favour_sources_override_vote_counts() {
        let d = attributed_dataset();
        // Prefer the dissenting source: its lone author claim should now
        // beat the three-way corroborated one.
        let favour = ResolverMethod::new(FavourSources::new(vec!["noisy.org".into()]));
        let r = favour.fuse(&d).unwrap();
        assert!(r.prob(StatementId(1)) > r.prob(StatementId(0)));
        // Default preference order is lexicographic and deterministic.
        let w = FavourSources::default().source_weights(&d);
        let w2 = FavourSources::default().source_weights(&d);
        assert_eq!(w, w2);
        // good.com sorts first of the four names, so it gets the top weight.
        assert!(w[0] > w[1] && w[0] > w[2] && w[0] > w[3]);
    }
}
