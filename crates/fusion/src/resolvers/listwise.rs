//! List-valued resolver: score candidate lists by how much of the
//! claim-supported union of members they cover.

use super::{weighted_group_vote, ConflictResolver};
use crate::model::{Dataset, StatementId};
use crate::text::canonical_list;
use std::collections::{BTreeMap, BTreeSet};

/// Union resolver for list-valued attributes (author lists). Tokenises each
/// candidate list into canonical member names (order- and
/// format-insensitive, via [`crate::text`]), builds the union of members
/// across the group's *claimed* statements with each member weighted by the
/// claim weight behind it, and scores a statement by the fraction of the
/// union's total support its members cover:
/// `score = Σ support(members) / Σ support(union)`.
///
/// Lists missing a well-corroborated member (dropped authors) lose that
/// member's support; misspelled or invented members attract near-zero
/// support and so add nothing. Groups whose statements tokenise to nothing
/// fall back to plain vote shares.
#[derive(Debug, Clone, Copy, Default)]
pub struct ListUnion;

impl ConflictResolver for ListUnion {
    fn name(&self) -> &'static str {
        "list-union"
    }

    fn resolve(&self, dataset: &Dataset, group: &[StatementId], weights: &[f64]) -> Vec<f64> {
        // Canonical member sets per statement.
        let members: Vec<BTreeSet<BTreeSet<String>>> = group
            .iter()
            .map(|&s| {
                canonical_list(dataset.statement_text(s))
                    .into_iter()
                    .collect()
            })
            .collect();
        // Claim-weighted support behind each union member.
        let mut support: BTreeMap<&BTreeSet<String>, f64> = BTreeMap::new();
        for (&s, names) in group.iter().zip(&members) {
            let claim_weight: f64 = dataset
                .supporters(s)
                .iter()
                .map(|src| weights[src.0 as usize])
                .sum();
            for name in names {
                *support.entry(name).or_insert(0.0) += claim_weight;
            }
        }
        let total: f64 = support.values().sum();
        if total <= 0.0 {
            return weighted_group_vote(dataset, group, weights);
        }
        members
            .iter()
            .map(|names| {
                names
                    .iter()
                    .map(|n| support.get(n).copied().unwrap_or(0.0))
                    .sum::<f64>()
                    / total
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::ResolverMethod;
    use super::*;
    use crate::model::DatasetBuilder;
    use crate::result::FusionMethod;

    #[test]
    fn dropped_author_loses_to_the_complete_list() {
        let mut b = DatasetBuilder::new();
        let s1 = b.add_source("a");
        let s2 = b.add_source("b");
        let s3 = b.add_source("c");
        let e = b.add_entity("book");
        let full = b.add_statement(e, "Ada Lovelace; Alan Turing").unwrap();
        let reorder = b.add_statement(e, "Alan Turing; Ada Lovelace").unwrap();
        let partial = b.add_statement(e, "Ada Lovelace").unwrap();
        b.add_claim(s1, full).unwrap();
        b.add_claim(s2, reorder).unwrap();
        b.add_claim(s3, partial).unwrap();
        let d = b.build();
        let r = ResolverMethod::new(ListUnion).fuse(&d).unwrap();
        // Both complete variants cover the whole union; the partial list
        // misses Turing's support.
        assert!(r.prob(full) > r.prob(partial));
        assert!(r.prob(reorder) > r.prob(partial));
        assert_eq!(r.prob(full), r.prob(reorder));
    }

    #[test]
    fn misspelled_member_gains_nothing() {
        let mut b = DatasetBuilder::new();
        let s1 = b.add_source("a");
        let s2 = b.add_source("b");
        let s3 = b.add_source("c");
        let e = b.add_entity("book");
        let right = b.add_statement(e, "Edsger Dijkstra").unwrap();
        let wrong = b.add_statement(e, "Edsgar Dykstra").unwrap();
        b.add_claim(s1, right).unwrap();
        b.add_claim(s2, right).unwrap();
        b.add_claim(s3, wrong).unwrap();
        let d = b.build();
        let r = ResolverMethod::new(ListUnion).fuse(&d).unwrap();
        assert!(r.prob(right) > r.prob(wrong));
    }

    #[test]
    fn tokenless_group_falls_back_to_voting() {
        let mut b = DatasetBuilder::new();
        let s1 = b.add_source("a");
        let s2 = b.add_source("b");
        let e = b.add_entity("x");
        let v1 = b.add_statement(e, "--").unwrap();
        let v2 = b.add_statement(e, "??").unwrap();
        b.add_claim(s1, v1).unwrap();
        b.add_claim(s2, v1).unwrap();
        b.add_claim(s2, v2).unwrap();
        let d = b.build();
        let r = ResolverMethod::new(ListUnion).fuse(&d).unwrap();
        assert!(r.prob(v1) > r.prob(v2));
    }
}
