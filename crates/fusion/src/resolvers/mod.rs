//! Per-attribute conflict resolvers, after the data-fusion framing of Dong
//! et al. ("Data Fusion: Resolving Conflicts from Multiple Sources") and the
//! PyDI `DataFusionStrategy` shape.
//!
//! A [`ConflictResolver`] scores one *attribute group* — the statements an
//! entity's sources propose for a single attribute — instead of running a
//! global iterative model. [`ResolverMethod`] lifts any resolver into a
//! [`FusionMethod`]: it walks every entity, groups its statements by
//! attribute ([`attribute_groups`]), scores each group, rescales so each
//! group's top statement gets 0.9 (preserving ratios, mirroring
//! [`FusionResult::from_entity_shares`] but *per group* so attributes don't
//! bleed into each other), and clamps everything through
//! [`crate::PROB_FLOOR`].
//!
//! Determinism rules for resolvers: no randomness, no clocks, no hash-order
//! iteration — groups arrive in statement-id order, attribute order is
//! `BTreeMap` order (default attribute first), and `source_weights` must be
//! a pure function of the dataset. Every shipped resolver scores in `[0, 1]`
//! before calibration.

mod composite;
mod listwise;
mod numeric;
mod voting;

pub use composite::DataFusionStrategy;
pub use listwise::ListUnion;
pub use numeric::{MostRecent, NumericAverage, NumericMedian};
pub use voting::{FavourSources, TrustVoting, Voting, WeightedVoting};

use crate::error::FusionError;
use crate::model::{Dataset, Entity, StatementId};
use crate::provenance::ProvenanceLedger;
use crate::result::{FusionMethod, FusionResult};
use std::collections::{BTreeMap, BTreeSet};

/// A per-attribute conflict-resolution strategy.
///
/// Implementations are stateless and deterministic; see the module docs for
/// the contract.
pub trait ConflictResolver {
    /// Machine-readable resolver name — also the name the lifted
    /// [`ResolverMethod`] registers under.
    fn name(&self) -> &'static str;

    /// Per-source weights this resolver uses over `dataset`, indexed by
    /// [`crate::SourceId`]. Computed once per fuse; recorded as provenance
    /// contribution weights. Weightless resolvers return all `1.0`.
    fn source_weights(&self, dataset: &Dataset) -> Vec<f64> {
        vec![1.0; dataset.sources().len()]
    }

    /// Scores one attribute group (statement ids of a single entity and
    /// attribute, in id order) given the precomputed `weights`. Returns one
    /// raw score per group member, parallel to `group`.
    fn resolve(&self, dataset: &Dataset, group: &[StatementId], weights: &[f64]) -> Vec<f64>;
}

/// Groups an entity's statements by attribute, default attribute (`None`)
/// first, then attribute names in lexicographic order; statements stay in id
/// order within each group.
pub fn attribute_groups<'a>(
    dataset: &'a Dataset,
    entity: &Entity,
) -> Vec<(Option<&'a str>, Vec<StatementId>)> {
    let mut groups: BTreeMap<Option<&str>, Vec<StatementId>> = BTreeMap::new();
    for &s in &entity.statements {
        groups
            .entry(dataset.statement_attribute(s))
            .or_default()
            .push(s);
    }
    groups.into_iter().collect()
}

/// Rescales one group's raw scores so the top score becomes `top`,
/// preserving ratios — the per-group analogue of
/// [`FusionResult::from_entity_shares`]. No-op when every score is ≤ 0.
pub(crate) fn calibrate_group(scores: &mut [f64], top: f64) {
    let max = scores.iter().copied().fold(0.0f64, f64::max);
    if max > 0.0 {
        let scale = top / max;
        for s in scores {
            *s *= scale;
        }
    }
}

/// Weighted vote share of each group member among the sources claiming
/// *inside the group*: `score(s) = Σ w(supporters of s) / Σ w(group
/// voters)`. The shared scoring core of all four voting-family resolvers
/// (they differ only in their weights).
pub(crate) fn weighted_group_vote(
    dataset: &Dataset,
    group: &[StatementId],
    weights: &[f64],
) -> Vec<f64> {
    let voters: BTreeSet<u32> = group
        .iter()
        .flat_map(|&s| dataset.supporters(s).iter().map(|src| src.0))
        .collect();
    let total: f64 = voters.iter().map(|&v| weights[v as usize]).sum();
    if total <= 0.0 {
        return vec![0.0; group.len()];
    }
    group
        .iter()
        .map(|&s| {
            dataset
                .supporters(s)
                .iter()
                .map(|src| weights[src.0 as usize])
                .sum::<f64>()
                / total
        })
        .collect()
}

/// Lifts a [`ConflictResolver`] into a [`FusionMethod`] by applying it to
/// every attribute group of every entity. See the module docs.
#[derive(Debug, Clone)]
pub struct ResolverMethod<R> {
    resolver: R,
}

impl<R: ConflictResolver> ResolverMethod<R> {
    /// Wraps `resolver`.
    pub fn new(resolver: R) -> ResolverMethod<R> {
        ResolverMethod { resolver }
    }

    /// Runs the resolver over every attribute group, returning the
    /// calibrated per-statement scores and the resolver's source weights.
    fn scores(&self, dataset: &Dataset) -> Result<(Vec<f64>, Vec<f64>), FusionError> {
        if dataset.claims().is_empty() {
            return Err(FusionError::NoClaims);
        }
        let weights = self.resolver.source_weights(dataset);
        let mut probs = vec![0.0; dataset.statements().len()];
        for entity in dataset.entities() {
            for (_, group) in attribute_groups(dataset, entity) {
                let mut scores = self.resolver.resolve(dataset, &group, &weights);
                calibrate_group(&mut scores, 0.9);
                for (&s, score) in group.iter().zip(scores) {
                    probs[s.0 as usize] = score;
                }
            }
        }
        Ok((probs, weights))
    }
}

impl<R: ConflictResolver> FusionMethod for ResolverMethod<R> {
    fn name(&self) -> &'static str {
        self.resolver.name()
    }

    fn fuse(&self, dataset: &Dataset) -> Result<FusionResult, FusionError> {
        let (probs, _) = self.scores(dataset)?;
        Ok(FusionResult::new(self.name(), probs))
    }

    fn fuse_with_provenance(
        &self,
        dataset: &Dataset,
    ) -> Result<(FusionResult, ProvenanceLedger), FusionError> {
        let (probs, weights) = self.scores(dataset)?;
        let result = FusionResult::new(self.name(), probs);
        let ledger =
            ProvenanceLedger::from_source_weights(dataset, self.name(), &weights, &result, None);
        Ok((result, ledger))
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::model::DatasetBuilder;

    /// A two-book dataset whose statements span three typed attributes
    /// (author list, numeric page count, publication date) plus the default
    /// attribute, claimed by four sources of differing quality.
    pub fn attributed_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let good = b.add_source("good.com");
        let okay = b.add_source("okay.net");
        let noisy = b.add_source("noisy.org");
        let lone = b.add_source("lone.io");
        let book0 = b.add_entity("Book Zero");
        let book1 = b.add_entity("Book One");

        // Default attribute: author lists.
        let a0 = b.add_statement(book0, "Ada Lovelace; Alan Turing").unwrap();
        let a1 = b.add_statement(book0, "Grace Hopper").unwrap();
        // pages: numeric.
        let p0 = b.add_attributed_statement(book0, "pages", "320").unwrap();
        let p1 = b.add_attributed_statement(book0, "pages", "318").unwrap();
        let p2 = b.add_attributed_statement(book0, "pages", "1200").unwrap();
        // published: dates.
        let d0 = b
            .add_attributed_statement(book0, "published", "2001-05-20")
            .unwrap();
        let d1 = b
            .add_attributed_statement(book0, "published", "1999-01-02")
            .unwrap();
        // Book 1: authors only.
        let a2 = b.add_statement(book1, "Edsger Dijkstra").unwrap();
        let a3 = b.add_statement(book1, "Edsgar Dykstra").unwrap();

        for (src, stmts) in [
            (good, vec![a0, p0, d0, a2]),
            (okay, vec![a0, p1, d0, a2]),
            (noisy, vec![a1, p2, d1, a3]),
            (lone, vec![a0, p0, d1]),
        ] {
            for s in stmts {
                b.add_claim(src, s).unwrap();
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::attributed_dataset;
    use super::*;
    use crate::model::DatasetBuilder;

    #[test]
    fn attribute_groups_are_ordered_and_complete() {
        let d = attributed_dataset();
        let groups = attribute_groups(&d, &d.entities()[0]);
        let names: Vec<Option<&str>> = groups.iter().map(|(a, _)| *a).collect();
        assert_eq!(names, vec![None, Some("pages"), Some("published")]);
        let total: usize = groups.iter().map(|(_, g)| g.len()).sum();
        assert_eq!(total, d.entities()[0].statements.len());
        // Statements stay in id order within each group.
        for (_, g) in &groups {
            assert!(g.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn calibration_scales_top_to_target() {
        let mut scores = vec![0.2, 0.4, 0.1];
        calibrate_group(&mut scores, 0.9);
        assert!((scores[1] - 0.9).abs() < 1e-12);
        assert!((scores[0] - 0.45).abs() < 1e-12);
        let mut zeros = vec![0.0, 0.0];
        calibrate_group(&mut zeros, 0.9);
        assert_eq!(zeros, vec![0.0, 0.0]);
    }

    #[test]
    fn resolver_methods_reject_empty_claims() {
        let mut b = DatasetBuilder::new();
        let e = b.add_entity("x");
        b.add_statement(e, "v").unwrap();
        let d = b.build();
        assert_eq!(
            ResolverMethod::new(Voting).fuse(&d).unwrap_err(),
            FusionError::NoClaims
        );
    }

    #[test]
    fn group_vote_normalises_within_group() {
        let d = attributed_dataset();
        let weights = vec![1.0; d.sources().len()];
        // pages group of book 0: ids 2, 3, 4 with supporters {good, lone},
        // {okay}, {noisy} — four voters.
        let group = vec![StatementId(2), StatementId(3), StatementId(4)];
        let scores = weighted_group_vote(&d, &group, &weights);
        assert!((scores[0] - 0.5).abs() < 1e-12);
        assert!((scores[1] - 0.25).abs() < 1e-12);
        assert!((scores[2] - 0.25).abs() < 1e-12);
    }
}
