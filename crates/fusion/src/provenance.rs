//! Per-statement provenance: which sources won each fact and why.
//!
//! Every fusion run can emit a [`ProvenanceLedger`] next to its
//! [`FusionResult`](crate::FusionResult): the method's final per-source
//! weights (CRH weights, TruthFinder trust, ACCU accuracy, resolver
//! preference weights — uniform for weightless methods), the iteration at
//! which the method converged where applicable, and one
//! [`StatementProvenance`] record per statement naming the sources that
//! asserted it and their contribution weights. Downstream consumers (the
//! `fuse --report` JSON, trust learning over real crowds) get "which source
//! won each fact and why" without re-running the method.
//!
//! Determinism: every collection is a `BTreeMap` or a sorted `Vec`, so the
//! ledger's serialized form is byte-stable across runs and thread counts
//! (fusion itself is single-threaded and deterministic).

use crate::model::{Dataset, StatementId};
use crate::result::FusionResult;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why one statement ended up with its probability: the resolver or method
/// that scored it, the sources asserting it, and each source's weight in the
/// method's final iterate.
///
/// Contribution maps are keyed by source *name* (datasets are expected to
/// have unique source names; on a collision the higher-id source wins the
/// key).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatementProvenance {
    /// The method or per-attribute resolver that scored this statement
    /// (differs from the ledger's method inside a composite strategy).
    pub resolver: String,
    /// Whether the statement's final probability clears the 0.5 decision
    /// threshold.
    pub predicted_true: bool,
    /// Names of the sources backing a predicted-true statement, sorted.
    /// Empty when the statement is predicted false (its supporters lost)
    /// or unclaimed.
    pub winning_sources: Vec<String>,
    /// Weight of every asserting source in the method's final iterate,
    /// keyed by source name.
    pub contributions: BTreeMap<String, f64>,
}

/// The full provenance of one fusion run. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProvenanceLedger {
    /// Name of the method that produced the run.
    pub method: String,
    /// Iteration at which the method converged (`None` for non-iterative
    /// methods, or when the method hit its iteration cap — the paired
    /// result then carries the last iterate).
    pub iterations: Option<usize>,
    /// The method's final per-source weights, keyed by source name
    /// (uniform `1.0` for weightless methods like majority voting).
    pub source_weights: BTreeMap<String, f64>,
    /// One provenance record per statement, keyed by statement id.
    pub statements: BTreeMap<u32, StatementProvenance>,
}

impl ProvenanceLedger {
    /// Builds the ledger for a finished run from the method's final
    /// per-source weights (indexed by [`crate::SourceId`]).
    pub fn from_source_weights(
        dataset: &Dataset,
        method: &str,
        weights: &[f64],
        result: &FusionResult,
        iterations: Option<usize>,
    ) -> ProvenanceLedger {
        let mut ledger = ProvenanceLedger {
            method: method.to_string(),
            iterations,
            source_weights: dataset
                .sources()
                .iter()
                .map(|s| (s.name.clone(), weights[s.id.0 as usize]))
                .collect(),
            statements: BTreeMap::new(),
        };
        for statement in dataset.statements() {
            let record = statement_record(dataset, method, weights, result, statement.id);
            ledger.statements.insert(statement.id.0, record);
        }
        ledger
    }

    /// Builds a ledger with uniform source weights — the default for methods
    /// that do not estimate per-source reliability.
    pub fn uniform(dataset: &Dataset, method: &str, result: &FusionResult) -> ProvenanceLedger {
        let weights = vec![1.0; dataset.sources().len()];
        ProvenanceLedger::from_source_weights(dataset, method, &weights, result, None)
    }

    /// Number of statements whose supporters won (predicted true).
    pub fn predicted_true(&self) -> usize {
        self.statements
            .values()
            .filter(|s| s.predicted_true)
            .count()
    }
}

/// Builds one statement's provenance record from per-source-index weights.
pub(crate) fn statement_record(
    dataset: &Dataset,
    resolver: &str,
    weights: &[f64],
    result: &FusionResult,
    id: StatementId,
) -> StatementProvenance {
    let contributions: BTreeMap<String, f64> = dataset
        .supporters(id)
        .iter()
        .map(|s| {
            (
                dataset.sources()[s.0 as usize].name.clone(),
                weights[s.0 as usize],
            )
        })
        .collect();
    let predicted_true = result.prob(id) >= 0.5;
    let winning_sources = if predicted_true {
        contributions.keys().cloned().collect()
    } else {
        Vec::new()
    };
    StatementProvenance {
        resolver: resolver.to_string(),
        predicted_true,
        winning_sources,
        contributions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::two_book_dataset;
    use crate::result::{FusionMethod, UniformPrior};

    #[test]
    fn uniform_ledger_records_every_statement() {
        let d = two_book_dataset();
        let r = UniformPrior.fuse(&d).unwrap();
        let ledger = ProvenanceLedger::uniform(&d, "uniform", &r);
        assert_eq!(ledger.statements.len(), d.statements().len());
        assert_eq!(ledger.source_weights.len(), d.sources().len());
        assert!(ledger.source_weights.values().all(|&w| w == 1.0));
        assert_eq!(ledger.iterations, None);
        // p = 0.5 everywhere → every statement predicted true, winners =
        // supporters.
        assert_eq!(ledger.predicted_true(), d.statements().len());
        let s3 = &ledger.statements[&3];
        assert_eq!(s3.resolver, "uniform");
        assert_eq!(s3.winning_sources, vec!["goodbooks.com", "noisy.net"]);
        assert_eq!(s3.contributions.len(), 2);
    }

    #[test]
    fn losing_statements_have_no_winning_sources() {
        let d = two_book_dataset();
        let r = FusionResult::new("m", vec![0.9, 0.9, 0.1, 0.9, 0.1]);
        let ledger = ProvenanceLedger::uniform(&d, "m", &r);
        assert!(!ledger.statements[&2].predicted_true);
        assert!(ledger.statements[&2].winning_sources.is_empty());
        // The losing supporters are still on record with their weights.
        assert_eq!(ledger.statements[&2].contributions.len(), 1);
        assert_eq!(ledger.predicted_true(), 3);
    }

    #[test]
    fn ledger_json_is_byte_stable() {
        let d = two_book_dataset();
        let r = UniformPrior.fuse(&d).unwrap();
        let a = serde_json::to_string(&ProvenanceLedger::uniform(&d, "uniform", &r)).unwrap();
        let b = serde_json::to_string(&ProvenanceLedger::uniform(&d, "uniform", &r)).unwrap();
        assert_eq!(a, b);
        let back: ProvenanceLedger = serde_json::from_str(&a).unwrap();
        assert_eq!(back, ProvenanceLedger::uniform(&d, "uniform", &r));
    }
}
