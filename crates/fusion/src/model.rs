//! The claims data model: entities, statements, sources and claims.
//!
//! This mirrors the structure of the *Book* dataset used in the paper's
//! evaluation (Section V-A): each **entity** (a book) has a set of candidate
//! **statements** (author-list strings); each **source** (a bookstore
//! website) claims at most a few statements per entity. Facts are triples
//! `{book, complete full name author list, statement}` and more than one
//! statement per entity can be true (order/format variants).

use crate::error::FusionError;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Identifier of a data source (a website in the Book dataset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SourceId(pub u32);

/// Identifier of an entity (a book).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntityId(pub u32);

/// Global identifier of a statement (a candidate value for some entity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StatementId(pub u32);

/// A data source.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Source {
    /// The source's id (its index in [`Dataset::sources`]).
    pub id: SourceId,
    /// Human-readable name (e.g. a website domain).
    pub name: String,
}

/// An entity about which sources make conflicting claims.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entity {
    /// The entity's id (its index in [`Dataset::entities`]).
    pub id: EntityId,
    /// Human-readable name (e.g. a book title or ISBN).
    pub name: String,
    /// Statements proposed for this entity, in statement-id order.
    pub statements: Vec<StatementId>,
}

/// A candidate value statement for an entity. In fact-triple form this is
/// `{entity, attribute, text}`. Historically the attribute was implicit (one
/// attribute per dataset, e.g. "complete full name author list"); statements
/// may now carry an explicit attribute so per-attribute conflict resolvers
/// (`resolvers`) can route them. `None` means the dataset's default
/// attribute, and old serialized datasets (no `attribute` key) load as
/// `None`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Statement {
    /// The statement's global id (its index in [`Dataset::statements`]).
    pub id: StatementId,
    /// The entity this statement is about.
    pub entity: EntityId,
    /// The claimed value (e.g. an author-list string).
    pub text: String,
    /// The attribute this statement proposes a value for (`None` = the
    /// dataset's single implicit attribute).
    pub attribute: Option<String>,
}

/// A source asserting a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Claim {
    /// The asserting source.
    pub source: SourceId,
    /// The asserted statement.
    pub statement: StatementId,
}

/// An immutable, validated claims dataset.
///
/// Construct through [`DatasetBuilder`], which guarantees referential
/// integrity (every claim references an existing source and statement, every
/// statement an existing entity) and the absence of duplicate claims.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    sources: Vec<Source>,
    entities: Vec<Entity>,
    statements: Vec<Statement>,
    claims: Vec<Claim>,
    /// claims grouped by statement: `claims_by_statement[s]` = sources
    /// asserting statement `s`.
    claims_by_statement: Vec<Vec<SourceId>>,
    /// statement ids grouped by entity for fast per-entity iteration.
    sources_by_entity: Vec<Vec<SourceId>>,
}

impl Dataset {
    /// All sources, indexed by [`SourceId`].
    pub fn sources(&self) -> &[Source] {
        &self.sources
    }

    /// All entities, indexed by [`EntityId`].
    pub fn entities(&self) -> &[Entity] {
        &self.entities
    }

    /// All statements, indexed by [`StatementId`].
    pub fn statements(&self) -> &[Statement] {
        &self.statements
    }

    /// All claims in insertion order.
    pub fn claims(&self) -> &[Claim] {
        &self.claims
    }

    /// The statements proposed for `entity`.
    pub fn statements_of(&self, entity: EntityId) -> &[StatementId] {
        &self.entities[entity.0 as usize].statements
    }

    /// The sources asserting `statement`.
    pub fn supporters(&self, statement: StatementId) -> &[SourceId] {
        &self.claims_by_statement[statement.0 as usize]
    }

    /// The distinct sources making any claim about `entity`, sorted.
    pub fn sources_on(&self, entity: EntityId) -> &[SourceId] {
        &self.sources_by_entity[entity.0 as usize]
    }

    /// Number of statements a source asserts, per source.
    pub fn claims_per_source(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.sources.len()];
        for c in &self.claims {
            counts[c.source.0 as usize] += 1;
        }
        counts
    }

    /// Looks up a statement's text.
    pub fn statement_text(&self, id: StatementId) -> &str {
        &self.statements[id.0 as usize].text
    }

    /// Looks up a statement's attribute (`None` = the dataset's default
    /// attribute).
    pub fn statement_attribute(&self, id: StatementId) -> Option<&str> {
        self.statements[id.0 as usize].attribute.as_deref()
    }

    /// Looks up the entity a statement belongs to.
    pub fn statement_entity(&self, id: StatementId) -> EntityId {
        self.statements[id.0 as usize].entity
    }

    /// Entities with at least `min` statements (the paper restricts some
    /// experiments to books with many facts, e.g. "> 20 facts" in Table V).
    pub fn entities_with_min_statements(&self, min: usize) -> Vec<EntityId> {
        self.entities
            .iter()
            .filter(|e| e.statements.len() >= min)
            .map(|e| e.id)
            .collect()
    }
}

/// Incremental, validating builder for [`Dataset`].
#[derive(Debug, Default, Clone)]
pub struct DatasetBuilder {
    sources: Vec<Source>,
    entities: Vec<Entity>,
    statements: Vec<Statement>,
    claims: Vec<Claim>,
    // analyze: allow(hash-iter) — membership-only duplicate guard, never iterated.
    seen_claims: HashSet<(u32, u32)>,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> DatasetBuilder {
        DatasetBuilder::default()
    }

    /// Registers a source and returns its id.
    pub fn add_source(&mut self, name: impl Into<String>) -> SourceId {
        let id = SourceId(self.sources.len() as u32);
        self.sources.push(Source {
            id,
            name: name.into(),
        });
        id
    }

    /// Registers an entity and returns its id.
    pub fn add_entity(&mut self, name: impl Into<String>) -> EntityId {
        let id = EntityId(self.entities.len() as u32);
        self.entities.push(Entity {
            id,
            name: name.into(),
            statements: Vec::new(),
        });
        id
    }

    /// Registers a statement for an entity (default attribute) and returns
    /// its id.
    pub fn add_statement(
        &mut self,
        entity: EntityId,
        text: impl Into<String>,
    ) -> Result<StatementId, FusionError> {
        self.push_statement(entity, None, text.into())
    }

    /// Registers a statement for an explicit attribute of an entity and
    /// returns its id. Per-attribute resolvers (`crate::resolvers`) group
    /// statements by this attribute name.
    pub fn add_attributed_statement(
        &mut self,
        entity: EntityId,
        attribute: impl Into<String>,
        text: impl Into<String>,
    ) -> Result<StatementId, FusionError> {
        self.push_statement(entity, Some(attribute.into()), text.into())
    }

    fn push_statement(
        &mut self,
        entity: EntityId,
        attribute: Option<String>,
        text: String,
    ) -> Result<StatementId, FusionError> {
        let Some(e) = self.entities.get_mut(entity.0 as usize) else {
            return Err(FusionError::UnknownEntity(entity.0));
        };
        let id = StatementId(self.statements.len() as u32);
        e.statements.push(id);
        self.statements.push(Statement {
            id,
            entity,
            text,
            attribute,
        });
        Ok(id)
    }

    /// Records that `source` asserts `statement`.
    pub fn add_claim(
        &mut self,
        source: SourceId,
        statement: StatementId,
    ) -> Result<(), FusionError> {
        if source.0 as usize >= self.sources.len() {
            return Err(FusionError::UnknownSource(source.0));
        }
        if statement.0 as usize >= self.statements.len() {
            return Err(FusionError::UnknownStatement(statement.0));
        }
        if !self.seen_claims.insert((source.0, statement.0)) {
            return Err(FusionError::DuplicateClaim {
                source: source.0,
                statement: statement.0,
            });
        }
        self.claims.push(Claim { source, statement });
        Ok(())
    }

    /// Finalises the dataset, computing the grouped indexes.
    pub fn build(self) -> Dataset {
        let mut claims_by_statement = vec![Vec::new(); self.statements.len()];
        let mut sources_by_entity: Vec<Vec<SourceId>> = vec![Vec::new(); self.entities.len()];
        for c in &self.claims {
            claims_by_statement[c.statement.0 as usize].push(c.source);
            let entity = self.statements[c.statement.0 as usize].entity;
            sources_by_entity[entity.0 as usize].push(c.source);
        }
        for sources in &mut claims_by_statement {
            sources.sort_unstable();
        }
        for sources in &mut sources_by_entity {
            sources.sort_unstable();
            sources.dedup();
        }
        Dataset {
            sources: self.sources,
            entities: self.entities,
            statements: self.statements,
            claims: self.claims,
            claims_by_statement,
            sources_by_entity,
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A small two-book dataset with three sources of differing quality.
    ///
    /// Book 0 statements: s0 (true variant A), s1 (true variant B, reorder),
    /// s2 (false). Book 1 statements: s3 (true), s4 (false).
    pub fn two_book_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let good = b.add_source("goodbooks.com");
        let noisy = b.add_source("noisy.net");
        let bad = b.add_source("badinfo.org");
        let book0 = b.add_entity("Book Zero");
        let book1 = b.add_entity("Book One");
        let s0 = b.add_statement(book0, "Ada Lovelace; Alan Turing").unwrap();
        let s1 = b.add_statement(book0, "Alan Turing; Ada Lovelace").unwrap();
        let s2 = b.add_statement(book0, "Grace Hopper").unwrap();
        let s3 = b.add_statement(book1, "Edsger Dijkstra").unwrap();
        let s4 = b.add_statement(book1, "Edsgar Dykstra").unwrap();
        b.add_claim(good, s0).unwrap();
        b.add_claim(good, s3).unwrap();
        b.add_claim(noisy, s1).unwrap();
        b.add_claim(noisy, s3).unwrap();
        b.add_claim(bad, s2).unwrap();
        b.add_claim(bad, s4).unwrap();
        b.build()
    }

    /// Gold labels for [`two_book_dataset`]: s0, s1, s3 true.
    pub fn two_book_gold() -> Vec<bool> {
        vec![true, true, false, true, false]
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::two_book_dataset;
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = DatasetBuilder::new();
        assert_eq!(b.add_source("a"), SourceId(0));
        assert_eq!(b.add_source("b"), SourceId(1));
        let e = b.add_entity("x");
        assert_eq!(e, EntityId(0));
        assert_eq!(b.add_statement(e, "v1").unwrap(), StatementId(0));
        assert_eq!(b.add_statement(e, "v2").unwrap(), StatementId(1));
    }

    #[test]
    fn builder_rejects_dangling_references() {
        let mut b = DatasetBuilder::new();
        let e = b.add_entity("x");
        assert_eq!(
            b.add_statement(EntityId(5), "v"),
            Err(FusionError::UnknownEntity(5))
        );
        let s = b.add_statement(e, "v").unwrap();
        assert_eq!(
            b.add_claim(SourceId(0), s),
            Err(FusionError::UnknownSource(0))
        );
        let src = b.add_source("s");
        assert_eq!(
            b.add_claim(src, StatementId(7)),
            Err(FusionError::UnknownStatement(7))
        );
    }

    #[test]
    fn builder_rejects_duplicate_claims() {
        let mut b = DatasetBuilder::new();
        let src = b.add_source("s");
        let e = b.add_entity("x");
        let s = b.add_statement(e, "v").unwrap();
        b.add_claim(src, s).unwrap();
        assert_eq!(
            b.add_claim(src, s),
            Err(FusionError::DuplicateClaim {
                source: 0,
                statement: 0
            })
        );
    }

    #[test]
    fn dataset_indexes_are_consistent() {
        let d = two_book_dataset();
        assert_eq!(d.sources().len(), 3);
        assert_eq!(d.entities().len(), 2);
        assert_eq!(d.statements().len(), 5);
        assert_eq!(d.claims().len(), 6);
        assert_eq!(d.statements_of(EntityId(0)).len(), 3);
        assert_eq!(d.supporters(StatementId(3)).len(), 2);
        assert_eq!(d.sources_on(EntityId(0)).len(), 3);
        assert_eq!(d.claims_per_source(), vec![2, 2, 2]);
        assert_eq!(d.statement_entity(StatementId(4)), EntityId(1));
        assert_eq!(d.statement_text(StatementId(2)), "Grace Hopper");
    }

    #[test]
    fn entities_with_min_statements_filters() {
        let d = two_book_dataset();
        assert_eq!(d.entities_with_min_statements(3), vec![EntityId(0)]);
        assert_eq!(d.entities_with_min_statements(2).len(), 2);
        assert!(d.entities_with_min_statements(4).is_empty());
    }

    #[test]
    fn attributed_statements_round_trip() {
        let mut b = DatasetBuilder::new();
        let e = b.add_entity("x");
        let plain = b.add_statement(e, "v").unwrap();
        let attr = b.add_attributed_statement(e, "pages", "320").unwrap();
        assert_eq!(
            b.add_attributed_statement(EntityId(9), "pages", "1"),
            Err(FusionError::UnknownEntity(9))
        );
        let d = b.build();
        assert_eq!(d.statement_attribute(plain), None);
        assert_eq!(d.statement_attribute(attr), Some("pages"));
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn dataset_serde_roundtrip() {
        let d = two_book_dataset();
        let json = serde_json::to_string(&d).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
