//! The JSON fusion report: dataset shape, per-attribute coverage, conflict
//! statistics and full provenance for one fusion run.
//!
//! Reports serialize deterministically (`BTreeMap` keys, no clocks, no
//! environment reads), so the same dataset and method produce byte-identical
//! JSON across runs and thread counts — CI diffs a freshly generated report
//! against a committed fixture.

use crate::model::Dataset;
use crate::provenance::ProvenanceLedger;
use crate::result::FusionResult;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Key under which statements without an explicit attribute are reported.
pub const DEFAULT_ATTRIBUTE: &str = "(default)";

/// Coverage of one attribute across the dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeCoverage {
    /// Entities with at least one statement for this attribute.
    pub entities: usize,
    /// Statements proposing a value for this attribute.
    pub statements: usize,
    /// Claims on those statements.
    pub claims: usize,
    /// Entities where sources propose ≥ 2 conflicting values for this
    /// attribute.
    pub conflicted_entities: usize,
    /// Fraction of all entities covered by this attribute.
    pub coverage: f64,
}

/// Conflict statistics over the whole dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConflictStats {
    /// Entities with ≥ 2 candidate statements (any attribute).
    pub conflicted_entities: usize,
    /// Largest statement count of any entity.
    pub max_statements_per_entity: usize,
    /// Mean statement count per entity.
    pub mean_statements_per_entity: f64,
    /// Statements whose final probability clears 0.5.
    pub predicted_true: usize,
}

/// The full fusion report. See the module docs for determinism guarantees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionReport {
    /// Report schema tag, bumped on breaking shape changes.
    pub schema: String,
    /// Name of the method that produced the run.
    pub method: String,
    /// Number of sources in the dataset.
    pub sources: usize,
    /// Number of entities.
    pub entities: usize,
    /// Number of candidate statements.
    pub statements: usize,
    /// Number of claims.
    pub claims: usize,
    /// Claim density: `claims / (sources × entities)` — the fraction of
    /// source–entity pairs where the source asserts something.
    pub density: f64,
    /// Statement accuracy against a gold standard, when the caller has one.
    pub accuracy: Option<f64>,
    /// Per-attribute coverage, keyed by attribute name
    /// ([`DEFAULT_ATTRIBUTE`] for untyped statements).
    pub attributes: BTreeMap<String, AttributeCoverage>,
    /// Dataset-wide conflict statistics.
    pub conflicts: ConflictStats,
    /// Which sources won each statement and why.
    pub provenance: ProvenanceLedger,
}

impl FusionReport {
    /// Builds the report for a finished run.
    pub fn generate(
        dataset: &Dataset,
        result: &FusionResult,
        provenance: ProvenanceLedger,
    ) -> FusionReport {
        let n_entities = dataset.entities().len();
        let mut attributes: BTreeMap<String, AttributeCoverage> = BTreeMap::new();
        for entity in dataset.entities() {
            // Per-entity statement count by attribute, to spot conflicts.
            let mut per_attr: BTreeMap<&str, usize> = BTreeMap::new();
            for &s in &entity.statements {
                let attr = dataset.statement_attribute(s).unwrap_or(DEFAULT_ATTRIBUTE);
                *per_attr.entry(attr).or_insert(0) += 1;
                let cov = attributes
                    .entry(attr.to_string())
                    .or_insert(AttributeCoverage {
                        entities: 0,
                        statements: 0,
                        claims: 0,
                        conflicted_entities: 0,
                        coverage: 0.0,
                    });
                cov.statements += 1;
                cov.claims += dataset.supporters(s).len();
            }
            for (attr, count) in per_attr {
                let cov = attributes.get_mut(attr).expect("attribute seen above");
                cov.entities += 1;
                if count >= 2 {
                    cov.conflicted_entities += 1;
                }
            }
        }
        for cov in attributes.values_mut() {
            cov.coverage = if n_entities > 0 {
                cov.entities as f64 / n_entities as f64
            } else {
                0.0
            };
        }

        let statement_counts: Vec<usize> = dataset
            .entities()
            .iter()
            .map(|e| e.statements.len())
            .collect();
        let conflicts = ConflictStats {
            conflicted_entities: statement_counts.iter().filter(|&&n| n >= 2).count(),
            max_statements_per_entity: statement_counts.iter().copied().max().unwrap_or(0),
            mean_statements_per_entity: if n_entities > 0 {
                statement_counts.iter().sum::<usize>() as f64 / n_entities as f64
            } else {
                0.0
            },
            predicted_true: provenance.predicted_true(),
        };

        let pairs = dataset.sources().len() * n_entities;
        FusionReport {
            schema: "crowdfusion.fusion-report/v1".to_string(),
            method: result.method().to_string(),
            sources: dataset.sources().len(),
            entities: n_entities,
            statements: dataset.statements().len(),
            claims: dataset.claims().len(),
            density: if pairs > 0 {
                dataset.claims().len() as f64 / pairs as f64
            } else {
                0.0
            },
            accuracy: None,
            attributes,
            conflicts,
            provenance,
        }
    }

    /// Pretty-printed JSON with a trailing newline — the exact bytes
    /// `fuse --report` writes.
    pub fn to_json_pretty(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::{two_book_dataset, two_book_gold};
    use crate::result::FusionMethod;

    #[test]
    fn report_counts_the_toy_dataset() {
        let d = two_book_dataset();
        let (r, ledger) = crate::majority::MajorityVote
            .fuse_with_provenance(&d)
            .unwrap();
        let mut report = FusionReport::generate(&d, &r, ledger);
        report.accuracy = Some(r.accuracy_against(&two_book_gold()));
        assert_eq!(report.method, "majority");
        assert_eq!(report.sources, 3);
        assert_eq!(report.entities, 2);
        assert_eq!(report.statements, 5);
        assert_eq!(report.claims, 6);
        assert!((report.density - 1.0).abs() < 1e-12);
        assert_eq!(report.conflicts.conflicted_entities, 2);
        assert_eq!(report.conflicts.max_statements_per_entity, 3);
        let default_attr = &report.attributes[DEFAULT_ATTRIBUTE];
        assert_eq!(default_attr.statements, 5);
        assert_eq!(default_attr.entities, 2);
        assert!((default_attr.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn typed_attributes_get_their_own_rows() {
        let d = crate::resolvers::testutil::attributed_dataset();
        let (r, ledger) = crate::resolvers::DataFusionStrategy::standard()
            .fuse_with_provenance(&d)
            .unwrap();
        let report = FusionReport::generate(&d, &r, ledger);
        assert_eq!(report.attributes.len(), 3);
        let pages = &report.attributes["pages"];
        assert_eq!(pages.entities, 1);
        assert_eq!(pages.statements, 3);
        assert_eq!(pages.conflicted_entities, 1);
        assert!((pages.coverage - 0.5).abs() < 1e-12);
        // Only book 0 carries dates; book 1 is authors-only.
        assert_eq!(report.attributes["published"].entities, 1);
    }

    #[test]
    fn report_json_round_trips_byte_stably() {
        let d = two_book_dataset();
        let (r, ledger) = crate::crh::Crh::default().fuse_with_provenance(&d).unwrap();
        let report = FusionReport::generate(&d, &r, ledger.clone());
        let json = report.to_json_pretty();
        assert_eq!(
            json,
            FusionReport::generate(&d, &r, ledger).to_json_pretty()
        );
        let back: FusionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
