//! Error type for dataset construction and fusion methods.

use std::fmt;

/// Errors produced while building datasets or running fusion methods.
#[derive(Debug, Clone, PartialEq)]
pub enum FusionError {
    /// A referenced source id does not exist in the dataset.
    UnknownSource(u32),
    /// A referenced entity id does not exist in the dataset.
    UnknownEntity(u32),
    /// A referenced statement id does not exist in the dataset.
    UnknownStatement(u32),
    /// The dataset contains no claims, so no method can estimate anything.
    NoClaims,
    /// A duplicate claim (same source supporting the same statement).
    DuplicateClaim {
        /// The claiming source.
        source: u32,
        /// The statement claimed twice.
        statement: u32,
    },
    /// An algorithm parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The iterative method failed to converge within its iteration cap.
    /// Carries the final residual; callers may still treat the last iterate
    /// as usable.
    NoConvergence {
        /// Iterations executed.
        iterations: usize,
        /// Final residual (max parameter change in the last iteration).
        residual: f64,
    },
    /// A method name was looked up in a [`crate::registry::StrategyRegistry`]
    /// that has no builder registered under it.
    UnknownMethod {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, in the registry's deterministic order.
        registered: Vec<&'static str>,
    },
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::UnknownSource(id) => write!(f, "unknown source id {id}"),
            FusionError::UnknownEntity(id) => write!(f, "unknown entity id {id}"),
            FusionError::UnknownStatement(id) => write!(f, "unknown statement id {id}"),
            FusionError::NoClaims => write!(f, "dataset contains no claims"),
            FusionError::DuplicateClaim { source, statement } => {
                write!(f, "source {source} claims statement {statement} twice")
            }
            FusionError::InvalidParameter { name, value } => {
                write!(f, "invalid parameter {name} = {value}")
            }
            FusionError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.2e})"
            ),
            FusionError::UnknownMethod { name, registered } => write!(
                f,
                "unknown fusion method '{name}' (registered: {})",
                registered.join(", ")
            ),
        }
    }
}

impl std::error::Error for FusionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        assert!(FusionError::UnknownSource(3).to_string().contains('3'));
        assert!(FusionError::DuplicateClaim {
            source: 1,
            statement: 9
        }
        .to_string()
        .contains('9'));
        assert!(FusionError::InvalidParameter {
            name: "damping",
            value: -0.5
        }
        .to_string()
        .contains("damping"));
    }

    #[test]
    fn unknown_method_lists_registered_names() {
        let e = FusionError::UnknownMethod {
            name: "lda".into(),
            registered: vec!["crh", "majority"],
        };
        let msg = e.to_string();
        assert!(msg.contains("unknown fusion method"));
        assert!(msg.contains("lda"));
        assert!(msg.contains("crh, majority"));
    }
}
