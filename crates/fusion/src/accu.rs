//! A Bayesian ACCU-style voter, after Dong, Berti-Equille & Srivastava
//! (VLDB 2009), without copying detection.
//!
//! Each source has an accuracy `A_s`; assuming `n` uniformly-likely false
//! values per entity, a source asserting value `v` multiplies `v`'s posterior
//! odds by `n·A_s / (1 − A_s)`. Per entity the value scores are
//! soft-maxed into a posterior; source accuracies are re-estimated as the
//! mean posterior of their claimed values; iterate to a fixed point.

use crate::error::FusionError;
use crate::model::Dataset;
use crate::provenance::ProvenanceLedger;
use crate::result::{FusionMethod, FusionResult};

/// Configuration for the ACCU-style Bayesian voter.
#[derive(Debug, Clone)]
pub struct AccuVote {
    /// Initial source accuracy (Dong et al. use 0.8).
    pub initial_accuracy: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence threshold on the max accuracy change.
    pub tolerance: f64,
}

impl Default for AccuVote {
    fn default() -> AccuVote {
        AccuVote {
            initial_accuracy: 0.8,
            max_iters: 50,
            tolerance: 1e-6,
        }
    }
}

/// Accuracies are clamped away from {0, 1} to keep log-odds finite.
const ACC_CLAMP: f64 = 1e-3;

/// Outcome of the ACCU fixed-point iteration: per-statement posteriors plus
/// the final per-source accuracies and iteration count.
struct AccuRun {
    posterior: Vec<f64>,
    accuracy: Vec<f64>,
    iterations: usize,
}

impl AccuVote {
    /// The posterior/accuracy fixed-point iteration — the shared core of
    /// `fuse` and `fuse_with_provenance`.
    fn run(&self, dataset: &Dataset) -> Result<AccuRun, FusionError> {
        if !(0.0..1.0).contains(&self.initial_accuracy) || self.initial_accuracy <= 0.0 {
            return Err(FusionError::InvalidParameter {
                name: "initial_accuracy",
                value: self.initial_accuracy,
            });
        }
        if self.tolerance <= 0.0 {
            return Err(FusionError::InvalidParameter {
                name: "tolerance",
                value: self.tolerance,
            });
        }
        if dataset.claims().is_empty() {
            return Err(FusionError::NoClaims);
        }

        let n_sources = dataset.sources().len();
        let n_statements = dataset.statements().len();
        let mut accuracy = vec![self.initial_accuracy; n_sources];
        let mut posterior = vec![0.5f64; n_statements];
        let mut iterations = 0;

        for iter in 0..self.max_iters {
            iterations = iter + 1;
            // Value scores per entity, soft-maxed into posteriors.
            for entity in dataset.entities() {
                let stmts = &entity.statements;
                if stmts.is_empty() {
                    continue;
                }
                // n = number of alternative (false) values; at least 1.
                let n_false = (stmts.len() - 1).max(1) as f64;
                let scores: Vec<f64> = stmts
                    .iter()
                    .map(|&st| {
                        dataset
                            .supporters(st)
                            .iter()
                            .map(|s| {
                                let a = accuracy[s.0 as usize].clamp(ACC_CLAMP, 1.0 - ACC_CLAMP);
                                (n_false * a / (1.0 - a)).ln()
                            })
                            .sum()
                    })
                    .collect();
                // Numerically stable softmax.
                let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let exp: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
                let total: f64 = exp.iter().sum();
                for (st, e) in stmts.iter().zip(&exp) {
                    posterior[st.0 as usize] = e / total;
                }
            }

            // Re-estimate source accuracies.
            let mut sums = vec![0.0f64; n_sources];
            let mut counts = vec![0usize; n_sources];
            for claim in dataset.claims() {
                sums[claim.source.0 as usize] += posterior[claim.statement.0 as usize];
                counts[claim.source.0 as usize] += 1;
            }
            let mut residual = 0.0f64;
            for s in 0..n_sources {
                if counts[s] == 0 {
                    continue;
                }
                let new = (sums[s] / counts[s] as f64).clamp(ACC_CLAMP, 1.0 - ACC_CLAMP);
                residual = residual.max((new - accuracy[s]).abs());
                accuracy[s] = new;
            }
            if residual < self.tolerance {
                break;
            }
        }
        Ok(AccuRun {
            posterior,
            accuracy,
            iterations,
        })
    }
}

impl FusionMethod for AccuVote {
    fn name(&self) -> &'static str {
        "accu"
    }

    fn fuse(&self, dataset: &Dataset) -> Result<FusionResult, FusionError> {
        let run = self.run(dataset)?;
        Ok(FusionResult::new(self.name(), run.posterior))
    }

    fn fuse_with_provenance(
        &self,
        dataset: &Dataset,
    ) -> Result<(FusionResult, ProvenanceLedger), FusionError> {
        let run = self.run(dataset)?;
        let result = FusionResult::new(self.name(), run.posterior);
        let ledger = ProvenanceLedger::from_source_weights(
            dataset,
            self.name(),
            &run.accuracy,
            &result,
            Some(run.iterations),
        );
        Ok((result, ledger))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::two_book_dataset;
    use crate::model::{DatasetBuilder, StatementId};

    #[test]
    fn majority_supported_value_wins() {
        let d = two_book_dataset();
        let r = AccuVote::default().fuse(&d).unwrap();
        assert!(r.prob(StatementId(3)) > r.prob(StatementId(4)));
    }

    #[test]
    fn posteriors_per_entity_sum_to_at_most_one() {
        let d = two_book_dataset();
        // Raw (unclamped) posterior per entity sums to 1; after clamping the
        // sum can drift slightly but must stay near 1 per entity.
        let r = AccuVote::default().fuse(&d).unwrap();
        for entity in d.entities() {
            let total: f64 = entity.statements.iter().map(|s| r.prob(*s)).sum();
            assert!(total <= entity.statements.len() as f64);
            assert!(total > 0.0);
        }
    }

    #[test]
    fn consistent_source_gains_accuracy_weight() {
        // One source always agrees with the crowd of 3; another always
        // disagrees. On a final contested entity the reliable source plus
        // one ally should beat two unreliable allies.
        let mut b = DatasetBuilder::new();
        let good = b.add_source("good");
        let w1 = b.add_source("witness1");
        let w2 = b.add_source("witness2");
        let bad = b.add_source("bad");
        for i in 0..5 {
            let e = b.add_entity(format!("e{i}"));
            let t = b.add_statement(e, format!("t{i}")).unwrap();
            let f = b.add_statement(e, format!("f{i}")).unwrap();
            b.add_claim(good, t).unwrap();
            b.add_claim(w1, t).unwrap();
            b.add_claim(w2, t).unwrap();
            b.add_claim(bad, f).unwrap();
        }
        let e = b.add_entity("contested");
        let t = b.add_statement(e, "truth").unwrap();
        let f = b.add_statement(e, "lie").unwrap();
        b.add_claim(good, t).unwrap();
        b.add_claim(bad, f).unwrap();
        let r = AccuVote::default().fuse(&b.build()).unwrap();
        assert!(r.prob(t) > r.prob(f));
    }

    #[test]
    fn provenance_exposes_learned_accuracies() {
        let d = two_book_dataset();
        let (result, ledger) = AccuVote::default().fuse_with_provenance(&d).unwrap();
        assert_eq!(result, AccuVote::default().fuse(&d).unwrap());
        assert!(ledger.iterations.unwrap() >= 1);
        assert!(ledger.source_weights.values().all(|&a| a > 0.0 && a < 1.0));
    }

    #[test]
    fn parameter_validation() {
        let d = two_book_dataset();
        assert!(matches!(
            AccuVote {
                initial_accuracy: 0.0,
                ..AccuVote::default()
            }
            .fuse(&d),
            Err(FusionError::InvalidParameter { .. })
        ));
        assert!(matches!(
            AccuVote {
                tolerance: -1.0,
                ..AccuVote::default()
            }
            .fuse(&d),
            Err(FusionError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn empty_claims_rejected() {
        let mut b = DatasetBuilder::new();
        let e = b.add_entity("x");
        b.add_statement(e, "v").unwrap();
        assert_eq!(
            AccuVote::default().fuse(&b.build()).unwrap_err(),
            FusionError::NoClaims
        );
    }
}
