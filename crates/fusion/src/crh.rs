//! CRH — Conflict Resolution on Heterogeneous data (Li et al., SIGMOD 2014),
//! plus the paper's multi-truth modification.
//!
//! CRH alternates two steps until the source weights stabilise:
//!
//! 1. **Truth computation** — given source weights `w_s`, each statement's
//!    score is the weight-normalised support among the sources claiming on
//!    its entity; the entity's truth set is the statements whose score
//!    clears the entity's inclusion rule.
//! 2. **Weight assignment** — each source's loss is its disagreement with
//!    the current truth sets (0/1 loss, normalised over the claims it
//!    actually makes — the "missing value normalisation": sources are only
//!    judged on entities they cover). Weights are
//!    `w_s = −log(loss_s / Σ_s' loss_s')`, the CRH closed form for 0/1 loss.
//!
//! [`ModifiedCrh`] reproduces the initialisation the CrowdFusion paper uses
//! (Section V-A): since plain CRH "only supports single true fact", the truth
//! sets are seeded by marking the top 50 % of each book's author lists via
//! majority voting, after which CRH weight assignment / truth computation
//! run as usual with a multi-truth inclusion rule.

use crate::error::FusionError;
use crate::majority::MajorityVote;
use crate::model::Dataset;
use crate::provenance::ProvenanceLedger;
use crate::result::{FusionMethod, FusionResult};

/// Classic single-truth CRH: per entity, exactly the top-scoring statement is
/// treated as true during iteration.
#[derive(Debug, Clone)]
pub struct Crh {
    /// Maximum number of truth/weight iterations.
    pub max_iters: usize,
    /// Convergence threshold on the max absolute weight change.
    pub tolerance: f64,
}

impl Default for Crh {
    fn default() -> Crh {
        Crh {
            max_iters: 50,
            tolerance: 1e-6,
        }
    }
}

/// The paper's modified CRH for multi-truth author-list data.
#[derive(Debug, Clone)]
pub struct ModifiedCrh {
    /// Fraction of each entity's statements initially marked true by
    /// majority voting (the paper uses 0.5).
    pub top_fraction: f64,
    /// Maximum number of truth/weight iterations.
    pub max_iters: usize,
    /// Convergence threshold on the max absolute weight change.
    pub tolerance: f64,
}

impl Default for ModifiedCrh {
    fn default() -> ModifiedCrh {
        ModifiedCrh {
            top_fraction: 0.5,
            max_iters: 50,
            tolerance: 1e-6,
        }
    }
}

/// Iteration state shared by both CRH variants.
struct CrhState {
    /// Source weights, normalised to mean 1.
    weights: Vec<f64>,
    /// Current boolean truth marking per statement.
    truths: Vec<bool>,
}

/// Weighted score of every statement: the weight share of its supporters
/// among all sources claiming on its entity.
fn weighted_scores(dataset: &Dataset, weights: &[f64]) -> Vec<f64> {
    let mut scores = vec![0.0; dataset.statements().len()];
    for entity in dataset.entities() {
        let total: f64 = dataset
            .sources_on(entity.id)
            .iter()
            .map(|s| weights[s.0 as usize])
            .sum();
        if total <= 0.0 {
            continue;
        }
        for &st in &entity.statements {
            let support: f64 = dataset
                .supporters(st)
                .iter()
                .map(|s| weights[s.0 as usize])
                .sum();
            scores[st.0 as usize] = support / total;
        }
    }
    scores
}

/// CRH weight assignment with missing-value normalisation: a source's loss
/// is the fraction of its own claims that contradict the current truth
/// marking (claims on unmarked statements). Sources with no claims keep a
/// neutral weight.
fn assign_weights(dataset: &Dataset, truths: &[bool]) -> Vec<f64> {
    let n_sources = dataset.sources().len();
    let mut errors = vec![0.0f64; n_sources];
    let mut counts = vec![0usize; n_sources];
    for claim in dataset.claims() {
        let s = claim.source.0 as usize;
        counts[s] += 1;
        if !truths[claim.statement.0 as usize] {
            errors[s] += 1.0;
        }
    }
    // Normalised per-source loss in (0, 1]; ε-regularised so perfect sources
    // do not get infinite weight.
    const EPS: f64 = 1e-3;
    let losses: Vec<f64> = (0..n_sources)
        .map(|s| {
            if counts[s] == 0 {
                f64::NAN // neutral: handled below
            } else {
                (errors[s] + EPS) / (counts[s] as f64 + EPS)
            }
        })
        .collect();
    let loss_sum: f64 = losses.iter().filter(|l| l.is_finite()).sum();
    let active = losses.iter().filter(|l| l.is_finite()).count().max(1);
    let mean_loss = loss_sum / active as f64;
    let mut weights: Vec<f64> = losses
        .iter()
        .map(|&l| {
            let l = if l.is_finite() { l } else { mean_loss };
            // CRH closed form for 0/1 loss: w_s = −log(loss_s / Σ loss).
            (-((l / loss_sum.max(EPS)).ln())).max(EPS)
        })
        .collect();
    // Normalise to mean 1 so scores stay comparable across iterations.
    let mean_w = weights.iter().sum::<f64>() / weights.len().max(1) as f64;
    if mean_w > 0.0 {
        for w in &mut weights {
            *w /= mean_w;
        }
    }
    weights
}

/// Outcome of the CRH alternation: the final weighted scores plus the
/// converged source weights and the iteration count — the provenance a
/// [`ProvenanceLedger`] records.
struct CrhRun {
    scores: Vec<f64>,
    weights: Vec<f64>,
    iterations: usize,
}

/// Runs the CRH alternation from an initial truth marking. `multi_truth`
/// selects the inclusion rule used during truth computation.
fn run_crh(
    dataset: &Dataset,
    initial_truths: Vec<bool>,
    multi_truth: bool,
    max_iters: usize,
    tolerance: f64,
) -> Result<CrhRun, FusionError> {
    if dataset.claims().is_empty() {
        return Err(FusionError::NoClaims);
    }
    let mut state = CrhState {
        weights: vec![1.0; dataset.sources().len()],
        truths: initial_truths,
    };
    let mut iterations = 0;
    for iter in 0..max_iters {
        iterations = iter + 1;
        // Weight assignment from current truths.
        let new_weights = assign_weights(dataset, &state.truths);
        let residual = new_weights
            .iter()
            .zip(&state.weights)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        state.weights = new_weights;

        // Truth computation from new weights.
        let scores = weighted_scores(dataset, &state.weights);
        let mut truths = vec![false; dataset.statements().len()];
        for entity in dataset.entities() {
            if entity.statements.is_empty() {
                continue;
            }
            if multi_truth {
                // Multi-truth rule: statements scoring at least the entity
                // mean are true (at least one always survives).
                let mean = entity
                    .statements
                    .iter()
                    .map(|s| scores[s.0 as usize])
                    .sum::<f64>()
                    / entity.statements.len() as f64;
                let mut any = false;
                for &st in &entity.statements {
                    if scores[st.0 as usize] >= mean {
                        truths[st.0 as usize] = true;
                        any = true;
                    }
                }
                if !any {
                    // Numerically impossible, but keep the invariant.
                    truths[entity.statements[0].0 as usize] = true;
                }
            } else {
                // Single-truth rule: argmax score, ties toward lower id.
                let best = entity
                    .statements
                    .iter()
                    .copied()
                    .max_by(|a, b| {
                        scores[a.0 as usize]
                            .total_cmp(&scores[b.0 as usize])
                            .then(b.0.cmp(&a.0))
                    })
                    .expect("entity has statements");
                truths[best.0 as usize] = true;
            }
        }
        state.truths = truths;

        if residual < tolerance {
            break;
        }
    }
    Ok(CrhRun {
        scores: weighted_scores(dataset, &state.weights),
        weights: state.weights,
        iterations,
    })
}

impl Crh {
    /// Validates parameters, seeds the truth marking and runs the CRH
    /// alternation — the shared core of `fuse` and `fuse_with_provenance`.
    fn seeded_run(&self, dataset: &Dataset) -> Result<CrhRun, FusionError> {
        if self.tolerance <= 0.0 {
            return Err(FusionError::InvalidParameter {
                name: "tolerance",
                value: self.tolerance,
            });
        }
        // Seed truths with plain majority voting (single best per entity).
        let shares = MajorityVote::vote_shares(dataset);
        let mut truths = vec![false; dataset.statements().len()];
        for entity in dataset.entities() {
            if let Some(best) = entity
                .statements
                .iter()
                .copied()
                .max_by(|a, b| shares[a.0 as usize].total_cmp(&shares[b.0 as usize]))
            {
                truths[best.0 as usize] = true;
            }
        }
        run_crh(dataset, truths, false, self.max_iters, self.tolerance)
    }
}

impl FusionMethod for Crh {
    fn name(&self) -> &'static str {
        "crh"
    }

    fn fuse(&self, dataset: &Dataset) -> Result<FusionResult, FusionError> {
        let run = self.seeded_run(dataset)?;
        Ok(FusionResult::from_entity_shares(
            self.name(),
            run.scores,
            dataset,
            0.9,
        ))
    }

    fn fuse_with_provenance(
        &self,
        dataset: &Dataset,
    ) -> Result<(FusionResult, ProvenanceLedger), FusionError> {
        let run = self.seeded_run(dataset)?;
        let result = FusionResult::from_entity_shares(self.name(), run.scores, dataset, 0.9);
        let ledger = ProvenanceLedger::from_source_weights(
            dataset,
            self.name(),
            &run.weights,
            &result,
            Some(run.iterations),
        );
        Ok((result, ledger))
    }
}

impl ModifiedCrh {
    /// Validates parameters, marks the top fraction and runs the multi-truth
    /// CRH alternation — shared by `fuse` and `fuse_with_provenance`.
    fn seeded_run(&self, dataset: &Dataset) -> Result<CrhRun, FusionError> {
        if !(0.0..=1.0).contains(&self.top_fraction) {
            return Err(FusionError::InvalidParameter {
                name: "top_fraction",
                value: self.top_fraction,
            });
        }
        if self.tolerance <= 0.0 {
            return Err(FusionError::InvalidParameter {
                name: "tolerance",
                value: self.tolerance,
            });
        }
        // Paper Section V-A: mark top 50 % per book by majority voting …
        let truths = MajorityVote::mark_top_fraction(dataset, self.top_fraction);
        // … then apply weight assignment, missing-value normalisation and
        // truth computation from the CRH framework (multi-truth rule).
        run_crh(dataset, truths, true, self.max_iters, self.tolerance)
    }
}

impl FusionMethod for ModifiedCrh {
    fn name(&self) -> &'static str {
        "modified-crh"
    }

    fn fuse(&self, dataset: &Dataset) -> Result<FusionResult, FusionError> {
        let run = self.seeded_run(dataset)?;
        Ok(FusionResult::from_entity_shares(
            self.name(),
            run.scores,
            dataset,
            0.9,
        ))
    }

    fn fuse_with_provenance(
        &self,
        dataset: &Dataset,
    ) -> Result<(FusionResult, ProvenanceLedger), FusionError> {
        let run = self.seeded_run(dataset)?;
        let result = FusionResult::from_entity_shares(self.name(), run.scores, dataset, 0.9);
        let ledger = ProvenanceLedger::from_source_weights(
            dataset,
            self.name(),
            &run.weights,
            &result,
            Some(run.iterations),
        );
        Ok((result, ledger))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::{two_book_dataset, two_book_gold};
    use crate::model::{DatasetBuilder, StatementId};

    /// A dataset with two reliable sources (`good`, `okay`) and two
    /// unreliable ones that each invent their own false values on five
    /// uncontested entities. On the final contested entity the unreliable
    /// pair outvotes `good` (who is alone: `okay` abstains), so majority
    /// voting is wrong there while reliability-aware CRH is right.
    fn reliability_dataset() -> Dataset {
        let mut b = DatasetBuilder::new();
        let good = b.add_source("good");
        let okay = b.add_source("okay");
        let bad1 = b.add_source("bad1");
        let bad2 = b.add_source("bad2");
        for i in 0..5 {
            let e = b.add_entity(format!("e{i}"));
            let t = b.add_statement(e, format!("true-{i}")).unwrap();
            let f = b.add_statement(e, format!("false-{i}")).unwrap();
            let g = b.add_statement(e, format!("alsofalse-{i}")).unwrap();
            b.add_claim(good, t).unwrap();
            b.add_claim(okay, t).unwrap();
            b.add_claim(bad1, f).unwrap();
            b.add_claim(bad2, g).unwrap();
        }
        let e = b.add_entity("contested");
        let t = b.add_statement(e, "contested-true").unwrap();
        let f = b.add_statement(e, "contested-false").unwrap();
        b.add_claim(good, t).unwrap();
        b.add_claim(bad1, f).unwrap();
        b.add_claim(bad2, f).unwrap();
        assert_eq!(t, StatementId(15));
        assert_eq!(f, StatementId(16));
        b.build()
    }

    #[test]
    fn crh_learns_source_reliability() {
        let d = reliability_dataset();
        let r = Crh::default().fuse(&d).unwrap();
        // bad2 was wrong on the five corroborated entities, so its vote on
        // the contested entity counts less: the good source's statement
        // should outscore it even 1-vs-2.
        assert!(
            r.prob(StatementId(15)) > r.prob(StatementId(16)),
            "CRH failed to discount unreliable sources: {} vs {}",
            r.prob(StatementId(15)),
            r.prob(StatementId(16))
        );
    }

    #[test]
    fn crh_beats_majority_on_reliability_dataset() {
        let d = reliability_dataset();
        let crh = Crh::default().fuse(&d).unwrap();
        let mv = MajorityVote.fuse(&d).unwrap();
        // Majority voting gets the contested entity wrong (2 vs 1).
        assert!(mv.prob(StatementId(16)) > mv.prob(StatementId(15)));
        assert!(crh.prob(StatementId(15)) > crh.prob(StatementId(16)));
    }

    #[test]
    fn modified_crh_supports_multi_truth() {
        let d = two_book_dataset();
        let r = ModifiedCrh::default().fuse(&d).unwrap();
        let gold = two_book_gold();
        // Both order variants of book 0's true list should score at least
        // as high as the false statement.
        assert!(r.prob(StatementId(0)) >= r.prob(StatementId(2)));
        assert!(r.prob(StatementId(1)) >= r.prob(StatementId(2)));
        assert!(r.prob(StatementId(3)) > r.prob(StatementId(4)));
        assert!(r.accuracy_against(&gold) >= 0.6);
    }

    #[test]
    fn parameters_are_validated() {
        let d = two_book_dataset();
        let bad = ModifiedCrh {
            top_fraction: 1.5,
            ..ModifiedCrh::default()
        };
        assert!(matches!(
            bad.fuse(&d),
            Err(FusionError::InvalidParameter {
                name: "top_fraction",
                ..
            })
        ));
        let bad = Crh {
            tolerance: 0.0,
            ..Crh::default()
        };
        assert!(matches!(
            bad.fuse(&d),
            Err(FusionError::InvalidParameter {
                name: "tolerance",
                ..
            })
        ));
        let bad = ModifiedCrh {
            tolerance: -1.0,
            ..ModifiedCrh::default()
        };
        assert!(matches!(
            bad.fuse(&d),
            Err(FusionError::InvalidParameter {
                name: "tolerance",
                ..
            })
        ));
    }

    #[test]
    fn empty_claims_rejected() {
        let mut b = DatasetBuilder::new();
        let e = b.add_entity("x");
        b.add_statement(e, "v").unwrap();
        let d = b.build();
        assert_eq!(Crh::default().fuse(&d).unwrap_err(), FusionError::NoClaims);
        assert_eq!(
            ModifiedCrh::default().fuse(&d).unwrap_err(),
            FusionError::NoClaims
        );
    }

    #[test]
    fn provenance_is_bit_identical_to_fuse_and_records_weights() {
        let d = reliability_dataset();
        for (result, ledger, plain) in [
            {
                let (r, l) = Crh::default().fuse_with_provenance(&d).unwrap();
                (r, l, Crh::default().fuse(&d).unwrap())
            },
            {
                let (r, l) = ModifiedCrh::default().fuse_with_provenance(&d).unwrap();
                (r, l, ModifiedCrh::default().fuse(&d).unwrap())
            },
        ] {
            assert_eq!(result, plain);
            assert!(ledger.iterations.unwrap() >= 1);
            // CRH learned that `good` is more reliable than `bad2`.
            assert!(ledger.source_weights["good"] > ledger.source_weights["bad2"]);
            assert_eq!(ledger.statements.len(), d.statements().len());
        }
    }

    #[test]
    fn scores_are_probabilities() {
        let d = reliability_dataset();
        for r in [
            Crh::default().fuse(&d).unwrap(),
            ModifiedCrh::default().fuse(&d).unwrap(),
        ] {
            for &p in r.probs() {
                assert!((0.0..=1.0).contains(&p), "score {p} out of range");
            }
        }
    }
}
