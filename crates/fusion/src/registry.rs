//! The strategy registry: one source of truth mapping method names to
//! [`FusionMethod`] builders.
//!
//! Registration contract: builders are plain `fn() -> Box<dyn FusionMethod>`
//! pointers keyed by `&'static str`; a builder must return a method whose
//! [`FusionMethod::name`] equals its key and whose default construction is
//! deterministic (no environment, clock or RNG reads). Names list in
//! `BTreeMap` (lexicographic) order, so `names()` and unknown-method error
//! messages are byte-stable.
//!
//! Every consumer — `fuse`, `refine`, `serve`, the benches — resolves
//! methods here instead of keeping its own name → constructor map.

use crate::accu::AccuVote;
use crate::crh::{Crh, ModifiedCrh};
use crate::error::FusionError;
use crate::majority::MajorityVote;
use crate::resolvers::{
    DataFusionStrategy, FavourSources, ListUnion, MostRecent, NumericAverage, NumericMedian,
    ResolverMethod, TrustVoting, Voting, WeightedVoting,
};
use crate::result::{FusionMethod, UniformPrior};
use crate::truthfinder::TruthFinder;
use std::collections::BTreeMap;

/// The method every consumer defaults to when none is named: the paper's
/// modified CRH initialiser.
pub const DEFAULT_METHOD: &str = "modified-crh";

/// A name-keyed collection of fusion-method builders. See the module docs
/// for the registration contract.
pub struct StrategyRegistry {
    builders: BTreeMap<&'static str, fn() -> Box<dyn FusionMethod>>,
}

impl StrategyRegistry {
    /// An empty registry.
    pub fn new() -> StrategyRegistry {
        StrategyRegistry {
            builders: BTreeMap::new(),
        }
    }

    /// The standard registry: every shipped method under its canonical name
    /// — the five global methods (`uniform`, `majority`, `crh`,
    /// `modified-crh`, `truthfinder`, `accu`), the eight per-attribute
    /// resolvers lifted to whole-dataset methods, and the `per-attribute`
    /// composite ([`DataFusionStrategy::standard`]).
    pub fn standard() -> StrategyRegistry {
        let mut r = StrategyRegistry::new();
        r.register("uniform", || Box::new(UniformPrior));
        r.register("majority", || Box::new(MajorityVote));
        r.register("crh", || Box::new(Crh::default()));
        r.register("modified-crh", || Box::new(ModifiedCrh::default()));
        r.register("truthfinder", || Box::new(TruthFinder::default()));
        r.register("accu", || Box::new(AccuVote::default()));
        r.register("vote", || Box::new(ResolverMethod::new(Voting)));
        r.register("weighted-vote", || {
            Box::new(ResolverMethod::new(WeightedVoting))
        });
        r.register("trust-vote", || Box::new(ResolverMethod::new(TrustVoting)));
        r.register("favour-sources", || {
            Box::new(ResolverMethod::new(FavourSources::default()))
        });
        r.register("numeric-average", || {
            Box::new(ResolverMethod::new(NumericAverage))
        });
        r.register("numeric-median", || {
            Box::new(ResolverMethod::new(NumericMedian))
        });
        r.register("most-recent", || Box::new(ResolverMethod::new(MostRecent)));
        r.register("list-union", || Box::new(ResolverMethod::new(ListUnion)));
        r.register("per-attribute", || Box::new(DataFusionStrategy::standard()));
        r
    }

    /// Registers (or replaces) a builder under `name`.
    pub fn register(&mut self, name: &'static str, builder: fn() -> Box<dyn FusionMethod>) {
        self.builders.insert(name, builder);
    }

    /// Every registered name, in deterministic (lexicographic) order.
    pub fn names(&self) -> Vec<&'static str> {
        self.builders.keys().copied().collect()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.builders.contains_key(name)
    }

    /// Builds the method registered under `name`; unknown names error with
    /// the full registered list.
    pub fn build(&self, name: &str) -> Result<Box<dyn FusionMethod>, FusionError> {
        match self.builders.get(name) {
            Some(builder) => Ok(builder()),
            None => Err(FusionError::UnknownMethod {
                name: name.to_string(),
                registered: self.names(),
            }),
        }
    }
}

impl Default for StrategyRegistry {
    fn default() -> StrategyRegistry {
        StrategyRegistry::standard()
    }
}

impl std::fmt::Debug for StrategyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StrategyRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::two_book_dataset;

    #[test]
    fn every_registered_builder_matches_its_key() {
        let r = StrategyRegistry::standard();
        assert!(r.names().len() >= 15);
        for name in r.names() {
            assert_eq!(r.build(name).unwrap().name(), name);
        }
        assert!(r.contains(DEFAULT_METHOD));
    }

    #[test]
    fn names_are_sorted_and_stable() {
        let names = StrategyRegistry::standard().names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(names, StrategyRegistry::standard().names());
    }

    #[test]
    fn unknown_name_lists_the_registry() {
        let r = StrategyRegistry::standard();
        let Err(err) = r.build("lda") else {
            panic!("'lda' must not resolve");
        };
        let msg = err.to_string();
        assert!(msg.contains("unknown fusion method"));
        assert!(msg.contains("modified-crh"));
        assert!(msg.contains("per-attribute"));
    }

    #[test]
    fn every_method_runs_on_the_toy_dataset() {
        let d = two_book_dataset();
        for name in StrategyRegistry::standard().names() {
            let method = StrategyRegistry::standard().build(name).unwrap();
            let (result, ledger) = method.fuse_with_provenance(&d).unwrap();
            assert_eq!(result.probs().len(), d.statements().len());
            assert_eq!(ledger.statements.len(), d.statements().len());
            assert_eq!(ledger.method, name);
        }
    }
}
