//! The [`FusionMethod`] trait and [`FusionResult`] probability container.

use crate::error::FusionError;
use crate::model::{Dataset, EntityId, StatementId};
use crate::provenance::ProvenanceLedger;
use crate::PROB_FLOOR;
use serde::{Deserialize, Serialize};

/// Per-statement marginal truth probabilities produced by a fusion method.
///
/// The paper calls this "a prior probability distribution over all possible
/// results, i.e., probability distribution calculated by existing data fusion
/// models" (Section I). CrowdFusion consumes these marginals when building
/// its joint prior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionResult {
    method: String,
    probs: Vec<f64>,
}

impl FusionResult {
    /// Wraps raw probabilities, clamping each into
    /// `[PROB_FLOOR, 1 − PROB_FLOOR]`.
    pub fn new(method: impl Into<String>, probs: Vec<f64>) -> FusionResult {
        let probs = probs
            .into_iter()
            .map(|p| p.clamp(PROB_FLOOR, 1.0 - PROB_FLOOR))
            .collect();
        FusionResult {
            method: method.into(),
            probs,
        }
    }

    /// Wraps *share-like* scores (weighted vote shares that sum to ≈ 1 per
    /// entity, as CRH and majority voting produce), calibrating them into
    /// marginal probabilities: within each entity the scores are rescaled
    /// so its top statement receives `top` (conventionally 0.9), preserving
    /// ratios. Without this step no statement of a many-statement entity
    /// would ever clear 0.5, making thresholded predictions vacuous.
    pub fn from_entity_shares(
        method: impl Into<String>,
        scores: Vec<f64>,
        dataset: &Dataset,
        top: f64,
    ) -> FusionResult {
        let mut probs = scores;
        for entity in dataset.entities() {
            let max = entity
                .statements
                .iter()
                .map(|s| probs[s.0 as usize])
                .fold(0.0f64, f64::max);
            if max > 0.0 {
                let scale = top / max;
                for &s in &entity.statements {
                    probs[s.0 as usize] *= scale;
                }
            }
        }
        FusionResult::new(method, probs)
    }

    /// Name of the method that produced this result.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// Probability that `statement` is true.
    pub fn prob(&self, statement: StatementId) -> f64 {
        self.probs[statement.0 as usize]
    }

    /// All probabilities, indexed by statement id.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The probabilities of one entity's statements, in the entity's
    /// statement order — the marginals CrowdFusion uses per book.
    pub fn entity_marginals(&self, dataset: &Dataset, entity: EntityId) -> Vec<f64> {
        dataset
            .statements_of(entity)
            .iter()
            .map(|s| self.prob(*s))
            .collect()
    }

    /// Fraction of statements whose thresholded label (`p ≥ 0.5`) matches
    /// `gold`. A quick quality diagnostic for initialisers.
    pub fn accuracy_against(&self, gold: &[bool]) -> f64 {
        assert_eq!(gold.len(), self.probs.len(), "gold length mismatch");
        if gold.is_empty() {
            return 0.0;
        }
        let hits = self
            .probs
            .iter()
            .zip(gold)
            .filter(|(p, g)| (**p >= 0.5) == **g)
            .count();
        hits as f64 / gold.len() as f64
    }
}

/// A probability-producing data-fusion ("truth discovery") method.
///
/// The paper's system "can be initialized by any existing probability-based
/// data fusion method … or simply set to uniform distribution" (Section III).
pub trait FusionMethod {
    /// Short machine-readable method name (used in reports).
    fn name(&self) -> &'static str;

    /// Runs the method over the dataset, producing per-statement truth
    /// probabilities.
    fn fuse(&self, dataset: &Dataset) -> Result<FusionResult, FusionError>;

    /// Runs the method and additionally returns a [`ProvenanceLedger`]:
    /// which sources won each statement, their final contribution weights,
    /// and the iteration of convergence where applicable.
    ///
    /// The default implementation calls [`FusionMethod::fuse`] and records
    /// uniform source weights; methods that estimate per-source reliability
    /// (CRH, TruthFinder, ACCU, the per-attribute resolvers) override it to
    /// expose their real weights. The returned [`FusionResult`] is always
    /// identical to what `fuse` produces.
    fn fuse_with_provenance(
        &self,
        dataset: &Dataset,
    ) -> Result<(FusionResult, ProvenanceLedger), FusionError> {
        let result = self.fuse(dataset)?;
        let ledger = ProvenanceLedger::uniform(dataset, self.name(), &result);
        Ok((result, ledger))
    }
}

/// The trivial initialiser: every statement gets probability 0.5 — the
/// paper's "simply set to uniform distribution" option.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformPrior;

impl FusionMethod for UniformPrior {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn fuse(&self, dataset: &Dataset) -> Result<FusionResult, FusionError> {
        Ok(FusionResult::new(
            self.name(),
            vec![0.5; dataset.statements().len()],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::two_book_dataset;

    #[test]
    fn probabilities_are_clamped() {
        let r = FusionResult::new("m", vec![0.0, 1.0, 0.5]);
        assert_eq!(r.prob(StatementId(0)), PROB_FLOOR);
        assert_eq!(r.prob(StatementId(1)), 1.0 - PROB_FLOOR);
        assert_eq!(r.prob(StatementId(2)), 0.5);
        assert_eq!(r.method(), "m");
    }

    #[test]
    fn entity_marginals_follow_statement_order() {
        let d = two_book_dataset();
        let r = FusionResult::new("m", vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        assert_eq!(r.entity_marginals(&d, EntityId(0)), vec![0.1, 0.2, 0.3]);
        assert_eq!(r.entity_marginals(&d, EntityId(1)), vec![0.4, 0.5]);
    }

    #[test]
    fn accuracy_against_gold() {
        let r = FusionResult::new("m", vec![0.9, 0.1, 0.8, 0.2]);
        let gold = vec![true, false, false, false];
        assert!((r.accuracy_against(&gold) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn uniform_prior_covers_all_statements() {
        let d = two_book_dataset();
        let r = UniformPrior.fuse(&d).unwrap();
        assert_eq!(r.probs().len(), d.statements().len());
        assert!(r.probs().iter().all(|&p| (p - 0.5).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "gold length mismatch")]
    fn accuracy_length_mismatch_panics() {
        let r = FusionResult::new("m", vec![0.9]);
        r.accuracy_against(&[true, false]);
    }
}
