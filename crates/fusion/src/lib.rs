//! Truth-discovery substrate for the CrowdFusion reproduction.
//!
//! CrowdFusion (Chen, Chen & Zhang, ICDE 2017) refines the output of
//! "machine-only" data-fusion methods. This crate implements that substrate
//! from scratch:
//!
//! * a [`model::Dataset`] of entities, conflicting *statements* (candidate
//!   values) and web *sources* that claim them — the shape of the Book
//!   dataset used in the paper's evaluation;
//! * four probability-producing fusion methods behind the
//!   [`FusionMethod`] trait:
//!   [`MajorityVote`], [`Crh`] (Li et al., SIGMOD 2014 — the paper's
//!   initialiser), [`TruthFinder`] (Yin, Han & Yu, TKDE 2008) and
//!   [`AccuVote`] (a Bayesian ACCU-style voter after Dong et al., VLDB 2009);
//! * [`ModifiedCrh`] — the paper's modification of CRH for multi-truth
//!   author-list data (Section V-A: top-50 % majority marking, weight
//!   assignment, missing-value normalisation, truth computation);
//! * author-list text utilities ([`text`]) used for gold-standard
//!   equivalence and TruthFinder's implication function;
//! * per-attribute conflict [`resolvers`] (voting family, numeric/date,
//!   list-union) and the composite [`resolvers::DataFusionStrategy`]
//!   mapping attribute → resolver over a fallback method;
//! * the [`registry::StrategyRegistry`] — the single name → builder map
//!   every consumer (`fuse`, `refine`, `serve`, benches) resolves methods
//!   through;
//! * a [`ProvenanceLedger`] per run (which sources won each fact and why)
//!   and the [`FusionReport`] JSON emitted by `fuse --report`.
//!
//! The output of every method is a [`FusionResult`]: a per-statement marginal
//! probability of being true, which downstream code (crowdfusion-core) lifts
//! into a joint prior distribution.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod accu;
pub mod crh;
pub mod error;
pub mod majority;
pub mod model;
pub mod provenance;
pub mod registry;
pub mod report;
pub mod resolvers;
pub mod result;
pub mod text;
pub mod truthfinder;

pub use accu::AccuVote;
pub use crh::{Crh, ModifiedCrh};
pub use error::FusionError;
pub use majority::MajorityVote;
pub use model::{
    Claim, Dataset, DatasetBuilder, Entity, EntityId, Source, SourceId, Statement, StatementId,
};
pub use provenance::{ProvenanceLedger, StatementProvenance};
pub use registry::{StrategyRegistry, DEFAULT_METHOD};
pub use report::FusionReport;
pub use resolvers::{ConflictResolver, DataFusionStrategy, ResolverMethod};
pub use result::{FusionMethod, FusionResult, UniformPrior};
pub use truthfinder::TruthFinder;

/// Probabilities emitted by fusion methods are clamped to
/// `[PROB_FLOOR, 1 − PROB_FLOOR]` so that no fact starts out certain: the
/// paper's Bayesian merge (Equation 3) can never recover from a hard 0/1
/// prior, and real fusion output is never perfectly confident.
pub const PROB_FLOOR: f64 = 0.02;
