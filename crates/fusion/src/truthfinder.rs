//! TruthFinder (Yin, Han & Yu, TKDE 2008): iterative source-trust /
//! statement-confidence propagation with inter-statement implication.
//!
//! The model: a source's trustworthiness `t(s)` is the average confidence of
//! the statements it claims; a statement's confidence combines the
//! trustworthiness of its supporters in log-odds space
//! (`τ(s) = −ln(1 − t(s))`, `σ*(f) = Σ_s τ(s)`), is adjusted by the
//! confidences of *similar* statements about the same entity (the
//! implication term), and is squashed by a dampened logistic.
//!
//! Similarity between author-list statements is token Jaccard minus a base
//! similarity, so near-identical statements reinforce each other while
//! clearly different statements inhibit each other — exactly the behaviour
//! the CrowdFusion paper needs from its "correlation between facts".

use crate::error::FusionError;
use crate::model::Dataset;
use crate::provenance::ProvenanceLedger;
use crate::result::{FusionMethod, FusionResult};
use crate::text::jaccard;

/// TruthFinder configuration.
#[derive(Debug, Clone)]
pub struct TruthFinder {
    /// Initial trustworthiness of every source.
    pub initial_trust: f64,
    /// Dampening factor γ compensating for correlated sources (paper value
    /// 0.3).
    pub gamma: f64,
    /// Weight ρ of the implication adjustment (paper value 0.5).
    pub rho: f64,
    /// Base similarity subtracted from Jaccard so dissimilar statements
    /// inhibit each other (paper value 0.5).
    pub base_sim: f64,
    /// Maximum iterations.
    pub max_iters: usize,
    /// Convergence threshold on 1 − cosine similarity between consecutive
    /// trust vectors.
    pub tolerance: f64,
}

impl Default for TruthFinder {
    fn default() -> TruthFinder {
        TruthFinder {
            initial_trust: 0.9,
            gamma: 0.3,
            rho: 0.5,
            base_sim: 0.5,
            max_iters: 50,
            tolerance: 1e-6,
        }
    }
}

impl TruthFinder {
    fn validate(&self) -> Result<(), FusionError> {
        let checks: [(&'static str, f64, bool); 5] = [
            (
                "initial_trust",
                self.initial_trust,
                (0.0..1.0).contains(&self.initial_trust) && self.initial_trust > 0.0,
            ),
            ("gamma", self.gamma, self.gamma > 0.0 && self.gamma <= 1.0),
            ("rho", self.rho, (0.0..=1.0).contains(&self.rho)),
            (
                "base_sim",
                self.base_sim,
                (0.0..=1.0).contains(&self.base_sim),
            ),
            ("tolerance", self.tolerance, self.tolerance > 0.0),
        ];
        for (name, value, ok) in checks {
            if !ok {
                return Err(FusionError::InvalidParameter { name, value });
            }
        }
        Ok(())
    }
}

/// Caps keep the log-odds scores finite when a trusted source approaches
/// trust 1.
const MAX_TAU: f64 = 13.0; // −ln(1e−6) ≈ 13.8
const MAX_SCORE: f64 = 60.0;

/// Outcome of the trust/confidence iteration: the converged statement
/// confidences plus the final source-trust vector and iteration count.
struct TfRun {
    confidence: Vec<f64>,
    trust: Vec<f64>,
    iterations: usize,
}

impl TruthFinder {
    /// The trust/confidence fixed-point iteration — the shared core of
    /// `fuse` and `fuse_with_provenance`.
    fn run(&self, dataset: &Dataset) -> Result<TfRun, FusionError> {
        self.validate()?;
        if dataset.claims().is_empty() {
            return Err(FusionError::NoClaims);
        }
        let n_sources = dataset.sources().len();
        let n_statements = dataset.statements().len();

        // Precompute implication weights between statements of the same
        // entity: imp(f' -> f) = sim(f', f) − base_sim.
        let mut implications: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_statements];
        for entity in dataset.entities() {
            let stmts = &entity.statements;
            for &a in stmts {
                for &b in stmts {
                    if a == b {
                        continue;
                    }
                    let sim = jaccard(dataset.statement_text(a), dataset.statement_text(b));
                    implications[b.0 as usize].push((a.0 as usize, sim - self.base_sim));
                }
            }
        }

        let mut trust = vec![self.initial_trust; n_sources];
        let mut confidence = vec![0.5; n_statements];
        let mut iterations = 0;
        let mut residual = f64::INFINITY;

        for iter in 0..self.max_iters {
            iterations = iter + 1;
            // Statement confidence from source trust.
            let tau: Vec<f64> = trust
                .iter()
                .map(|&t| (-(1.0 - t).max(1e-12).ln()).min(MAX_TAU))
                .collect();
            let mut raw = vec![0.0f64; n_statements];
            for (sid, supporters) in (0..n_statements)
                .map(|i| (i, dataset.supporters(crate::model::StatementId(i as u32))))
            {
                raw[sid] = supporters.iter().map(|s| tau[s.0 as usize]).sum();
            }
            // Implication adjustment uses the raw scores of other statements
            // about the same entity.
            let adjusted: Vec<f64> = (0..n_statements)
                .map(|sid| {
                    let adj: f64 = implications[sid]
                        .iter()
                        .map(|&(other, imp)| raw[other] * imp)
                        .sum();
                    (raw[sid] + self.rho * adj).clamp(-MAX_SCORE, MAX_SCORE)
                })
                .collect();
            for (sid, &score) in adjusted.iter().enumerate() {
                confidence[sid] = 1.0 / (1.0 + (-self.gamma * score).exp());
            }

            // Source trust from statement confidence.
            let mut sums = vec![0.0f64; n_sources];
            let mut counts = vec![0usize; n_sources];
            for claim in dataset.claims() {
                sums[claim.source.0 as usize] += confidence[claim.statement.0 as usize];
                counts[claim.source.0 as usize] += 1;
            }
            let new_trust: Vec<f64> = (0..n_sources)
                .map(|s| {
                    if counts[s] == 0 {
                        trust[s]
                    } else {
                        (sums[s] / counts[s] as f64).clamp(1e-6, 1.0 - 1e-6)
                    }
                })
                .collect();

            // Convergence: 1 − cosine similarity of trust vectors.
            let dot: f64 = trust.iter().zip(&new_trust).map(|(a, b)| a * b).sum();
            let na: f64 = trust.iter().map(|a| a * a).sum::<f64>().sqrt();
            let nb: f64 = new_trust.iter().map(|b| b * b).sum::<f64>().sqrt();
            residual = if na > 0.0 && nb > 0.0 {
                1.0 - dot / (na * nb)
            } else {
                0.0
            };
            trust = new_trust;
            if residual < self.tolerance {
                return Ok(TfRun {
                    confidence,
                    trust,
                    iterations,
                });
            }
        }
        // Return the last iterate but flag non-convergence via error when the
        // residual is still large; small residuals are accepted.
        if residual > self.tolerance * 100.0 {
            return Err(FusionError::NoConvergence {
                iterations,
                residual,
            });
        }
        Ok(TfRun {
            confidence,
            trust,
            iterations,
        })
    }
}

impl FusionMethod for TruthFinder {
    fn name(&self) -> &'static str {
        "truthfinder"
    }

    fn fuse(&self, dataset: &Dataset) -> Result<FusionResult, FusionError> {
        let run = self.run(dataset)?;
        Ok(FusionResult::new(self.name(), run.confidence))
    }

    fn fuse_with_provenance(
        &self,
        dataset: &Dataset,
    ) -> Result<(FusionResult, ProvenanceLedger), FusionError> {
        let run = self.run(dataset)?;
        let result = FusionResult::new(self.name(), run.confidence);
        let ledger = ProvenanceLedger::from_source_weights(
            dataset,
            self.name(),
            &run.trust,
            &result,
            Some(run.iterations),
        );
        Ok((result, ledger))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::testutil::two_book_dataset;
    use crate::model::{DatasetBuilder, StatementId};

    #[test]
    fn converges_on_small_dataset() {
        let d = two_book_dataset();
        let r = TruthFinder::default().fuse(&d).unwrap();
        assert_eq!(r.probs().len(), d.statements().len());
        for &p in r.probs() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn corroborated_statement_scores_higher() {
        let d = two_book_dataset();
        let r = TruthFinder::default().fuse(&d).unwrap();
        // s3 (two supporters) should beat s4 (one supporter).
        assert!(r.prob(StatementId(3)) > r.prob(StatementId(4)));
    }

    #[test]
    fn similar_statements_reinforce_each_other() {
        // Two sources claim order variants of the same list; one claims an
        // unrelated list. With the implication term the variants should both
        // beat the unrelated statement even though each has one supporter.
        let mut b = DatasetBuilder::new();
        let s1 = b.add_source("a");
        let s2 = b.add_source("b");
        let s3 = b.add_source("c");
        let e = b.add_entity("book");
        let v1 = b.add_statement(e, "Ada Lovelace Alan Turing").unwrap();
        let v2 = b.add_statement(e, "Alan Turing Ada Lovelace").unwrap();
        let v3 = b.add_statement(e, "Grace Hopper").unwrap();
        b.add_claim(s1, v1).unwrap();
        b.add_claim(s2, v2).unwrap();
        b.add_claim(s3, v3).unwrap();
        let r = TruthFinder::default().fuse(&b.build()).unwrap();
        assert!(r.prob(v1) > r.prob(v3));
        assert!(r.prob(v2) > r.prob(v3));
    }

    #[test]
    fn provenance_exposes_trust_and_iterations() {
        let d = two_book_dataset();
        let (result, ledger) = TruthFinder::default().fuse_with_provenance(&d).unwrap();
        assert_eq!(result, TruthFinder::default().fuse(&d).unwrap());
        assert!(ledger.iterations.unwrap() >= 1);
        assert_eq!(ledger.source_weights.len(), d.sources().len());
        // Trust values live in (0, 1).
        assert!(ledger.source_weights.values().all(|&t| t > 0.0 && t < 1.0));
    }

    #[test]
    fn parameter_validation() {
        let d = two_book_dataset();
        for bad in [
            TruthFinder {
                initial_trust: 0.0,
                ..TruthFinder::default()
            },
            TruthFinder {
                initial_trust: 1.0,
                ..TruthFinder::default()
            },
            TruthFinder {
                gamma: 0.0,
                ..TruthFinder::default()
            },
            TruthFinder {
                rho: 1.5,
                ..TruthFinder::default()
            },
            TruthFinder {
                base_sim: -0.1,
                ..TruthFinder::default()
            },
            TruthFinder {
                tolerance: 0.0,
                ..TruthFinder::default()
            },
        ] {
            assert!(matches!(
                bad.fuse(&d),
                Err(FusionError::InvalidParameter { .. })
            ));
        }
    }

    #[test]
    fn empty_claims_rejected() {
        let mut b = DatasetBuilder::new();
        let e = b.add_entity("x");
        b.add_statement(e, "v").unwrap();
        assert_eq!(
            TruthFinder::default().fuse(&b.build()).unwrap_err(),
            FusionError::NoClaims
        );
    }
}
