//! Property-based tests for the truth-discovery substrate.

use crowdfusion_fusion::text::{canonical_list, jaccard, lists_equivalent, split_authors};
use crowdfusion_fusion::{
    AccuVote, Crh, DatasetBuilder, FusionMethod, FusionReport, MajorityVote, ModifiedCrh,
    StrategyRegistry, TruthFinder,
};
use proptest::prelude::*;

/// Strategy: a random claims dataset with 1..=4 sources, 1..=4 entities,
/// 2..=4 statements per entity and arbitrary claim edges (each source
/// claims at most one statement per entity, like a website listing one
/// author list per book).
fn arb_dataset() -> impl Strategy<Value = crowdfusion_fusion::Dataset> {
    (
        1usize..=4,
        proptest::collection::vec(2usize..=4, 1..=4),
        any::<u64>(),
    )
        .prop_map(|(n_sources, stmts_per_entity, seed)| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut b = DatasetBuilder::new();
            let sources: Vec<_> = (0..n_sources)
                .map(|i| b.add_source(format!("s{i}")))
                .collect();
            for (e, &n_stmts) in stmts_per_entity.iter().enumerate() {
                let entity = b.add_entity(format!("e{e}"));
                let statements: Vec<_> = (0..n_stmts)
                    .map(|v| b.add_statement(entity, format!("value-{e}-{v}")).unwrap())
                    .collect();
                for &source in &sources {
                    if rng.gen_bool(0.8) {
                        let pick = statements[rng.gen_range(0..statements.len())];
                        b.add_claim(source, pick).unwrap();
                    }
                }
            }
            b.build()
        })
        .prop_filter("need at least one claim", |d| !d.claims().is_empty())
}

fn all_methods() -> Vec<Box<dyn FusionMethod>> {
    vec![
        Box::new(MajorityVote),
        Box::new(Crh::default()),
        Box::new(ModifiedCrh::default()),
        Box::new(TruthFinder::default()),
        Box::new(AccuVote::default()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_method_yields_valid_probabilities(d in arb_dataset()) {
        for method in all_methods() {
            let result = method.fuse(&d);
            let Ok(result) = result else {
                // TruthFinder may legitimately report non-convergence on
                // adversarial random graphs; any other failure is a bug.
                prop_assert_eq!(method.name(), "truthfinder");
                continue;
            };
            prop_assert_eq!(result.probs().len(), d.statements().len());
            for &p in result.probs() {
                prop_assert!(p > 0.0 && p < 1.0, "{}: {p}", method.name());
            }
        }
    }

    #[test]
    fn methods_are_deterministic(d in arb_dataset()) {
        for method in all_methods() {
            let a = method.fuse(&d);
            let b = method.fuse(&d);
            match (a, b) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "non-deterministic failure"),
            }
        }
    }

    #[test]
    fn registry_built_methods_match_direct_construction(d in arb_dataset()) {
        // The registry is pure plumbing: a method built by name must be
        // bit-identical to the directly constructed backend — results AND
        // provenance, success or failure.
        let registry = StrategyRegistry::standard();
        for direct in all_methods() {
            let named = registry.build(direct.name()).unwrap();
            match (direct.fuse(&d), named.fuse(&d)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => continue,
                _ => prop_assert!(false, "{}: registry changed the outcome", direct.name()),
            }
            let (_, la) = direct.fuse_with_provenance(&d).unwrap();
            let (_, lb) = named.fuse_with_provenance(&d).unwrap();
            prop_assert_eq!(la, lb);
        }
    }

    #[test]
    fn ledger_and_report_json_are_byte_stable(d in arb_dataset()) {
        // Provenance and reports must serialize to identical bytes on
        // repeated runs — the property CI's fixture diff leans on.
        for name in ["majority", "crh", "modified-crh", "vote", "per-attribute"] {
            let registry = StrategyRegistry::standard();
            let method = registry.build(name).unwrap();
            let (result, ledger) = method.fuse_with_provenance(&d).unwrap();
            let (result2, ledger2) = registry.build(name).unwrap().fuse_with_provenance(&d).unwrap();
            prop_assert_eq!(&result, &result2);
            prop_assert_eq!(
                serde_json::to_string(&ledger).unwrap(),
                serde_json::to_string(&ledger2).unwrap()
            );
            let report = FusionReport::generate(&d, &result, ledger);
            let again = FusionReport::generate(&d, &result2, ledger2);
            prop_assert_eq!(report.to_json_pretty(), again.to_json_pretty());
        }
    }

    #[test]
    fn majority_respects_vote_ordering(d in arb_dataset()) {
        let result = MajorityVote.fuse(&d).unwrap();
        for entity in d.entities() {
            for a in entity.statements.iter() {
                for b in entity.statements.iter() {
                    let (sa, sb) = (d.supporters(*a).len(), d.supporters(*b).len());
                    if sa > sb {
                        prop_assert!(
                            result.prob(*a) >= result.prob(*b),
                            "more supporters but lower probability"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn top_fraction_marks_expected_counts(d in arb_dataset(), fraction in 0.0f64..=1.0) {
        let marked = MajorityVote::mark_top_fraction(&d, fraction);
        prop_assert_eq!(marked.len(), d.statements().len());
        for entity in d.entities() {
            let count = entity
                .statements
                .iter()
                .filter(|s| marked[s.0 as usize])
                .count();
            let expected =
                ((entity.statements.len() as f64 * fraction).round() as usize).max(1);
            prop_assert_eq!(count, expected.min(entity.statements.len()));
        }
    }

    // --- text utilities ---

    #[test]
    fn equivalence_is_reflexive_and_symmetric(
        names in proptest::collection::vec("[A-Z][a-z]{1,8} [A-Z][a-z]{1,8}", 1..4),
    ) {
        let list = names.join("; ");
        prop_assert!(lists_equivalent(&list, &list));
        let reversed = names.iter().rev().cloned().collect::<Vec<_>>().join("; ");
        prop_assert!(lists_equivalent(&list, &reversed));
        prop_assert!(lists_equivalent(&reversed, &list));
    }

    #[test]
    fn inverted_format_is_equivalent(
        names in proptest::collection::vec(("[A-Z][a-z]{1,8}", "[A-Z][a-z]{1,8}"), 1..4),
    ) {
        let natural = names
            .iter()
            .map(|(f, l)| format!("{f} {l}"))
            .collect::<Vec<_>>()
            .join("; ");
        let inverted = names
            .iter()
            .map(|(f, l)| format!("{l}, {f}"))
            .collect::<Vec<_>>()
            .join("; ");
        prop_assert!(
            lists_equivalent(&natural, &inverted),
            "{natural:?} vs {inverted:?}"
        );
    }

    #[test]
    fn jaccard_is_symmetric_and_bounded(a in ".{0,30}", b in ".{0,30}") {
        let ab = jaccard(&a, &b);
        let ba = jaccard(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn canonical_list_is_order_insensitive(
        names in proptest::collection::vec("[A-Z][a-z]{1,6} [A-Z][a-z]{1,6}", 2..4),
        seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::{rngs::StdRng, SeedableRng};
        let mut shuffled = names.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(
            canonical_list(&names.join("; ")),
            canonical_list(&shuffled.join("; "))
        );
    }

    #[test]
    fn split_authors_never_yields_empty_names(s in ".{0,40}") {
        for name in split_authors(&s) {
            prop_assert!(!name.trim().is_empty());
        }
    }
}
