//! Criterion: greedy evaluator comparison (paper-naive vs butterfly vs
//! Algorithm 2 preprocessing) across fact counts — the ablation behind the
//! DESIGN.md evaluator discussion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdfusion_bench::bench_prior;
use crowdfusion_core::answers::AnswerEvaluator;
use crowdfusion_core::selection::{GreedySelector, TaskSelector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_evaluators(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_evaluators");
    for &n in &[8usize, 12, 16] {
        let dist = bench_prior(n, 5);
        let configs: Vec<(&str, GreedySelector)> = vec![
            ("naive", GreedySelector::paper_approx()),
            (
                "butterfly",
                GreedySelector::paper_approx().with_evaluator(AnswerEvaluator::Butterfly),
            ),
            (
                "preprocessed",
                GreedySelector::paper_approx()
                    .with_evaluator(AnswerEvaluator::Butterfly)
                    .with_preprocess(),
            ),
        ];
        for (label, selector) in configs {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    std::hint::black_box(selector.select(&dist, 0.8, 4, &mut rng).unwrap())
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_evaluators
}
criterion_main!(benches);
