//! Criterion: greedy evaluator comparison (paper-naive vs the historical
//! per-candidate butterfly rebuild vs Algorithm 2 preprocessing vs the
//! cached-scatter engine, serial and pooled) across fact counts — the
//! ablation behind the DESIGN.md evaluator discussion and the engine
//! speedup gate in EXPERIMENTS.md.
//!
//! `butterfly` reproduces the pre-engine fast path (a from-scratch
//! `answer_entropy` rebuild per candidate — kept here as a live baseline
//! since `GreedySelector`'s butterfly path now always runs through the
//! scatter cache). `engine_t1` isolates the cache win; `engine_tN` adds
//! the candidate pool. The PR gate compares `engine_t4/16` against
//! `butterfly/16`: ≥ 2× required.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdfusion_bench::bench_prior;
use crowdfusion_core::answers::{answer_entropy, AnswerEvaluator};
use crowdfusion_core::selection::{GreedySelector, TaskSelector};
use crowdfusion_jointdist::{JointDist, VarSet};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-engine fast configuration, verbatim: every candidate's
/// `H(T ∪ {f})` rebuilt from the output support through the butterfly
/// evaluator, no cache, no pool, no pruning.
fn rebuild_butterfly_greedy(dist: &JointDist, pc: f64, k: usize) -> Vec<usize> {
    let n = dist.num_vars();
    let mut selected = Vec::with_capacity(k);
    let mut set = VarSet::EMPTY;
    let mut h_current = 0.0f64;
    for _ in 0..k.min(n) {
        let mut best: Option<(usize, f64)> = None;
        for f in (0..n).filter(|&f| !set.contains(f)) {
            let h = answer_entropy(dist, set.insert(f), pc, AnswerEvaluator::Butterfly).unwrap();
            match best {
                Some((_, best_h)) if h <= best_h => {}
                _ => best = Some((f, h)),
            }
        }
        let Some((f, h)) = best else { break };
        if h - h_current <= 1e-12 {
            break;
        }
        selected.push(f);
        set = set.insert(f);
        h_current = h;
    }
    selected
}

fn bench_evaluators(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_evaluators");
    for &n in &[8usize, 12, 16] {
        let dist = bench_prior(n, 5);
        group.bench_with_input(BenchmarkId::new("butterfly", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(rebuild_butterfly_greedy(&dist, 0.8, 4)))
        });
        let configs: Vec<(&str, GreedySelector)> = vec![
            ("naive", GreedySelector::paper_approx()),
            (
                "preprocessed",
                GreedySelector::paper_approx()
                    .with_evaluator(AnswerEvaluator::Butterfly)
                    .with_preprocess(),
            ),
            ("engine_t1", GreedySelector::engine(1)),
            ("engine_t2", GreedySelector::engine(2)),
            ("engine_t4", GreedySelector::engine(4)),
        ];
        for (label, selector) in configs {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    std::hint::black_box(selector.select(&dist, 0.8, 4, &mut rng).unwrap())
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_evaluators
}
criterion_main!(benches);
