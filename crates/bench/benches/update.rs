//! Criterion: the per-round hot paths — Equation 2 answer distributions
//! and the Equation 3 Bayesian merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdfusion_bench::bench_prior;
use crowdfusion_core::answers::{answer_distribution, posterior, AnswerEvaluator};
use crowdfusion_jointdist::VarSet;

fn bench_answer_distribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("answer_distribution");
    let dist = bench_prior(14, 4);
    for &t in &[2usize, 6, 10] {
        let tasks = VarSet::from_vars(0..t);
        group.bench_with_input(BenchmarkId::new("naive", t), &t, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    answer_distribution(&dist, tasks, 0.8, AnswerEvaluator::Naive).unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("butterfly", t), &t, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    answer_distribution(&dist, tasks, 0.8, AnswerEvaluator::Butterfly).unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_posterior(c: &mut Criterion) {
    let mut group = c.benchmark_group("bayes_merge");
    for &n in &[8usize, 14] {
        let dist = bench_prior(n, 4);
        let tasks: Vec<usize> = (0..4.min(n)).collect();
        let answers: Vec<bool> = tasks.iter().map(|t| t % 2 == 0).collect();
        group.bench_with_input(BenchmarkId::new("posterior_k4", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(posterior(&dist, &tasks, &answers, 0.8).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_answer_distribution, bench_posterior
}
criterion_main!(benches);
