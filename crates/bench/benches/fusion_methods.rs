//! Criterion: the truth-discovery substrate — one full fusion pass of each
//! initialiser over the standard synthetic Book dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdfusion_bench::standard_books;
use crowdfusion_fusion::{AccuVote, Crh, FusionMethod, MajorityVote, ModifiedCrh, TruthFinder};

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_methods");
    for &n_books in &[50usize, 200] {
        let books = standard_books(n_books, (3, 8), 1);
        let methods: Vec<Box<dyn FusionMethod>> = vec![
            Box::new(MajorityVote),
            Box::new(Crh::default()),
            Box::new(ModifiedCrh::default()),
            Box::new(TruthFinder::default()),
            Box::new(AccuVote::default()),
        ];
        for method in methods {
            group.bench_with_input(
                BenchmarkId::new(method.name(), n_books),
                &n_books,
                |b, _| b.iter(|| std::hint::black_box(method.fuse(&books.dataset).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fusion
}
criterion_main!(benches);
