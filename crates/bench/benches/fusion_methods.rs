//! Criterion: the truth-discovery substrate — one full fusion pass of
//! every registered strategy over the standard synthetic Book dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdfusion_bench::standard_books;
use crowdfusion_fusion::StrategyRegistry;

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_methods");
    let registry = StrategyRegistry::standard();
    for &n_books in &[50usize, 200] {
        let books = standard_books(n_books, (3, 8), 1);
        // Iterating the registry (not a hand-kept list) means a newly
        // registered strategy is benchmarked — and regression-gated via
        // BENCH_fusion.json — without touching this file.
        for name in registry.names() {
            let method = registry.build(name).unwrap();
            group.bench_with_input(BenchmarkId::new(name, n_books), &n_books, |b, _| {
                b.iter(|| std::hint::black_box(method.fuse(&books.dataset).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fusion
}
criterion_main!(benches);
