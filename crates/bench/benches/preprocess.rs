//! Criterion: answer-table preprocessing — the paper's `O(|O|²)` naive
//! computation (serial and crossbeam-parallel, Section III-F's MapReduce
//! claim) against the butterfly transform.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdfusion_bench::bench_prior;
use crowdfusion_core::answers::{full_answer_distribution, AnswerEvaluator};
use crowdfusion_core::parallel::{
    full_answer_distribution_butterfly_parallel, full_answer_distribution_naive_parallel,
};

fn bench_preprocess(c: &mut Criterion) {
    let mut group = c.benchmark_group("answer_table_preprocess");
    for &n in &[10usize, 14] {
        let dist = bench_prior(n, 2);
        group.bench_with_input(BenchmarkId::new("naive_serial", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    full_answer_distribution(&dist, 0.8, AnswerEvaluator::Naive).unwrap(),
                )
            })
        });
        for threads in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("naive_parallel_{threads}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        std::hint::black_box(
                            full_answer_distribution_naive_parallel(&dist, 0.8, threads).unwrap(),
                        )
                    })
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("butterfly_serial", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    full_answer_distribution(&dist, 0.8, AnswerEvaluator::Butterfly).unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("butterfly_parallel_4", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    full_answer_distribution_butterfly_parallel(&dist, 0.8, 4).unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_preprocess
}
criterion_main!(benches);
