//! Criterion companion to the Table V harness: one-round selection time of
//! every paper configuration at representative `k` values.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crowdfusion_bench::bench_prior;
use crowdfusion_core::selection::SelectorKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_table5(c: &mut Criterion) {
    let dist = bench_prior(12, 7);
    let mut group = c.benchmark_group("table5_selection");
    for kind in SelectorKind::TABLE_V {
        for &k in &[1usize, 2, 3, 6] {
            if kind == SelectorKind::Opt && k > 3 {
                continue;
            }
            let selector = kind.build();
            group.bench_with_input(BenchmarkId::new(kind.label(), k), &k, |b, &k| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(1);
                    std::hint::black_box(selector.select(&dist, 0.8, k, &mut rng).unwrap())
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table5
}
criterion_main!(benches);
