//! The CI bench-regression gate.
//!
//! CI's `bench-smoke` job re-runs the `selection` bench into
//! `bench-out/BENCH_selection.json` and compares it row by row against the
//! committed `BENCH_selection.json` baseline with the `bench_gate` binary.
//! The verdict statistic is the **median** mean-time ratio (fresh /
//! baseline) over the gated rows — individual rows on a shared CI runner
//! jitter far more than their median, so a single noisy row cannot fail
//! the build, while a real regression of the engine moves every row and
//! therefore the median with it. The gate fails when the median exceeds
//! `1 + max_regression` (CI uses 25%).
//!
//! Only rows whose label contains the filter substring (CI: `engine`, the
//! persistent-pool hot path this gate protects) participate; rows present
//! in just one file are reported but never gated, so adding or renaming
//! benches does not break the gate — *losing every gated row does*, loudly,
//! rather than vacuously passing.

use serde::{Deserialize, Serialize};

/// One bench row of a `CRITERION_JSON` report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRow {
    /// Criterion label, e.g. `greedy_evaluators/engine_t4/16`.
    pub label: String,
    /// Mean sample time in nanoseconds.
    pub mean_ns: u64,
    /// Fastest sample time in nanoseconds.
    pub min_ns: u64,
    /// Number of samples taken.
    pub samples: u64,
}

/// One gated row: its label and the fresh/baseline mean-time ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct RowRatio {
    /// The bench label shared by both reports.
    pub label: String,
    /// Baseline mean nanoseconds.
    pub baseline_ns: u64,
    /// Fresh mean nanoseconds.
    pub fresh_ns: u64,
    /// `fresh_ns / baseline_ns`.
    pub ratio: f64,
}

/// The gate's verdict over one baseline/fresh report pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Per-row ratios for every gated (filter-matching, in-both) row.
    pub rows: Vec<RowRatio>,
    /// Median of the row ratios.
    pub median_ratio: f64,
    /// The failure threshold the median was compared against.
    pub max_ratio: f64,
    /// Labels matching the filter that appear in only one report
    /// (reported for visibility, never gated).
    pub unmatched: Vec<String>,
    /// Degenerate rows (zero or non-finite mean in either report) skipped
    /// with a warning instead of poisoning the median.
    pub skipped: Vec<String>,
}

impl GateReport {
    /// Whether the median regression stayed within the allowance.
    pub fn passed(&self) -> bool {
        self.median_ratio <= self.max_ratio
    }
}

/// Median of a non-empty slice (mean of the two middle values when even).
fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Gates `fresh` against `baseline`: rows whose label contains `filter`
/// and appears in both reports are compared by mean time, and the median
/// ratio must not exceed `1 + max_regression`.
///
/// Degenerate rows — a zero `mean_ns` on either side, or a non-finite
/// ratio — come from truncated or corrupt reports (a bench that crashed
/// mid-run, a hand-edited baseline). They are **skipped** and reported in
/// [`GateReport::skipped`] rather than poisoning the median or hard-failing
/// a run whose healthy rows still carry a verdict. Errors when no healthy
/// row remains — a gate with nothing to gate must fail the build, not
/// pass it.
pub fn gate(
    baseline: &[BenchRow],
    fresh: &[BenchRow],
    filter: &str,
    max_regression: f64,
) -> Result<GateReport, String> {
    let mut rows = Vec::new();
    let mut unmatched = Vec::new();
    let mut skipped = Vec::new();
    for base in baseline.iter().filter(|r| r.label.contains(filter)) {
        match fresh.iter().find(|r| r.label == base.label) {
            Some(new) => {
                let ratio = new.mean_ns as f64 / base.mean_ns as f64;
                if base.mean_ns == 0 || new.mean_ns == 0 || !ratio.is_finite() {
                    skipped.push(base.label.clone());
                    continue;
                }
                rows.push(RowRatio {
                    label: base.label.clone(),
                    baseline_ns: base.mean_ns,
                    fresh_ns: new.mean_ns,
                    ratio,
                });
            }
            None => unmatched.push(base.label.clone()),
        }
    }
    for new in fresh.iter().filter(|r| r.label.contains(filter)) {
        if !baseline.iter().any(|r| r.label == new.label) {
            unmatched.push(new.label.clone());
        }
    }
    if rows.is_empty() {
        let detail = if skipped.is_empty() {
            String::new()
        } else {
            format!(
                " ({} degenerate row(s) skipped: {:?})",
                skipped.len(),
                skipped
            )
        };
        return Err(format!(
            "no healthy row matching {filter:?} appears in both reports — \
             nothing to gate{detail}"
        ));
    }
    let mut ratios: Vec<f64> = rows.iter().map(|r| r.ratio).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    Ok(GateReport {
        median_ratio: median(&ratios),
        max_ratio: 1.0 + max_regression,
        rows,
        unmatched,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str, mean_ns: u64) -> BenchRow {
        BenchRow {
            label: label.to_string(),
            mean_ns,
            min_ns: mean_ns / 2,
            samples: 10,
        }
    }

    #[test]
    fn identical_reports_pass_with_unit_median() {
        let rows = vec![row("g/engine_t1/8", 100), row("g/engine_t4/8", 400)];
        let report = gate(&rows, &rows, "engine", 0.25).unwrap();
        assert!(report.passed());
        assert_eq!(report.median_ratio, 1.0);
        assert_eq!(report.rows.len(), 2);
        assert!(report.unmatched.is_empty());
    }

    #[test]
    fn one_noisy_row_cannot_fail_the_median() {
        let baseline = vec![
            row("g/engine_t1/8", 100),
            row("g/engine_t2/8", 100),
            row("g/engine_t4/8", 100),
        ];
        let fresh = vec![
            row("g/engine_t1/8", 300), // 3× outlier on a shared runner
            row("g/engine_t2/8", 101),
            row("g/engine_t4/8", 99),
        ];
        let report = gate(&baseline, &fresh, "engine", 0.25).unwrap();
        assert!(report.passed(), "median {}", report.median_ratio);
        assert!((report.median_ratio - 1.01).abs() < 1e-9);
    }

    #[test]
    fn uniform_regression_beyond_allowance_fails() {
        let baseline = vec![
            row("g/engine_t1/8", 100),
            row("g/engine_t2/8", 200),
            row("g/engine_t4/8", 300),
        ];
        let fresh = vec![
            row("g/engine_t1/8", 130),
            row("g/engine_t2/8", 260),
            row("g/engine_t4/8", 390),
        ];
        let report = gate(&baseline, &fresh, "engine", 0.25).unwrap();
        assert!(!report.passed());
        assert!((report.median_ratio - 1.3).abs() < 1e-9);
        // A looser allowance passes the same pair.
        assert!(gate(&baseline, &fresh, "engine", 0.35).unwrap().passed());
    }

    #[test]
    fn even_row_count_uses_the_middle_mean() {
        let baseline = vec![row("engine/a", 100), row("engine/b", 100)];
        let fresh = vec![row("engine/a", 110), row("engine/b", 130)];
        let report = gate(&baseline, &fresh, "engine", 0.25).unwrap();
        assert!((report.median_ratio - 1.2).abs() < 1e-9);
        assert!(report.passed());
    }

    #[test]
    fn non_engine_rows_are_ignored() {
        let baseline = vec![row("g/naive/8", 100), row("g/engine_t1/8", 100)];
        let fresh = vec![row("g/naive/8", 900), row("g/engine_t1/8", 100)];
        let report = gate(&baseline, &fresh, "engine", 0.25).unwrap();
        assert!(report.passed());
        assert_eq!(report.rows.len(), 1);
    }

    #[test]
    fn renamed_rows_are_reported_but_not_gated() {
        let baseline = vec![row("g/engine_t1/8", 100), row("g/engine_t2/8", 100)];
        let fresh = vec![row("g/engine_t1/8", 100), row("g/engine_v2_t2/8", 100)];
        let report = gate(&baseline, &fresh, "engine", 0.25).unwrap();
        assert!(report.passed());
        assert_eq!(report.rows.len(), 1);
        assert_eq!(
            report.unmatched,
            vec!["g/engine_t2/8".to_string(), "g/engine_v2_t2/8".to_string()]
        );
    }

    #[test]
    fn empty_intersection_is_an_error_not_a_pass() {
        let baseline = vec![row("g/naive/8", 100)];
        let fresh = vec![row("g/naive/8", 100)];
        assert!(gate(&baseline, &fresh, "engine", 0.25).is_err());
        assert!(gate(&[], &[], "engine", 0.25).is_err());
    }

    #[test]
    fn degenerate_rows_are_skipped_with_a_warning_not_gated() {
        // A zero mean on either side marks a corrupt/truncated report row:
        // it must neither poison the median (0 or ∞ ratio) nor fail a run
        // whose healthy rows still carry a verdict.
        let baseline = vec![
            row("engine/zero-base", 0),
            row("engine/zero-fresh", 100),
            row("engine/healthy", 100),
        ];
        let fresh = vec![
            row("engine/zero-base", 10),
            row("engine/zero-fresh", 0),
            row("engine/healthy", 110),
        ];
        let report = gate(&baseline, &fresh, "engine", 0.25).unwrap();
        assert_eq!(report.rows.len(), 1);
        assert_eq!(
            report.skipped,
            vec![
                "engine/zero-base".to_string(),
                "engine/zero-fresh".to_string()
            ]
        );
        assert!((report.median_ratio - 1.1).abs() < 1e-9);
        assert!(report.passed());
    }

    #[test]
    fn empty_after_skip_is_an_error_not_a_pass() {
        // Every matching row degenerate: the gate has nothing healthy to
        // gate and must fail loudly, naming the skipped rows.
        let baseline = vec![row("engine/a", 0), row("engine/b", 100)];
        let fresh = vec![row("engine/a", 10), row("engine/b", 0)];
        let err = gate(&baseline, &fresh, "engine", 0.25).unwrap_err();
        assert!(err.contains("nothing to gate"), "{err}");
        assert!(
            err.contains("engine/a") && err.contains("engine/b"),
            "{err}"
        );
        // Both sides zero (a 0/0 NaN ratio) is skipped the same way.
        let baseline = vec![row("engine/a", 0)];
        let fresh = vec![row("engine/a", 0)];
        assert!(gate(&baseline, &fresh, "engine", 0.25).is_err());
    }

    #[test]
    fn bench_rows_roundtrip_through_criterion_json() {
        let json = r#"[
          {"label": "greedy_evaluators/engine_t1/8", "mean_ns": 12305, "min_ns": 9880, "samples": 10},
          {"label": "greedy_evaluators/naive/8", "mean_ns": 253619, "min_ns": 230357, "samples": 10}
        ]"#;
        let rows: Vec<BenchRow> = serde_json::from_str(json).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "greedy_evaluators/engine_t1/8");
        assert_eq!(rows[0].mean_ns, 12305);
        let back: Vec<BenchRow> =
            serde_json::from_str(&serde_json::to_string(&rows).unwrap()).unwrap();
        assert_eq!(back, rows);
    }
}
