//! Shared harness utilities for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). They accept `--quick` (or the
//! environment variable `CROWDFUSION_QUICK=1`) for a reduced-size smoke run
//! and otherwise print paper-style rows; EXPERIMENTS.md records the
//! full-size results next to the paper's numbers.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod gate;

use crowdfusion::pipeline::entity_cases_from_books;
use crowdfusion::prelude::*;
use crowdfusion_core::round::EntityCase;
use crowdfusion_core::system::ExperimentTrace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Whether the current invocation asked for a reduced-size run
/// (`--quick` argument or `CROWDFUSION_QUICK=1`).
pub fn is_quick() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("CROWDFUSION_QUICK").is_ok_and(|v| v == "1")
}

/// Generates the standard evaluation dataset: `n_books` books with the
/// given statements-per-book range (the paper: 100 books, budget 60 each).
pub fn standard_books(n_books: usize, statements: (usize, usize), seed: u64) -> GeneratedBooks {
    crowdfusion::datagen::book::generate(BookGenConfig {
        n_books,
        statements_per_book: statements,
        seed,
        ..BookGenConfig::default()
    })
}

/// Builds the per-book entity cases with the paper's initialiser
/// (modified CRH).
pub fn standard_cases(books: &GeneratedBooks) -> Vec<EntityCase> {
    let fusion = ModifiedCrh::default()
        .fuse(&books.dataset)
        .expect("fusion succeeds on generated data");
    entity_cases_from_books(books, &fusion).expect("cases build")
}

/// Runs one experiment configuration: `k` tasks per round, budget `b` per
/// book, crowd accuracy `pc` (both simulated and assumed), given selector.
pub fn run_quality_experiment(
    cases: Vec<EntityCase>,
    selector: &dyn TaskSelector,
    k: usize,
    budget: usize,
    pc: f64,
    seed: u64,
) -> ExperimentTrace {
    let config = RoundConfig::new(k, budget, pc).expect("valid config");
    let experiment = Experiment::new(cases, config).expect("valid cases");
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(30, pc).expect("valid pc"),
        UniformAccuracy::new(pc),
        seed,
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
    experiment
        .run(selector, &mut platform, &mut rng)
        .expect("experiment runs")
}

/// Extracts `count + 1` approximately evenly spaced points (always
/// including the first and last) from a trace for compact printing.
pub fn sample_points(trace: &ExperimentTrace, count: usize) -> Vec<QualityPoint> {
    let pts = &trace.points;
    if pts.len() <= count + 1 {
        return pts.clone();
    }
    let mut out = Vec::with_capacity(count + 1);
    for i in 0..=count {
        let idx = i * (pts.len() - 1) / count;
        out.push(pts[idx]);
    }
    out.dedup_by_key(|p| p.cost);
    out
}

/// A single-entity joint prior with `n_facts` facts, produced through the
/// full dataset → modified-CRH → grouped-prior pipeline. Used by the
/// Table V timing harness so the measured distributions have realistic
/// correlation structure.
pub fn bench_prior(n_facts: usize, seed: u64) -> JointDist {
    let books = crowdfusion::datagen::book::generate(BookGenConfig {
        n_books: 1,
        statements_per_book: (n_facts, n_facts),
        authors_per_book: (3, 4),
        seed,
        ..BookGenConfig::default()
    });
    let cases = standard_cases(&books);
    cases.into_iter().next().expect("one book").prior
}

/// One large correlated-fact book (exactly `n_statements` candidate
/// author lists, shared-author correlation groups) as an [`EntityCase`],
/// plus the facts-of-interest set for query mode: the correlation group
/// holding the gold-true variants — the user cares about the true author
/// list, and every format variant of it is equally interesting.
///
/// Beyond `MAX_DENSE_FACTS` statements the returned case carries a
/// sparse-support prior, exercising the sparse answer-table backend end
/// to end.
pub fn large_book_case(n_statements: usize, seed: u64) -> (EntityCase, VarSet) {
    let books = crowdfusion::datagen::book::generate(BookGenConfig {
        n_books: 1,
        seed,
        ..BookGenConfig::large(n_statements)
    });
    let entity = books.dataset.entities()[0].id;
    let gold = books.gold_for(entity);
    let interest = books
        .correlation_groups(entity)
        .into_iter()
        .find(|group| group.iter().any(|&i| gold[i]))
        .expect("every book has a gold-true statement");
    let case = standard_cases(&books)
        .into_iter()
        .next()
        .expect("one book requested");
    (case, VarSet::from_vars(interest))
}

/// Measures the wall-clock time of `f` in seconds.
pub fn time_secs<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// Measures the average wall-clock seconds of `f` over `repeats` runs
/// (the paper averages three runs per configuration).
pub fn time_avg_secs(repeats: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..repeats {
        f();
    }
    start.elapsed().as_secs_f64() / repeats.max(1) as f64
}

/// Formats a duration in seconds with adaptive precision, matching the
/// paper's Table V style.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-4 {
        format!("{:.1}us", s * 1e6)
    } else if s < 0.1 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Prints a quality-vs-cost series with one row per sampled point.
pub fn print_series(label: &str, trace: &ExperimentTrace, samples: usize) {
    println!("  -- {label} --");
    println!(
        "  {:>8} {:>10} {:>8} {:>10} {:>8}",
        "cost", "utility", "F1", "precision", "recall"
    );
    for p in sample_points(trace, samples) {
        println!(
            "  {:>8} {:>10.2} {:>8.3} {:>10.3} {:>8.3}",
            p.cost, p.utility, p.f1, p.precision, p.recall
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdfusion_core::selection::RandomSelector;

    #[test]
    fn bench_prior_has_requested_arity() {
        let p = bench_prior(6, 1);
        assert_eq!(p.num_vars(), 6);
        assert!((p.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn large_book_case_exercises_the_sparse_prior() {
        let (case, interest) = large_book_case(32, 9);
        assert_eq!(case.num_facts(), 32);
        case.validate().unwrap();
        assert!(!interest.is_empty());
        assert!(interest.iter().all(|f| f < 32));
        // Interest facts are the gold-true variants.
        assert!(interest.iter().all(|f| case.gold.get(f)));
    }

    #[test]
    fn quality_experiment_runs() {
        let books = standard_books(4, (3, 5), 2);
        let cases = standard_cases(&books);
        let trace = run_quality_experiment(cases, &RandomSelector, 2, 6, 0.8, 3);
        assert_eq!(trace.points[0].cost, 0);
        assert_eq!(trace.last().cost, 4 * 6);
    }

    #[test]
    fn sampling_keeps_endpoints() {
        let books = standard_books(3, (3, 4), 2);
        let cases = standard_cases(&books);
        let trace = run_quality_experiment(cases, &RandomSelector, 1, 8, 0.8, 3);
        let sampled = sample_points(&trace, 4);
        assert_eq!(sampled.first().unwrap().cost, 0);
        assert_eq!(sampled.last().unwrap().cost, trace.last().cost);
        assert!(sampled.len() <= 5);
    }

    #[test]
    fn formatting_is_adaptive() {
        assert!(fmt_secs(0.00001).ends_with("us"));
        assert!(fmt_secs(0.005).ends_with("ms"));
        assert!(fmt_secs(2.0).ends_with('s'));
    }

    #[test]
    fn timers_measure_positive_durations() {
        let (v, t) = time_secs(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
        assert!(
            time_avg_secs(2, || {
                std::hint::black_box(1 + 1);
            }) >= 0.0
        );
    }
}
