//! Figure 4: how the Pc setting affects F1-score and utility
//! (Approx. vs Random for Pc ∈ {0.7, 0.8, 0.9}), plus the large-n
//! query-mode workload behind the sparse answer-table backend.
//!
//! Expected shape (paper Section V-C-3): higher Pc reaches higher utility
//! at equal cost; Pc = 0.8 and 0.9 achieve similar F1; underestimating
//! crowd reliability slows the procedure down.
//!
//! The second section exercises the paper's "books with facts more than
//! 20" regime: correlated-fact books with n = 32–40 statements
//! (shared-author correlation groups), selected both in query mode
//! (facts of interest = the gold-true variant group) and through the
//! direct / sparse-preprocessed greedy paths, with pooled execution
//! cross-checked to be bit-identical across thread counts.
//!
//! Run with: `cargo run --release -p crowdfusion-bench --bin fig4 [--quick]`
//!
//! `--query-mode` switches to the budgeted quality curves: for each
//! large-n book the FOI-aware round driver
//! ([`crowdfusion_core::query::run_query_rounds`]) spends the budget
//! round by round and the binary emits a `n,cost,plan_q,entropy,accuracy`
//! CSV on stdout (planned utility asserted monotone — CI diffs the
//! artifact).

use crowdfusion::prelude::*;
use crowdfusion_bench::{
    fmt_secs, is_quick, large_book_case, print_series, run_quality_experiment, standard_books,
    standard_cases, time_secs,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pc_sweep(quick: bool) {
    let n_books = if quick { 20 } else { 100 };
    let budget = if quick { 20 } else { 60 };
    let k = 3;
    let books = standard_books(n_books, (3, 8), 77);
    let cases = standard_cases(&books);

    println!("Figure 4 reproduction: {n_books} books, k = {k}, budget {budget} per book");

    for (label, selector) in [
        ("Approx.", &GreedySelector::fast() as &dyn TaskSelector),
        ("Random", &RandomSelector),
    ] {
        println!("\n===== {label} =====");
        for pc in [0.7, 0.8, 0.9] {
            let trace = run_quality_experiment(cases.clone(), selector, k, budget, pc, 55);
            print_series(&format!("Pc = {pc}"), &trace, 6);
        }
    }

    println!("\nShape checks: for each selector the Pc = 0.9 curve dominates the");
    println!("Pc = 0.8 curve, which dominates Pc = 0.7, in utility at equal cost;");
    println!("Pc = 0.8 and 0.9 reach similar final F1 (paper Section V-C-3).");
}

fn large_n_query_mode(quick: bool) {
    let sizes: &[usize] = if quick { &[32] } else { &[32, 36, 40] };
    let (pc, k) = (0.8, 4);
    println!("\n===== Large-n query mode (sparse answer tables) =====");
    println!("correlated-fact books, k = {k}, Pc = {pc}; FOI = gold-true variant group");
    for &n in sizes {
        let (case, interest) = large_book_case(n, 101);
        let prior = &case.prior;
        let mut rng = StdRng::seed_from_u64(3);

        let (query_tasks, t_query) = time_secs(|| {
            QueryGreedySelector::new(interest)
                .select(prior, pc, k, &mut rng)
                .expect("query selection succeeds at large n")
        });
        let q_before = query_utility(prior, interest, VarSet::EMPTY, pc).unwrap();
        let q_after = query_utility(
            prior,
            interest,
            VarSet::from_vars(query_tasks.iter().copied()),
            pc,
        )
        .unwrap();

        let (direct, t_direct) = time_secs(|| {
            GreedySelector::fast()
                .select(prior, pc, k, &mut rng)
                .expect("direct selection succeeds at large n")
        });
        let (pre, t_pre) = time_secs(|| {
            GreedySelector::fast()
                .with_preprocess()
                .select(prior, pc, k, &mut rng)
                .expect("sparse preprocessed selection succeeds at large n")
        });
        assert_eq!(
            direct, pre,
            "sparse preprocessed selection diverged from the direct engine"
        );
        for threads in [2usize, 4] {
            let pooled = GreedySelector::engine(threads)
                .with_preprocess()
                .select(prior, pc, k, &mut rng)
                .expect("pooled selection succeeds at large n");
            assert_eq!(pooled, pre, "selection not thread-count invariant");
        }

        println!(
            "  n = {n:>2} (|O| = {:>4}): query {:?} (Q {q_before:.3} -> {q_after:.3}, {}) | \
             direct {:?} ({}) | pre(sparse) ({}) [thread-invariant OK]",
            prior.support_size(),
            query_tasks,
            fmt_secs(t_query),
            direct,
            fmt_secs(t_direct),
            fmt_secs(t_pre),
        );
    }
}

/// The budgeted quality curves behind the global scheduler: for each
/// large-n book, [`run_query_rounds`] drives the full FOI-aware
/// select–collect–update loop and records budget → quality points. The
/// planned-utility column must be monotone non-decreasing (information
/// never hurts under the corrected Equation 7) — asserted here so the CI
/// artifact can simply be diffed.
fn query_mode_curves(quick: bool) -> String {
    let sizes: &[usize] = if quick { &[32] } else { &[32, 36, 40] };
    let budget = if quick { 12 } else { 20 };
    let (pc, k) = (0.9, 4);
    let mut csv = String::from("n,cost,plan_q,entropy,accuracy\n");
    for &n in sizes {
        let (case, interest) = large_book_case(n, 101);
        let config = RoundConfig::new(k, budget, pc).expect("valid round config");
        let mut platform = CrowdPlatform::new(
            WorkerPool::uniform(30, pc).expect("valid pc"),
            UniformAccuracy::new(pc),
            909,
        );
        let mut rng = StdRng::seed_from_u64(17);
        let mut task_seq = 0;
        let curve = run_query_rounds(
            &case,
            interest,
            config,
            &mut platform,
            &mut rng,
            &mut task_seq,
        )
        .expect("query rounds run at large n");
        assert!(curve.len() >= 2, "the curve must move past the prior");
        for pair in curve.windows(2) {
            assert!(
                pair[1].cost > pair[0].cost,
                "curve points must spend strictly increasing budget"
            );
            assert!(
                pair[1].plan_utility >= pair[0].plan_utility - 1e-12,
                "planned utility regressed at n = {n}: {} -> {}",
                pair[0].plan_utility,
                pair[1].plan_utility
            );
        }
        for p in &curve {
            csv.push_str(&format!(
                "{n},{},{:.6},{:.6},{:.4}\n",
                p.cost, p.plan_utility, p.entropy, p.accuracy
            ));
        }
    }
    csv
}

fn main() {
    let quick = is_quick();
    // `--query-mode` prints ONLY the budget → quality CSV (stable across
    // runs; CI captures and diffs it).
    if std::env::args().any(|a| a == "--query-mode") {
        print!("{}", query_mode_curves(quick));
        return;
    }
    pc_sweep(quick);
    large_n_query_mode(quick);
}
