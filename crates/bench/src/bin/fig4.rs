//! Figure 4: how the Pc setting affects F1-score and utility
//! (Approx. vs Random for Pc ∈ {0.7, 0.8, 0.9}).
//!
//! Expected shape (paper Section V-C-3): higher Pc reaches higher utility
//! at equal cost; Pc = 0.8 and 0.9 achieve similar F1; underestimating
//! crowd reliability slows the procedure down.
//!
//! Run with: `cargo run --release -p crowdfusion-bench --bin fig4 [--quick]`

use crowdfusion::prelude::*;
use crowdfusion_bench::{
    is_quick, print_series, run_quality_experiment, standard_books, standard_cases,
};

fn main() {
    let quick = is_quick();
    let n_books = if quick { 20 } else { 100 };
    let budget = if quick { 20 } else { 60 };
    let k = 3;
    let books = standard_books(n_books, (3, 8), 77);
    let cases = standard_cases(&books);

    println!("Figure 4 reproduction: {n_books} books, k = {k}, budget {budget} per book");

    for (label, selector) in [
        ("Approx.", &GreedySelector::fast() as &dyn TaskSelector),
        ("Random", &RandomSelector),
    ] {
        println!("\n===== {label} =====");
        for pc in [0.7, 0.8, 0.9] {
            let trace = run_quality_experiment(cases.clone(), selector, k, budget, pc, 55);
            print_series(&format!("Pc = {pc}"), &trace, 6);
        }
    }

    println!("\nShape checks: for each selector the Pc = 0.9 curve dominates the");
    println!("Pc = 0.8 curve, which dominates Pc = 0.7, in utility at equal cost;");
    println!("Pc = 0.8 and 0.9 reach similar final F1 (paper Section V-C-3).");
}
