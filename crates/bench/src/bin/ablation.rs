//! Ablations for the design choices called out in DESIGN.md:
//!
//! 1. answer-distribution evaluator: paper-naive vs butterfly transform;
//! 2. pruning bound: none vs safe vs paper-log vs dominance — time *and*
//!    selection-quality impact;
//! 3. preprocessing parallelism: serial vs crossbeam-sharded (the paper's
//!    MapReduce claim);
//! 4. assumed-vs-true crowd accuracy mismatch (the risk Figure 4 hints at).
//!
//! Run with: `cargo run --release -p crowdfusion-bench --bin ablation [--quick]`

use crowdfusion::prelude::*;
use crowdfusion_bench::{
    bench_prior, fmt_secs, is_quick, run_quality_experiment, standard_books, standard_cases,
    time_avg_secs,
};
use crowdfusion_core::answers::{answer_entropy, AnswerEvaluator};
use crowdfusion_core::parallel::{
    full_answer_distribution_butterfly_parallel, full_answer_distribution_naive_parallel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = is_quick();
    let n = if quick { 10 } else { 14 };
    let repeats = if quick { 2 } else { 5 };
    let dist = bench_prior(n, 3);
    let pc = 0.8;

    println!("== Ablation 1: evaluator (one greedy selection, k = 6, n = {n}) ==");
    for (label, selector) in [
        ("naive (paper)", GreedySelector::paper_approx()),
        (
            "butterfly (ours)",
            GreedySelector::paper_approx().with_evaluator(AnswerEvaluator::Butterfly),
        ),
        (
            "preprocessed (Algorithm 2)",
            GreedySelector::paper_approx()
                .with_evaluator(AnswerEvaluator::Butterfly)
                .with_preprocess(),
        ),
    ] {
        let secs = time_avg_secs(repeats, || {
            let mut rng = StdRng::seed_from_u64(0);
            std::hint::black_box(selector.select(&dist, pc, 6, &mut rng).unwrap());
        });
        println!("  {label:<28} {:>12}", fmt_secs(secs));
    }

    println!("\n== Ablation 2: pruning bound (time + fidelity, k = 6) ==");
    let mut rng = StdRng::seed_from_u64(0);
    let reference = GreedySelector::paper_approx()
        .select(&dist, pc, 6, &mut rng)
        .unwrap();
    let h_of = |tasks: &[usize]| {
        answer_entropy(
            &dist,
            VarSet::from_vars(tasks.iter().copied()),
            pc,
            AnswerEvaluator::Butterfly,
        )
        .unwrap()
    };
    let h_ref = h_of(&reference);
    for (label, bound) in [
        ("safe (k−|T|−1 bits)", Some(PruneBound::Safe)),
        ("paper log2(k−|T|−1)", Some(PruneBound::PaperAggressive)),
        ("dominance (slack 0)", Some(PruneBound::Dominance)),
        ("no pruning", None),
    ] {
        let mut selector = GreedySelector::paper_approx();
        if let Some(b) = bound {
            selector = selector.with_prune(b);
        }
        let secs = time_avg_secs(repeats, || {
            let mut rng = StdRng::seed_from_u64(0);
            std::hint::black_box(selector.select(&dist, pc, 6, &mut rng).unwrap());
        });
        let mut rng = StdRng::seed_from_u64(0);
        let tasks = selector.select(&dist, pc, 6, &mut rng).unwrap();
        let same = tasks == reference;
        let h = h_of(&tasks);
        println!(
            "  {label:<22} {:>10}  identical: {:<5}  H(T) = {:.4} ({:+.4} vs unpruned)",
            fmt_secs(secs),
            same,
            h,
            h - h_ref
        );
    }

    println!("\n== Ablation 3: preprocessing parallelism (n = {n}) ==");
    for threads in [1usize, 2, 4, 8] {
        let naive = time_avg_secs(repeats, || {
            std::hint::black_box(
                full_answer_distribution_naive_parallel(&dist, pc, threads).unwrap(),
            );
        });
        let butterfly = time_avg_secs(repeats, || {
            std::hint::black_box(
                full_answer_distribution_butterfly_parallel(&dist, pc, threads).unwrap(),
            );
        });
        println!(
            "  threads {threads}: naive O(|O|^2) = {:>10}, butterfly = {:>10}",
            fmt_secs(naive),
            fmt_secs(butterfly)
        );
    }

    println!("\n== Ablation 4: assumed Pc vs true crowd accuracy ==");
    let books = standard_books(if quick { 10 } else { 30 }, (3, 6), 8);
    let cases = standard_cases(&books);
    println!(
        "  {:>10} {:>10} {:>10} {:>10}",
        "true Pc", "assumed", "final F1", "final util"
    );
    for (true_pc, assumed) in [
        (0.85, 0.85),
        (0.85, 0.6),  // underestimate: slow, over-asks
        (0.85, 0.99), // overestimate: overconfident updates
        (0.7, 0.7),
        (0.7, 0.95),
    ] {
        // Build the platform at the true accuracy but plan/update with the
        // assumed one.
        let config = RoundConfig::new(2, 20, assumed).unwrap();
        let experiment = Experiment::new(cases.clone(), config).unwrap();
        let mut platform = CrowdPlatform::new(
            WorkerPool::uniform(20, true_pc).unwrap(),
            UniformAccuracy::new(true_pc),
            5,
        );
        let mut rng = StdRng::seed_from_u64(5);
        let trace = experiment
            .run(&GreedySelector::fast(), &mut platform, &mut rng)
            .unwrap();
        println!(
            "  {true_pc:>10.2} {assumed:>10.2} {:>10.3} {:>10.2}",
            trace.last().f1,
            trace.last().utility
        );
    }
    println!("\n  Matching the paper's advice: estimate Pc with a gold pre-test —");
    println!("  both under- and over-estimating the crowd costs quality.");
    let _ = run_quality_experiment; // re-exported for other binaries
}
