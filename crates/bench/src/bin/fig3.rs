//! Figure 3: quality improvement with different k settings (k = 1..6),
//! Approx. vs Random, Pc ∈ {0.7, 0.8, 0.9}, budget B = 60 per book.
//!
//! Expected shape (paper Section V-C-2): for Approx., *smaller* k performs
//! better at equal cost (each round re-targets the most informative facts);
//! for Random it is the reverse (larger k avoids duplicate draws across
//! rounds). The k effect is strongest at low Pc.
//!
//! Run with: `cargo run --release -p crowdfusion-bench --bin fig3 [--quick]`

use crowdfusion::prelude::*;
use crowdfusion_bench::{is_quick, run_quality_experiment, standard_books, standard_cases};

fn main() {
    let quick = is_quick();
    let n_books = if quick { 20 } else { 100 };
    let budget = if quick { 20 } else { 60 };
    let ks: &[usize] = if quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 3, 4, 5, 6]
    };
    let books = standard_books(n_books, (3, 8), 31);
    let cases = standard_cases(&books);

    println!("Figure 3 reproduction: {n_books} books, budget {budget} per book, k sweep {ks:?}");

    for pc in [0.7, 0.8, 0.9] {
        println!("\n===== Pc = {pc} =====");
        println!(
            "{:>8} {:>4} {:>12} {:>10} {:>12} {:>10}",
            "method", "k", "final util", "final F1", "mid util", "mid F1"
        );
        for &k in ks {
            for (label, selector) in [
                ("approx", &GreedySelector::fast() as &dyn TaskSelector),
                ("random", &RandomSelector),
            ] {
                let trace =
                    run_quality_experiment(cases.clone(), selector, k, budget, pc, 40 + k as u64);
                let mid = &trace.points[trace.points.len() / 2];
                let last = trace.last();
                println!(
                    "{label:>8} {k:>4} {:>12.2} {:>10.3} {:>12.2} {:>10.3}",
                    last.utility, last.f1, mid.utility, mid.f1
                );
            }
        }
    }

    println!("\nShape checks: at equal budget, Approx. with smaller k ends with");
    println!("higher utility/F1; Random benefits from larger k; Approx. beats");
    println!("Random in every configuration (strongest at Pc = 0.7).");
}
