//! Table V: one-round average running times of the five selection
//! approaches (OPT, Approx., Approx.&Prune, Approx.&Pre.,
//! Approx.&Prune&Pre.) as `k` grows.
//!
//! The paper measures books with more than 20 facts on a Xeon cluster; we
//! scale the fact count down so the full sweep completes in minutes on a
//! laptop — the judgment criterion is the *shape*: OPT explodes
//! exponentially (the paper gave up waiting at k = 4 after five days),
//! plain Approx. grows quickly with k, pruning flattens the curve to
//! near-constant, and preprocessing makes the growth mildly linear.
//!
//! Run with: `cargo run --release -p crowdfusion-bench --bin table5 [--quick]`

use crowdfusion_bench::{bench_prior, fmt_secs, is_quick, time_avg_secs};
use crowdfusion_core::selection::SelectorKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let quick = is_quick();
    let n_facts = if quick { 10 } else { 14 };
    let repeats = if quick { 1 } else { 3 };
    let max_k = if quick { 6 } else { 10 };
    let opt_max_k = 3; // the paper also stops OPT at k = 3
    let dist = bench_prior(n_facts, 7);

    println!("Table V reproduction: one-round selection time (averaged over {repeats} runs)");
    println!(
        "facts per book n = {n_facts}, support |O| = {}",
        dist.support_size()
    );
    println!();
    print!("{:>3}", "k");
    for kind in SelectorKind::TABLE_V {
        print!(" {:>20}", kind.label());
    }
    println!();

    for k in 1..=max_k {
        print!("{k:>3}");
        for kind in SelectorKind::TABLE_V {
            if kind == SelectorKind::Opt && k > opt_max_k {
                print!(" {:>20}", "-");
                continue;
            }
            let selector = kind.build();
            let secs = time_avg_secs(repeats, || {
                let mut rng = StdRng::seed_from_u64(1);
                let tasks = selector
                    .select(&dist, 0.8, k, &mut rng)
                    .expect("selection succeeds");
                std::hint::black_box(tasks);
            });
            print!(" {:>20}", fmt_secs(secs));
        }
        println!();
    }

    println!();
    println!("Shape checks vs the paper:");
    println!("  * OPT grows exponentially in k and is dropped beyond k = {opt_max_k};");
    println!("  * Approx. grows steeply with k (its per-candidate marginal is brute-force);");
    println!("  * Approx.&Prune stays near-constant w.r.t. k;");
    println!("  * Approx.&Pre. grows mildly (one linear scan per candidate);");
    println!("  * Approx.&Prune&Pre. is the fastest at large k.");
}
