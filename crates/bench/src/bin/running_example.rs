//! Tables I–IV: the paper's running example, printed in the paper's row
//! format, plus the worked numbers of Sections III-A and III-D.
//!
//! Run with: `cargo run --release -p crowdfusion-bench --bin running_example`

use crowdfusion::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Prints a 16-row judgment table in the paper's order (o1 = FFFF first,
/// f4 varying fastest).
fn print_judgment_table(header: &str, prob_of: impl Fn(usize) -> f64) {
    println!("{header}");
    println!(
        "  {:>4} {:>3} {:>3} {:>3} {:>3} {:>8}",
        "row", "f1", "f2", "f3", "f4", "P"
    );
    for row in 0..16usize {
        // Row bit 3 -> f1 (var 0) … bit 0 -> f4 (var 3).
        let mut pattern = 0usize;
        for v in 0..4 {
            if (row >> (3 - v)) & 1 == 1 {
                pattern |= 1 << v;
            }
        }
        let judge = |v: usize| if (pattern >> v) & 1 == 1 { "T" } else { "F" };
        println!(
            "  {:>4} {:>3} {:>3} {:>3} {:>3} {:>8.3}",
            row + 1,
            judge(0),
            judge(1),
            judge(2),
            judge(3),
            prob_of(pattern)
        );
    }
}

fn main() {
    let facts = FactSet::running_example();
    let pc = 0.8;

    println!("== Table I: facts with uncertainty ==");
    println!(
        "  {:<4} {:<12} {:<20} {:<12} {:>6}",
        "Fid", "Entity", "Attribute", "Value", "P(f)"
    );
    for (i, (fact, m)) in facts.facts().iter().zip(facts.marginals()).enumerate() {
        println!(
            "  f{:<3} {:<12} {:<20} {:<12} {:>6.2}",
            i + 1,
            fact.subject,
            fact.predicate,
            fact.object,
            m
        );
    }

    println!();
    print_judgment_table("== Table II: output joint distribution ==", |pattern| {
        facts.dist().prob(Assignment(pattern as u64))
    });

    println!();
    println!("== Table III: fact entropy vs task entropy of all 2-subsets (Pc = 0.8) ==");
    println!("  (our self-consistent labelling; see DESIGN.md for the paper's");
    println!("   Table III label permutation f1<->f4, f2<->f3)");
    println!("  {:<10} {:>18} {:>12}", "T", "H({f_i in T})", "H(T)");
    for a in 0..4usize {
        for b in (a + 1)..4 {
            let t = VarSet::from_vars([a, b]);
            let h_fact = answer_entropy(facts.dist(), t, 1.0, AnswerEvaluator::Naive).unwrap();
            let h_task = answer_entropy(facts.dist(), t, pc, AnswerEvaluator::Naive).unwrap();
            println!(
                "  {{f{}, f{}}} {:>18.3} {:>12.3}",
                a + 1,
                b + 1,
                h_fact,
                h_task
            );
        }
    }

    println!();
    let table_iv =
        answer_distribution(facts.dist(), VarSet::all(4), pc, AnswerEvaluator::Butterfly).unwrap();
    print_judgment_table(
        "== Table IV: answer joint distribution (Pc = 0.8) ==",
        |pattern| table_iv[pattern],
    );

    println!();
    println!("== Section III-A worked numbers ==");
    let single =
        answer_distribution(facts.dist(), VarSet::single(0), pc, AnswerEvaluator::Naive).unwrap();
    println!(
        "  P(e = \"f1 answered true\") = {:.3}   (paper: 0.5)",
        single[1]
    );
    let post = posterior(facts.dist(), &[0], &[true], pc).unwrap();
    println!(
        "  P(o1 | e) = {:.3}   (paper: 0.012)",
        post.prob(Assignment(0b0000))
    );
    println!(
        "  P(o9 | e) = {:.3}   (paper: 0.064)",
        post.prob(Assignment(0b0001))
    );

    println!();
    println!("== Section III-D greedy walk-through ==");
    let mut rng = StdRng::seed_from_u64(0);
    let first = GreedySelector::fast()
        .select(facts.dist(), pc, 1, &mut rng)
        .unwrap();
    let h1 = answer_entropy(
        facts.dist(),
        VarSet::from_vars(first.iter().copied()),
        pc,
        AnswerEvaluator::Butterfly,
    )
    .unwrap();
    println!(
        "  round 1 picks f{} with H = {h1:.3} (paper: f1, H = 1)",
        first[0] + 1
    );
    let both = GreedySelector::fast()
        .select(facts.dist(), pc, 2, &mut rng)
        .unwrap();
    let h2 = answer_entropy(
        facts.dist(),
        VarSet::from_vars(both.iter().copied()),
        pc,
        AnswerEvaluator::Butterfly,
    )
    .unwrap();
    println!(
        "  round 2 adds f{} reaching H = {h2:.3} (paper: f4, H = 1.997)",
        both[1] + 1
    );
}
