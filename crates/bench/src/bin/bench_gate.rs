//! CI bench-regression gate (see `crowdfusion_bench::gate`).
//!
//! ```text
//! bench_gate BASELINE.json FRESH.json [--filter SUBSTR] [--max-regression PCT]
//! ```
//!
//! Compares a fresh `CRITERION_JSON` report against the committed baseline
//! and exits non-zero when the median mean-time ratio over the rows whose
//! label contains `SUBSTR` (default `engine`) exceeds `1 + PCT/100`
//! (default 25%). CI wires it as:
//!
//! ```text
//! bench_gate BENCH_selection.json bench-out/BENCH_selection.json
//! ```

use crowdfusion_bench::gate::{gate, BenchRow};
use std::process::ExitCode;

fn load(path: &str) -> Result<Vec<BenchRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e:?}"))
}

fn run() -> Result<bool, String> {
    let mut positional = Vec::new();
    let mut filter = "engine".to_string();
    let mut max_regression = 0.25;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--filter" => {
                filter = args.next().ok_or("--filter needs a value")?;
            }
            "--max-regression" => {
                let raw = args.next().ok_or("--max-regression needs a value")?;
                let pct: f64 = raw
                    .parse()
                    .map_err(|_| format!("--max-regression {raw:?} is not a number"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!("--max-regression {raw:?} must be non-negative"));
                }
                max_regression = pct / 100.0;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other:?}"));
            }
            other => positional.push(other.to_string()),
        }
    }
    let [baseline_path, fresh_path] = positional.as_slice() else {
        return Err(
            "usage: bench_gate BASELINE.json FRESH.json [--filter SUBSTR] \
                    [--max-regression PCT]"
                .to_string(),
        );
    };

    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;
    let report = gate(&baseline, &fresh, &filter, max_regression)?;

    println!("bench gate: {fresh_path} vs baseline {baseline_path} (filter {filter:?})");
    println!(
        "  {:<40} {:>12} {:>12} {:>8}",
        "label", "baseline", "fresh", "ratio"
    );
    for row in &report.rows {
        println!(
            "  {:<40} {:>10}ns {:>10}ns {:>8.3}",
            row.label, row.baseline_ns, row.fresh_ns, row.ratio
        );
    }
    for label in &report.unmatched {
        println!("  {label:<40} (present in only one report; not gated)");
    }
    for label in &report.skipped {
        eprintln!("bench_gate: warning: skipped degenerate row {label:?} (zero/non-finite mean)");
    }
    println!(
        "  median ratio {:.3} vs allowed {:.3} -> {}",
        report.median_ratio,
        report.max_ratio,
        if report.passed() { "PASS" } else { "FAIL" }
    );
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_gate: {message}");
            ExitCode::FAILURE
        }
    }
}
