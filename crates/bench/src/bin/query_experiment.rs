//! Query-based CrowdFusion experiment (Section IV — the paper proposes the
//! extension without evaluating it; this harness fills that gap).
//!
//! Compares three strategies on correlated country facts, at equal budget:
//! * query-based greedy over all facts (Section IV),
//! * general greedy (ignores the facts-of-interest restriction),
//! * random.
//!
//! Metrics: residual entropy H(I) of the facts of interest and accuracy on
//! them.
//!
//! Run with: `cargo run --release -p crowdfusion-bench --bin query_experiment [--quick]`

use crowdfusion::datagen::country::generate;
use crowdfusion::prelude::*;
use crowdfusion_bench::is_quick;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Outcome {
    residual_entropy: f64,
    accuracy: f64,
}

fn run_strategy(
    countries: &[crowdfusion::datagen::CountryFacts],
    pc: f64,
    budget: usize,
    seed: u64,
    make_selector: impl Fn(&crowdfusion::datagen::CountryFacts) -> Box<dyn TaskSelector>,
) -> Outcome {
    let mut h_total = 0.0;
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, country) in countries.iter().enumerate() {
        let selector = make_selector(country);
        let mut dist = country.prior.clone();
        let mut platform = CrowdPlatform::new(
            WorkerPool::uniform(10, pc).unwrap(),
            UniformAccuracy::new(pc),
            seed * 1000 + i as u64,
        );
        let mut rng = StdRng::seed_from_u64(seed * 7000 + i as u64);
        let mut remaining = budget;
        let mut seq = 0u64;
        while remaining > 0 {
            let k = remaining.min(2);
            let tasks = selector.select(&dist, pc, k, &mut rng).unwrap();
            if tasks.is_empty() {
                break;
            }
            let crowd_tasks: Vec<Task> = tasks
                .iter()
                .map(|&f| {
                    seq += 1;
                    Task::new(seq, country.labels[f].clone())
                })
                .collect();
            let truths: Vec<bool> = tasks.iter().map(|&f| country.gold.get(f)).collect();
            let answers = platform.publish(&crowd_tasks, &truths).unwrap();
            let judgments: Vec<bool> = answers.iter().map(|a| a.value).collect();
            dist = crowdfusion::core::answers::posterior(&dist, &tasks, &judgments, pc).unwrap();
            remaining -= tasks.len();
        }
        h_total += dist.restrict(country.interest).unwrap().entropy();
        let predicted = dist.map_truth();
        for v in country.interest.iter() {
            total += 1;
            if predicted.get(v) == country.gold.get(v) {
                correct += 1;
            }
        }
    }
    Outcome {
        residual_entropy: h_total,
        accuracy: correct as f64 / total.max(1) as f64,
    }
}

fn main() {
    let quick = is_quick();
    let n_countries = if quick { 10 } else { 40 };
    let seeds: u64 = if quick { 2 } else { 5 };
    let pc = 0.8;
    let countries = generate(CountryGenConfig {
        n_countries,
        implication_penalty: 0.08,
        exclusivity_penalty: 0.02,
        marginal_noise: 0.45,
        seed: 12,
    });

    println!("Query-based experiment: {n_countries} countries, Pc = {pc}, {seeds} seeds averaged");
    println!(
        "{:>8} {:>22} {:>22} {:>22}",
        "budget", "query-greedy", "general greedy", "random"
    );
    println!(
        "{:>8} {:>12} {:>9} {:>12} {:>9} {:>12} {:>9}",
        "", "H(I) bits", "acc(I)", "H(I) bits", "acc(I)", "H(I) bits", "acc(I)"
    );
    for budget in [2usize, 4, 6, 8, 10] {
        let mut results = Vec::new();
        for strategy in 0..3usize {
            let mut h = 0.0;
            let mut acc = 0.0;
            for seed in 0..seeds {
                let outcome = run_strategy(&countries, pc, budget, seed + 1, |c| match strategy {
                    0 => Box::new(QueryGreedySelector::new(c.interest)),
                    1 => Box::new(GreedySelector::fast()),
                    _ => Box::new(RandomSelector),
                });
                h += outcome.residual_entropy;
                acc += outcome.accuracy;
            }
            results.push((h / seeds as f64, acc / seeds as f64));
        }
        println!(
            "{budget:>8} {:>12.3} {:>9.3} {:>12.3} {:>9.3} {:>12.3} {:>9.3}",
            results[0].0, results[0].1, results[1].0, results[1].1, results[2].0, results[2].1
        );
    }

    println!("\nShape checks: at small budgets the query-based greedy reaches the");
    println!("lowest residual H(I) — it spends questions only where they inform");
    println!("the facts of interest (possibly via correlated outside facts),");
    println!("while the general greedy also reduces uncertainty the user never");
    println!("asked about (the strategies converge once the budget is large");
    println!("enough to cover everything). \"If we are not interested in all");
    println!("aspects, we can get higher accuracy by asking fewer tasks\" (§IV).");
}
