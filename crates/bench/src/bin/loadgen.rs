//! Service load generator: replays datagen books against a live
//! `crowdfusion-serve` daemon, N sessions wide, over real TCP loopback.
//!
//! ```text
//! loadgen [--sessions N] [--clients C] [--threads T] [--k K] [--budget B]
//!         [--pc PC] [--seed S] [--json PATH] [--wal-dir DIR] [--quick]
//! ```
//!
//! The generated books are fused (modified CRH), shipped to the daemon in
//! the wire format, and every session is driven to budget exhaustion by a
//! pool of client threads — each round's answers replayed from the
//! session's recorded seed and delivered in two partial batches, the
//! ingestion pattern a real crowd produces. Reported throughput
//! (sessions/s, answers/s, requests/s) lands in the same `BenchRow` JSON
//! the criterion benches emit, so the bench-gate tooling can diff it.
//!
//! `--wal-dir` runs the daemon crash-safe (every mutation journalled —
//! the durability overhead shows up directly in the request throughput)
//! and additionally measures **recovery time**: the populated directory
//! is copied aside before shutdown and a fresh daemon is booted from the
//! copy, timing the full snapshot-load + journal-replay path.

use crowdfusion::pipeline::entity_specs_from_books;
use crowdfusion::prelude::*;
use crowdfusion_bench::gate::BenchRow;
use crowdfusion_bench::{fmt_secs, is_quick, standard_books, time_secs};
use crowdfusion_core::round::RoundConfig;
use crowdfusion_crowd::AnswerReplay;
use crowdfusion_service::protocol::{Request, Response, WireAnswer};
use crowdfusion_service::{
    serve_tcp, Client, DurabilityConfig, SelectorChoice, Service, ServiceConfig,
};
use std::net::TcpListener;
use std::sync::Arc;

struct Args {
    sessions: usize,
    clients: usize,
    threads: usize,
    k: usize,
    budget: usize,
    pc: f64,
    seed: u64,
    json: Option<String>,
    wal_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let quick = is_quick();
    let mut parsed = Args {
        sessions: if quick { 8 } else { 48 },
        clients: if quick { 2 } else { 4 },
        threads: crowdfusion_core::pool::threads_from_env().unwrap_or(2),
        k: 2,
        budget: if quick { 8 } else { 24 },
        pc: 0.8,
        seed: 7,
        json: None,
        wal_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("--{name} needs a value"));
        match arg.as_str() {
            "--quick" => {} // handled by is_quick()
            "--sessions" => {
                parsed.sessions = value("sessions")?.parse().map_err(|e| format!("{e}"))?
            }
            "--clients" => {
                parsed.clients = value("clients")?.parse().map_err(|e| format!("{e}"))?
            }
            "--threads" => {
                parsed.threads = value("threads")?.parse().map_err(|e| format!("{e}"))?
            }
            "--k" => parsed.k = value("k")?.parse().map_err(|e| format!("{e}"))?,
            "--budget" => parsed.budget = value("budget")?.parse().map_err(|e| format!("{e}"))?,
            "--pc" => parsed.pc = value("pc")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => parsed.seed = value("seed")?.parse().map_err(|e| format!("{e}"))?,
            "--json" => parsed.json = Some(value("json")?),
            "--wal-dir" => parsed.wal_dir = Some(value("wal-dir")?),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if parsed.sessions == 0 || parsed.clients == 0 {
        return Err("--sessions and --clients must be positive".to_string());
    }
    Ok(parsed)
}

/// Drives one session to exhaustion; returns (answers absorbed, requests).
fn drive_session(
    client: &mut Client,
    session: u64,
    answer_seed: u64,
    gold: &[bool],
    pool: &WorkerPool,
    model: &UniformAccuracy,
) -> (u64, u64) {
    let mut replay = AnswerReplay::from_seed(answer_seed);
    let mut answers_absorbed = 0u64;
    let mut requests = 0u64;
    loop {
        requests += 1;
        let tasks = match client.roundtrip(&Request::Select { session }).unwrap() {
            Response::Round { tasks, .. } => tasks,
            Response::Exhausted { .. } => return (answers_absorbed, requests),
            other => panic!("unexpected select response {other:?}"),
        };
        let crowd_tasks: Vec<Task> = tasks
            .iter()
            .map(|t| Task {
                id: crowdfusion_crowd::TaskId(t.id),
                prompt: t.prompt.clone(),
                class: t.class,
            })
            .collect();
        let truths: Vec<bool> = tasks.iter().map(|t| gold[t.fact]).collect();
        let wire: Vec<WireAnswer> = replay
            .answers(pool, model, &crowd_tasks, &truths)
            .unwrap()
            .iter()
            .map(|a| WireAnswer {
                task: a.task.0,
                value: a.value,
            })
            .collect();
        // Two partial deliveries per round: the streaming ingestion path,
        // not a single closed-loop batch.
        let cut = wire.len().div_ceil(2);
        for batch in [&wire[..cut], &wire[cut..]] {
            if batch.is_empty() {
                continue;
            }
            requests += 1;
            match client
                .roundtrip(&Request::Absorb {
                    session,
                    answers: batch.to_vec(),
                })
                .unwrap()
            {
                Response::Absorbed { accepted, .. } => answers_absorbed += accepted as u64,
                other => panic!("unexpected absorb response {other:?}"),
            }
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::exit(2);
        }
    };

    // Dataset → fusion → wire specs (the refine pipeline's front half).
    let books = standard_books(args.sessions, (3, 6), args.seed);
    let fusion = ModifiedCrh::default()
        .fuse(&books.dataset)
        .expect("fusion succeeds on generated data");
    let specs = entity_specs_from_books(&books, &fusion);
    let golds: Vec<Vec<bool>> = specs.iter().map(|s| s.gold.clone()).collect();

    // Daemon on loopback.
    let config = RoundConfig::new(args.k, args.budget, args.pc).expect("valid config");
    let mut service_config =
        ServiceConfig::new(args.seed, config, args.threads, SelectorChoice::Greedy);
    if let Some(dir) = &args.wal_dir {
        service_config.durability = Some(DurabilityConfig::new(dir));
    }
    let service = Arc::new(Service::new(service_config.clone()).expect("service boots"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let daemon = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_tcp(service, listener))
    };

    println!(
        "loadgen: {} sessions x budget {} (k = {}, Pc = {}), {} client(s), {} pool thread(s), daemon {addr}",
        args.sessions, args.budget, args.k, args.pc, args.clients, args.threads
    );

    // Open every session up front (one batch: priors built on the pool).
    let mut opener = Client::connect(addr).expect("connect");
    let (opened, open_secs) = time_secs(|| {
        match opener
            .roundtrip(&Request::Open {
                request: None,
                entities: specs.clone(),
                k: None,
                budget: None,
                pc: None,
            })
            .expect("open")
        {
            Response::Opened { sessions } => sessions,
            other => panic!("unexpected open response {other:?}"),
        }
    });
    assert_eq!(opened.len(), args.sessions);

    // Fan the sessions across client threads and drive them all.
    let worker_pool = WorkerPool::uniform(30, args.pc).expect("worker pool");
    let model = UniformAccuracy::new(args.pc);
    let ((answers, requests), drive_secs) = time_secs(|| {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in opened.chunks(args.sessions.div_ceil(args.clients)) {
                let worker_pool = &worker_pool;
                let model = &model;
                let golds = &golds;
                handles.push(scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut totals = (0u64, 0u64);
                    for info in chunk {
                        let (answers, requests) = drive_session(
                            &mut client,
                            info.session,
                            info.answer_seed,
                            &golds[info.session as usize],
                            worker_pool,
                            model,
                        );
                        totals.0 += answers;
                        totals.1 += requests;
                    }
                    totals
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .fold((0u64, 0u64), |acc, t| (acc.0 + t.0, acc.1 + t.1))
        })
    });
    assert_eq!(answers, (args.sessions * args.budget) as u64);

    // Final quality + shutdown.
    let trace = match opener.roundtrip(&Request::Trace).expect("trace") {
        Response::Trace { trace } => trace,
        other => panic!("unexpected trace response {other:?}"),
    };
    // Crash-recovery timing: copy the live WAL directory aside *before*
    // the graceful shutdown drains it into a final snapshot, so the copy
    // looks like a kill -9 (snapshot + journal tail) and the measured
    // boot exercises the real snapshot-load + journal-replay path.
    let recovery_copy = args.wal_dir.as_ref().map(|dir| {
        let copy = std::path::Path::new(dir).with_extension("recover");
        let _ = std::fs::remove_dir_all(&copy);
        std::fs::create_dir_all(&copy).expect("create recovery copy dir");
        for file in std::fs::read_dir(dir).expect("read wal dir") {
            let file = file.expect("dir entry");
            std::fs::copy(file.path(), copy.join(file.file_name())).expect("copy wal file");
        }
        copy
    });
    let _ = opener.roundtrip(&Request::Shutdown);
    daemon.join().expect("daemon thread").expect("daemon io");

    let recovery = recovery_copy.map(|copy| {
        let mut boot_config = service_config.clone();
        boot_config.durability = Some(DurabilityConfig::new(&copy));
        let (revived, secs) = time_secs(|| Service::new(boot_config).expect("recovery boots"));
        drop(revived);
        let _ = std::fs::remove_dir_all(&copy);
        secs
    });

    let per = |count: u64, secs: f64| count as f64 / secs.max(1e-9);
    println!(
        "  open    : {} sessions in {} ({:.0} sessions/s)",
        args.sessions,
        fmt_secs(open_secs),
        per(args.sessions as u64, open_secs),
    );
    println!(
        "  drive   : {answers} answers / {requests} requests in {} \
         ({:.0} sessions/s, {:.0} answers/s, {:.0} requests/s)",
        fmt_secs(drive_secs),
        per(args.sessions as u64, drive_secs),
        per(answers, drive_secs),
        per(requests, drive_secs),
    );
    println!(
        "  quality : F1 {:.3} -> {:.3} over cost {}",
        trace.points[0].f1,
        trace.last().f1,
        trace.last().cost
    );
    if let Some(secs) = recovery {
        println!(
            "  recover : {} sessions in {} ({:.2} ms/session)",
            args.sessions,
            fmt_secs(secs),
            secs * 1e3 / args.sessions as f64,
        );
    }

    if let Some(path) = args.json {
        let ns = |count: u64, secs: f64| ((secs * 1e9) / count.max(1) as f64) as u64;
        let mut rows = vec![
            BenchRow {
                label: "serve/loadgen/open_per_session".to_string(),
                mean_ns: ns(args.sessions as u64, open_secs),
                min_ns: ns(args.sessions as u64, open_secs),
                samples: args.sessions as u64,
            },
            BenchRow {
                label: "serve/loadgen/session".to_string(),
                mean_ns: ns(args.sessions as u64, drive_secs),
                min_ns: ns(args.sessions as u64, drive_secs),
                samples: args.sessions as u64,
            },
            BenchRow {
                label: "serve/loadgen/answer".to_string(),
                mean_ns: ns(answers, drive_secs),
                min_ns: ns(answers, drive_secs),
                samples: answers,
            },
            BenchRow {
                label: "serve/loadgen/request".to_string(),
                mean_ns: ns(requests, drive_secs),
                min_ns: ns(requests, drive_secs),
                samples: requests,
            },
        ];
        if let Some(secs) = recovery {
            rows.push(BenchRow {
                label: "serve/loadgen/recover_per_session".to_string(),
                mean_ns: ns(args.sessions as u64, secs),
                min_ns: ns(args.sessions as u64, secs),
                samples: args.sessions as u64,
            });
        }
        let text = serde_json::to_string_pretty(&rows).expect("rows serialise");
        std::fs::write(&path, text).expect("write json");
        println!("  wrote {path}");
    }
}
