//! Service load generator: replays datagen books against a live
//! `crowdfusion-serve` daemon, N sessions wide, over real TCP loopback.
//!
//! ```text
//! loadgen [--sessions N] [--clients C] [--threads T] [--k K] [--budget B]
//!         [--pc PC] [--seed S] [--json PATH] [--wal-dir DIR]
//!         [--group-commit] [--matrix] [--sched] [--quick]
//! ```
//!
//! The generated books are fused (modified CRH), shipped to the daemon in
//! the wire format, and every session is driven to budget exhaustion by a
//! pool of client threads — each round's answers replayed from the
//! session's recorded seed and delivered in two partial batches, the
//! ingestion pattern a real crowd produces. The whole drive rides the
//! typed client API (`client.open_all(..)` / `session.select()` /
//! `session.absorb(..)`), so the bench also exercises the public surface
//! integrators use. Reported throughput (sessions/s, answers/s,
//! requests/s) lands in the same `BenchRow` JSON the criterion benches
//! emit, so the bench-gate tooling can diff it.
//!
//! `--wal-dir` runs the daemon crash-safe (every mutation journalled —
//! the durability overhead shows up directly in the request throughput)
//! and additionally measures **recovery time**: the populated directory
//! is copied aside before shutdown and a fresh daemon is booted from the
//! copy, timing the full snapshot-load + journal-replay path.
//! `--group-commit` switches the journal to one fsync per event-loop
//! ready-batch instead of per record.
//!
//! `--matrix` appends the concurrent-session scaling matrix: extra
//! many-client × many-session workloads (up to 10 000 sessions resident
//! in the sharded registry at once, driven one round each) whose rows
//! join the `serve/loadgen` gate under `serve/loadgen/matrix/...`.
//!
//! `--sched` appends the global-scheduler workload: the daemon runs in
//! `--budget-mode global` with one shared pool sized to cover every
//! session, and competing clients drain it entirely through the
//! `Schedule` verb (admissions/s, answers/s, requests/s rows under
//! `serve/loadgen/sched/...`).

use crowdfusion::pipeline::entity_specs_from_books;
use crowdfusion::prelude::*;
use crowdfusion_bench::gate::BenchRow;
use crowdfusion_bench::{fmt_secs, is_quick, standard_books, time_secs};
use crowdfusion_crowd::AnswerReplay;
use crowdfusion_service::protocol::{Request, Response};
use crowdfusion_service::{
    serve_tcp, Client, DurabilityConfig, OpenOptions, Selected, ServeConfig, Service,
};
use std::net::TcpListener;
use std::sync::Arc;

/// The `--matrix` scaling combos: (sessions, clients). The 10k row is
/// the headline — ten thousand sessions resident in the sharded
/// registry at once on a 4-core runner — with a smaller row below it so
/// the gate's median sees the scaling trend, not one point.
const MATRIX: &[(usize, usize)] = &[(2_500, 8), (10_000, 16)];

struct Args {
    sessions: usize,
    clients: usize,
    threads: usize,
    k: usize,
    budget: usize,
    pc: f64,
    seed: u64,
    json: Option<String>,
    wal_dir: Option<String>,
    group_commit: bool,
    matrix: bool,
    sched: bool,
}

fn parse_args() -> Result<Args, String> {
    let quick = is_quick();
    let mut parsed = Args {
        sessions: if quick { 8 } else { 48 },
        clients: if quick { 2 } else { 4 },
        threads: crowdfusion_core::pool::threads_from_env().unwrap_or(2),
        k: 2,
        budget: if quick { 8 } else { 24 },
        pc: 0.8,
        seed: 7,
        json: None,
        wal_dir: None,
        group_commit: false,
        matrix: false,
        sched: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("--{name} needs a value"));
        match arg.as_str() {
            "--quick" => {} // handled by is_quick()
            "--sessions" => {
                parsed.sessions = value("sessions")?.parse().map_err(|e| format!("{e}"))?
            }
            "--clients" => {
                parsed.clients = value("clients")?.parse().map_err(|e| format!("{e}"))?
            }
            "--threads" => {
                parsed.threads = value("threads")?.parse().map_err(|e| format!("{e}"))?
            }
            "--k" => parsed.k = value("k")?.parse().map_err(|e| format!("{e}"))?,
            "--budget" => parsed.budget = value("budget")?.parse().map_err(|e| format!("{e}"))?,
            "--pc" => parsed.pc = value("pc")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => parsed.seed = value("seed")?.parse().map_err(|e| format!("{e}"))?,
            "--json" => parsed.json = Some(value("json")?),
            "--wal-dir" => parsed.wal_dir = Some(value("wal-dir")?),
            "--group-commit" => parsed.group_commit = true,
            "--matrix" => parsed.matrix = true,
            "--sched" => parsed.sched = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if parsed.sessions == 0 || parsed.clients == 0 {
        return Err("--sessions and --clients must be positive".to_string());
    }
    if parsed.group_commit && parsed.wal_dir.is_none() {
        return Err("--group-commit requires --wal-dir".to_string());
    }
    Ok(parsed)
}

/// One workload the generator drives end to end: its bench-row label
/// prefix plus everything needed to boot a daemon and exhaust every
/// session.
struct Workload {
    label: String,
    sessions: usize,
    clients: usize,
    threads: usize,
    k: usize,
    budget: usize,
    pc: f64,
    seed: u64,
    wal_dir: Option<String>,
    group_commit: bool,
    /// Copy the WAL aside pre-shutdown and time a cold boot from it.
    measure_recovery: bool,
}

/// Drives one session to exhaustion through the typed handle; returns
/// (answers absorbed, requests issued).
fn drive_session(
    client: &mut Client,
    session: u64,
    answer_seed: u64,
    gold: &[bool],
    pool: &WorkerPool,
    model: &UniformAccuracy,
) -> (u64, u64) {
    let mut replay = AnswerReplay::from_seed(answer_seed);
    let mut answers_absorbed = 0u64;
    let mut requests = 0u64;
    let mut handle = client.session(session);
    loop {
        requests += 1;
        let tasks = match handle.select().unwrap() {
            Selected::Round { tasks, .. } => tasks,
            Selected::Exhausted { .. } => return (answers_absorbed, requests),
        };
        let crowd_tasks: Vec<Task> = tasks
            .iter()
            .map(|t| Task {
                id: crowdfusion_crowd::TaskId(t.id),
                prompt: t.prompt.clone(),
                class: t.class,
            })
            .collect();
        let truths: Vec<bool> = tasks.iter().map(|t| gold[t.fact]).collect();
        let pairs: Vec<(u64, bool)> = replay
            .answers(pool, model, &crowd_tasks, &truths)
            .unwrap()
            .iter()
            .map(|a| (a.task.0, a.value))
            .collect();
        // Two partial deliveries per round: the streaming ingestion path,
        // not a single closed-loop batch.
        let cut = pairs.len().div_ceil(2);
        for batch in [&pairs[..cut], &pairs[cut..]] {
            if batch.is_empty() {
                continue;
            }
            requests += 1;
            answers_absorbed += handle.absorb(batch).unwrap().accepted as u64;
        }
    }
}

/// Boots a daemon, opens every session, drives them all to exhaustion,
/// and returns the workload's gate rows (printing its report as it goes).
fn run_workload(w: &Workload) -> Vec<BenchRow> {
    // Dataset → fusion → wire specs (the refine pipeline's front half).
    let books = standard_books(w.sessions, (3, 6), w.seed);
    let fusion = ModifiedCrh::default()
        .fuse(&books.dataset)
        .expect("fusion succeeds on generated data");
    let specs = entity_specs_from_books(&books, &fusion);
    let golds: Vec<Vec<bool>> = specs.iter().map(|s| s.gold.clone()).collect();

    // Daemon on loopback, configured through the serve builder — the
    // same validation path `serve --config` takes.
    let mut serve = ServeConfig::new()
        .seed(w.seed)
        .round(w.k, w.budget, w.pc)
        .threads(w.threads)
        .group_commit(w.group_commit);
    if let Some(dir) = &w.wal_dir {
        serve = serve.wal_dir(dir);
    }
    let service_config = serve.build().expect("valid serve config");
    let service = Arc::new(Service::new(service_config.clone()).expect("service boots"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let daemon = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_tcp(service, listener))
    };

    println!(
        "{}: {} sessions x budget {} (k = {}, Pc = {}), {} client(s), {} pool thread(s), daemon {addr}",
        w.label, w.sessions, w.budget, w.k, w.pc, w.clients, w.threads
    );

    // Open every session up front (batched so a 10k-session matrix row
    // stays under the wire's line cap; priors built on the pool); the
    // version handshake pins the negotiated envelope before any payload
    // flows.
    let mut opener = Client::connect(addr).expect("connect");
    opener.hello().expect("version handshake");
    let (opened, open_secs) = time_secs(|| {
        let mut opened = Vec::with_capacity(w.sessions);
        for chunk in specs.chunks(512) {
            opened.extend(
                opener
                    .open_all(chunk.to_vec(), OpenOptions::default())
                    .expect("open"),
            );
        }
        opened
    });
    assert_eq!(opened.len(), w.sessions);

    // Every opened session is resident in the registry at once — the
    // concurrency the matrix rows exist to measure.
    match opener.roundtrip(&Request::Metrics).expect("metrics") {
        Response::Metrics { metrics } => assert_eq!(metrics.sessions, w.sessions as u64),
        other => panic!("unexpected metrics response {other:?}"),
    }

    // Fan the sessions across client threads and drive them all.
    let worker_pool = WorkerPool::uniform(30, w.pc).expect("worker pool");
    let model = UniformAccuracy::new(w.pc);
    let ((answers, requests), drive_secs) = time_secs(|| {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in opened.chunks(w.sessions.div_ceil(w.clients)) {
                let worker_pool = &worker_pool;
                let model = &model;
                let golds = &golds;
                handles.push(scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut totals = (0u64, 0u64);
                    for info in chunk {
                        let (answers, requests) = drive_session(
                            &mut client,
                            info.session,
                            info.answer_seed,
                            &golds[info.session as usize],
                            worker_pool,
                            model,
                        );
                        totals.0 += answers;
                        totals.1 += requests;
                    }
                    totals
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .fold((0u64, 0u64), |acc, t| (acc.0 + t.0, acc.1 + t.1))
        })
    });
    assert_eq!(answers, (w.sessions * w.budget) as u64);

    // Final quality + shutdown.
    let trace = match opener.roundtrip(&Request::Trace).expect("trace") {
        Response::Trace { trace } => trace,
        other => panic!("unexpected trace response {other:?}"),
    };
    // Crash-recovery timing: copy the live WAL directory aside *before*
    // the graceful shutdown drains it into a final snapshot, so the copy
    // looks like a kill -9 (snapshot + journal tail) and the measured
    // boot exercises the real snapshot-load + journal-replay path.
    let recovery_copy = w
        .wal_dir
        .as_ref()
        .filter(|_| w.measure_recovery)
        .map(|dir| {
            let copy = std::path::Path::new(dir).with_extension("recover");
            let _ = std::fs::remove_dir_all(&copy);
            std::fs::create_dir_all(&copy).expect("create recovery copy dir");
            for file in std::fs::read_dir(dir).expect("read wal dir") {
                let file = file.expect("dir entry");
                std::fs::copy(file.path(), copy.join(file.file_name())).expect("copy wal file");
            }
            copy
        });
    let _ = opener.roundtrip(&Request::Shutdown);
    daemon.join().expect("daemon thread").expect("daemon io");

    let recovery = recovery_copy.map(|copy| {
        let mut boot_config = service_config.clone();
        boot_config.durability = Some(DurabilityConfig::new(&copy));
        let (revived, secs) = time_secs(|| Service::new(boot_config).expect("recovery boots"));
        drop(revived);
        let _ = std::fs::remove_dir_all(&copy);
        secs
    });

    let per = |count: u64, secs: f64| count as f64 / secs.max(1e-9);
    println!(
        "  open    : {} sessions in {} ({:.0} sessions/s)",
        w.sessions,
        fmt_secs(open_secs),
        per(w.sessions as u64, open_secs),
    );
    println!(
        "  drive   : {answers} answers / {requests} requests in {} \
         ({:.0} sessions/s, {:.0} answers/s, {:.0} requests/s)",
        fmt_secs(drive_secs),
        per(w.sessions as u64, drive_secs),
        per(answers, drive_secs),
        per(requests, drive_secs),
    );
    println!(
        "  quality : F1 {:.3} -> {:.3} over cost {}",
        trace.points[0].f1,
        trace.last().f1,
        trace.last().cost
    );
    if let Some(secs) = recovery {
        println!(
            "  recover : {} sessions in {} ({:.2} ms/session)",
            w.sessions,
            fmt_secs(secs),
            secs * 1e3 / w.sessions as f64,
        );
    }

    let ns = |count: u64, secs: f64| ((secs * 1e9) / count.max(1) as f64) as u64;
    let row = |suffix: &str, count: u64, secs: f64| BenchRow {
        label: format!("{}/{suffix}", w.label),
        mean_ns: ns(count, secs),
        min_ns: ns(count, secs),
        samples: count,
    };
    let mut rows = vec![
        row("open_per_session", w.sessions as u64, open_secs),
        row("session", w.sessions as u64, drive_secs),
        row("answer", answers, drive_secs),
        row("request", requests, drive_secs),
    ];
    if let Some(secs) = recovery {
        rows.push(row("recover_per_session", w.sessions as u64, secs));
    }
    rows
}

/// The global-scheduler workload: one shared judgment pool sized to
/// cover every session exactly, spent entirely through the `Schedule`
/// verb by competing clients. Each client loops schedule → absorb until
/// `NoWork`; per-session answer replay streams are shared behind mutexes
/// (a session's rounds are serialised by the scheduler, so there is
/// never contention on one stream — only on the map). Reported rows:
/// admissions/s, answers/s, requests/s under `serve/loadgen/sched/`.
fn run_sched_workload(args: &Args) -> Vec<BenchRow> {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    let label = "serve/loadgen/sched";
    let books = standard_books(args.sessions, (3, 6), args.seed);
    let fusion = ModifiedCrh::default()
        .fuse(&books.dataset)
        .expect("fusion succeeds on generated data");
    let specs = entity_specs_from_books(&books, &fusion);
    let golds: Vec<Vec<bool>> = specs.iter().map(|s| s.gold.clone()).collect();
    let global_budget = (args.sessions * args.budget) as u64;

    let serve = ServeConfig::new()
        .seed(args.seed)
        .round(args.k, args.budget, args.pc)
        .threads(args.threads)
        .global_budget(global_budget);
    let service_config = serve.build().expect("valid serve config");
    let service = Arc::new(Service::new(service_config).expect("service boots"));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let daemon = {
        let service = Arc::clone(&service);
        std::thread::spawn(move || serve_tcp(service, listener))
    };

    println!(
        "{label}: {} sessions competing for one pool of {global_budget} judgments \
         (k = {}, Pc = {}), {} client(s), {} pool thread(s), daemon {addr}",
        args.sessions, args.k, args.pc, args.clients, args.threads
    );

    let mut opener = Client::connect(addr).expect("connect");
    opener.hello().expect("version handshake");
    let mut opened = Vec::with_capacity(args.sessions);
    for chunk in specs.chunks(512) {
        opened.extend(
            opener
                .open_all(chunk.to_vec(), OpenOptions::default())
                .expect("open"),
        );
    }
    assert_eq!(opened.len(), args.sessions);
    let replays: HashMap<u64, Mutex<AnswerReplay>> = opened
        .iter()
        .map(|s| {
            (
                s.session,
                Mutex::new(AnswerReplay::from_seed(s.answer_seed)),
            )
        })
        .collect();

    let worker_pool = WorkerPool::uniform(30, args.pc).expect("worker pool");
    let model = UniformAccuracy::new(args.pc);
    let admissions = AtomicU64::new(0);
    let answers = AtomicU64::new(0);
    let requests = AtomicU64::new(0);
    let ((), drive_secs) = time_secs(|| {
        std::thread::scope(|scope| {
            for _ in 0..args.clients {
                let (worker_pool, model) = (&worker_pool, &model);
                let (replays, golds) = (&replays, &golds);
                let (admissions, answers, requests) = (&admissions, &answers, &requests);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    loop {
                        requests.fetch_add(1, Ordering::Relaxed);
                        let (session, tasks) = match client
                            .roundtrip(&Request::Schedule { request: None })
                            .expect("schedule")
                        {
                            Response::NoWork { .. } => return,
                            Response::Round { session, tasks, .. } => (session, tasks),
                            other => panic!("unexpected schedule response {other:?}"),
                        };
                        admissions.fetch_add(1, Ordering::Relaxed);
                        let crowd_tasks: Vec<Task> = tasks
                            .iter()
                            .map(|t| Task {
                                id: crowdfusion_crowd::TaskId(t.id),
                                prompt: t.prompt.clone(),
                                class: t.class,
                            })
                            .collect();
                        let gold = &golds[session as usize];
                        let truths: Vec<bool> = tasks.iter().map(|t| gold[t.fact]).collect();
                        let pairs: Vec<(u64, bool)> = {
                            let mut replay = replays[&session].lock().expect("replay stream");
                            replay
                                .answers(worker_pool, model, &crowd_tasks, &truths)
                                .unwrap()
                                .iter()
                                .map(|a| (a.task.0, a.value))
                                .collect()
                        };
                        let mut handle = client.session(session);
                        let cut = pairs.len().div_ceil(2);
                        for batch in [&pairs[..cut], &pairs[cut..]] {
                            if batch.is_empty() {
                                continue;
                            }
                            requests.fetch_add(1, Ordering::Relaxed);
                            let absorbed = handle.absorb(batch).expect("absorb").accepted as u64;
                            answers.fetch_add(absorbed, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
    });
    let admissions = admissions.into_inner();
    let answers = answers.into_inner();
    let requests = requests.into_inner();
    // The pool was sized to cover every session's budget exactly, so the
    // scheduler must have spent all of it.
    assert_eq!(answers, global_budget, "the pool must be fully spent");
    match opener
        .roundtrip(&Request::BudgetStatus)
        .expect("budget status")
    {
        Response::Budget {
            spent, remaining, ..
        } => assert_eq!((spent, remaining), (global_budget, 0)),
        other => panic!("unexpected budget response {other:?}"),
    }
    let _ = opener.roundtrip(&Request::Shutdown);
    daemon.join().expect("daemon thread").expect("daemon io");

    let per = |count: u64, secs: f64| count as f64 / secs.max(1e-9);
    println!(
        "  drive   : {admissions} admissions / {answers} answers / {requests} requests in {} \
         ({:.0} admissions/s, {:.0} answers/s, {:.0} requests/s)",
        fmt_secs(drive_secs),
        per(admissions, drive_secs),
        per(answers, drive_secs),
        per(requests, drive_secs),
    );

    let ns = |count: u64, secs: f64| ((secs * 1e9) / count.max(1) as f64) as u64;
    let row = |suffix: &str, count: u64| BenchRow {
        label: format!("{label}/{suffix}"),
        mean_ns: ns(count, drive_secs),
        min_ns: ns(count, drive_secs),
        samples: count,
    };
    vec![
        row("admission", admissions),
        row("answer", answers),
        row("request", requests),
    ]
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("loadgen: {message}");
            std::process::exit(2);
        }
    };

    let mut rows = run_workload(&Workload {
        label: "serve/loadgen".to_string(),
        sessions: args.sessions,
        clients: args.clients,
        threads: args.threads,
        k: args.k,
        budget: args.budget,
        pc: args.pc,
        seed: args.seed,
        wal_dir: args.wal_dir.clone(),
        group_commit: args.group_commit,
        measure_recovery: true,
    });

    if args.matrix {
        // The scaling matrix drives each session for exactly one round
        // (budget = k): the measurement is how the daemon behaves with
        // thousands of sessions resident at once, not per-session depth.
        for &(sessions, clients) in MATRIX {
            rows.extend(run_workload(&Workload {
                label: format!("serve/loadgen/matrix/s{sessions}c{clients}"),
                sessions,
                clients,
                threads: args.threads,
                k: args.k,
                budget: args.k,
                pc: args.pc,
                seed: args.seed,
                wal_dir: None,
                group_commit: false,
                measure_recovery: false,
            }));
        }
    }

    if args.sched {
        rows.extend(run_sched_workload(&args));
    }

    if let Some(path) = args.json {
        let text = serde_json::to_string_pretty(&rows).expect("rows serialise");
        std::fs::write(&path, text).expect("write json");
        println!("  wrote {path}");
    }
}
