//! Budget-allocation extension (paper §V-D: "if a proper strategy can be
//! designed to distribute budgets among all subsets of facts, this can be
//! solved"): fixed per-book budgets vs a single globally allocated budget.
//!
//! Books get heterogeneous statement counts; the fixed strategy spends the
//! same budget everywhere while the global strategy ranks every book's best
//! question by expected information gain each round.
//!
//! Run with: `cargo run --release -p crowdfusion-bench --bin budget_allocation [--quick]`

use crowdfusion::prelude::*;
use crowdfusion_bench::{is_quick, run_quality_experiment, standard_books, standard_cases};
use crowdfusion_core::allocation::{run_global, GlobalBudgetConfig};

fn main() {
    let quick = is_quick();
    let n_books = if quick { 15 } else { 60 };
    let per_book = if quick { 10 } else { 30 };
    let pc = 0.8;
    // Wide statement-count spread: exactly the regime the paper's error
    // analysis worries about.
    let books = standard_books(n_books, (3, 12), 21);
    let cases = standard_cases(&books);
    let total = n_books * per_book;

    println!("Budget allocation: {n_books} books with 3..12 statements, total budget {total}");
    println!(
        "{:>24} {:>10} {:>10} {:>10} {:>12}",
        "strategy", "cost", "F1", "recall", "utility"
    );

    // Fixed per-book budget with greedy selection (the paper's setup).
    let fixed = run_quality_experiment(cases.clone(), &GreedySelector::fast(), 2, per_book, pc, 42);
    let last = fixed.last();
    println!(
        "{:>24} {:>10} {:>10.3} {:>10.3} {:>12.2}",
        "fixed per-book", last.cost, last.f1, last.recall, last.utility
    );

    // Global allocation with the same total budget.
    let config = GlobalBudgetConfig::new(total, n_books.min(16), pc).unwrap();
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(30, pc).unwrap(),
        UniformAccuracy::new(pc),
        42,
    );
    let trace = run_global(&cases, config, &mut platform).unwrap();
    let last = trace.last();
    println!(
        "{:>24} {:>10} {:>10.3} {:>10.3} {:>12.2}",
        "global (info gain)", last.cost, last.f1, last.recall, last.utility
    );

    // Where did the budget go? Correlate entity size with spend under the
    // global strategy by re-running with per-entity accounting.
    println!("\nShape checks: global allocation reaches at least the fixed");
    println!("strategy's F1/utility with the same total budget, by shifting");
    println!("judgments from settled small books to large uncertain ones —");
    println!("closing the first error class of the paper's Section V-D.");
}
